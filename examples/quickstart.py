#!/usr/bin/env python3
"""Quickstart: route a permutation on a POPS network and verify it by simulation.

This walks through the paper's headline result (Theorem 2) on a POPS(8, 4)
network: build the network, route a permutation with the universal router,
execute the schedule on the slot-accurate simulator, and compare the slot
count against the theoretical bound and the applicable lower bound.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import POPSNetwork, POPSSimulator, PermutationRouter, Session, theorem2_slot_bound
from repro.patterns.families import figure3_permutation, vector_reversal
from repro.routing.lower_bounds import best_known_lower_bound
from repro.utils.permutations import random_permutation


def main() -> None:
    # ------------------------------------------------------------------ setup
    network = POPSNetwork(d=8, g=4)
    print(f"network: POPS(d={network.d}, g={network.g})")
    print(f"  processors : {network.n}")
    print(f"  couplers   : {network.n_couplers}")
    print(f"  Theorem 2  : any permutation in {theorem2_slot_bound(network.d, network.g)} slots")
    print()

    # ----------------------------------------------------------- route + simulate
    router = PermutationRouter(network)
    simulator = POPSSimulator(network)

    pi = vector_reversal(network.n)
    plan = router.route(pi)
    result = simulator.route_and_verify(plan.schedule, plan.packets)
    print("vector reversal (pi(i) = n-1-i)")
    print(f"  slots used          : {plan.n_slots}")
    print(f"  lower bound (Prop 2): {best_known_lower_bound(network, pi)}")
    print(f"  packets moved/slot  : {result.trace.packets_moved_per_slot()}")
    print()

    # A uniformly random permutation routes in exactly the same number of slots.
    rng = random.Random(2002)
    pi = random_permutation(network.n, rng)
    metrics = Session().route(pi, network=network)
    print("uniform random permutation")
    print(f"  slots used          : {metrics.slots}")
    print(f"  meets Theorem 2     : {metrics.meets_theorem2_bound}")
    print(f"  coupler utilisation : {metrics.mean_coupler_utilisation:.2f}")
    print()

    # ------------------------------------------------- the paper's Figure 3 example
    example_network = POPSNetwork(3, 3)
    example = figure3_permutation()
    example_plan = PermutationRouter(example_network).route(example)
    POPSSimulator(example_network).route_and_verify(
        example_plan.schedule, example_plan.packets
    )
    print("Figure 3 example on POPS(3, 3)")
    print(f"  slots used          : {example_plan.n_slots}")
    assert example_plan.fair_distribution is not None
    intermediate = [
        example_plan.intermediate_assignment[p] for p in example_network.processors()
    ]
    print(f"  intermediate groups : {intermediate}")


if __name__ == "__main__":
    main()
