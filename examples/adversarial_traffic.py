#!/usr/bin/env python3
"""Where the universal router wins: group-blocked (adversarial) traffic.

A permutation that maps every processor of a group into a single destination
group squeezes all of that group's traffic through one coupler, so any
single-hop strategy needs d slots.  The paper's two-hop algorithm scatters the
packets across intermediate groups first and always finishes in 2*ceil(d/g)
slots (Theorem 2), which Proposition 2 shows is optimal on this traffic class.

This example sweeps d for a fixed g and prints the slot counts of

* the universal router (edge-colouring fair distribution),
* the specialised closed-formula router for group-blocked permutations, and
* the direct single-hop baseline,

together with the Proposition 2 lower bound — reproducing the crossover the
paper's worst-case guarantee is about.

Run with::

    python examples/adversarial_traffic.py
"""

from __future__ import annotations

from repro import BlockedPermutationRouter, DirectRouter, POPSNetwork, PermutationRouter
from repro.analysis.reporting import format_table
from repro.patterns.generators import random_group_moving_blocked_permutation
from repro.pops.packet import Packet
from repro.pops.simulator import POPSSimulator
from repro.routing.lower_bounds import proposition2_lower_bound


def main() -> None:
    g = 4
    rows = []
    for d in (4, 8, 16, 32, 64):
        network = POPSNetwork(d, g)
        pi = random_group_moving_blocked_permutation(network, rng=d)

        plan = PermutationRouter(network).route(pi)
        packets = [Packet(source=i, destination=pi[i]) for i in range(network.n)]
        POPSSimulator(network).route_and_verify(plan.schedule, plan.packets)

        blocked_schedule = BlockedPermutationRouter(network).route(pi)
        POPSSimulator(network).route_and_verify(blocked_schedule, packets)

        direct_router = DirectRouter(network)
        direct_slots = direct_router.slots_required(pi)

        rows.append(
            [
                d,
                g,
                network.n,
                proposition2_lower_bound(network, pi),
                plan.n_slots,
                blocked_schedule.n_slots,
                direct_slots,
                f"{direct_slots / plan.n_slots:.1f}x",
            ]
        )

    print("group-blocked (group-moving) traffic, g = 4")
    print(
        format_table(
            [
                "d",
                "g",
                "n",
                "lower bound (Prop 2)",
                "universal router",
                "blocked formula",
                "direct baseline",
                "direct/universal",
            ],
            rows,
        )
    )
    print()
    print("The universal and specialised routers sit exactly on the lower bound;")
    print("the single-hop baseline degrades linearly in d.")


if __name__ == "__main__":
    main()
