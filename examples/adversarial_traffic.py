#!/usr/bin/env python3
"""Where the universal router wins: group-blocked (adversarial) traffic.

A permutation that maps every processor of a group into a single destination
group squeezes all of that group's traffic through one coupler, so any
single-hop strategy needs d slots.  The paper's two-hop algorithm scatters the
packets across intermediate groups first and always finishes in 2*ceil(d/g)
slots (Theorem 2), which Proposition 2 shows is optimal on this traffic class.

This example sweeps d for a fixed g and prints the slot counts of

* the universal router — served by a live in-process ``ServeDaemon``, the
  same daemon ``pops-repro serve`` runs standalone, queried through a
  ``ServeClient`` over a real socket,
* the specialised closed-formula router for group-blocked permutations, and
* the direct single-hop baseline,

together with the Proposition 2 lower bound — reproducing the crossover the
paper's worst-case guarantee is about.  A final burst of concurrent requests
shows the daemon's dynamic batcher coalescing same-shape traffic into one
megabatch kernel call.

Run with::

    python examples/adversarial_traffic.py
"""

from __future__ import annotations

import threading

from repro import BlockedPermutationRouter, DirectRouter, POPSNetwork
from repro.analysis.reporting import format_table
from repro.patterns.generators import random_group_moving_blocked_permutation
from repro.pops.packet import Packet
from repro.pops.simulator import POPSSimulator
from repro.routing.lower_bounds import proposition2_lower_bound
from repro.serve import ServeClient, ServeDaemon


def main() -> None:
    g = 4
    rows = []
    with ServeDaemon(batch_window_ms=5.0) as daemon:
        host, port = daemon.address
        with ServeClient(host, port) as client:
            for d in (4, 8, 16, 32, 64):
                network = POPSNetwork(d, g)
                pi = random_group_moving_blocked_permutation(network, rng=d)

                # The daemon routes, simulates and verifies server-side; the
                # returned metrics equal a local Session.route bit for bit.
                outcome = client.route(pi, d=d, g=g)
                packets = [
                    Packet(source=i, destination=pi[i]) for i in range(network.n)
                ]

                blocked_schedule = BlockedPermutationRouter(network).route(pi)
                POPSSimulator(network).route_and_verify(blocked_schedule, packets)

                direct_router = DirectRouter(network)
                direct_slots = direct_router.slots_required(pi)

                rows.append(
                    [
                        d,
                        g,
                        network.n,
                        proposition2_lower_bound(network, pi),
                        outcome.metrics.slots,
                        blocked_schedule.n_slots,
                        direct_slots,
                        f"{direct_slots / outcome.metrics.slots:.1f}x",
                    ]
                )

        print("group-blocked (group-moving) traffic, g = 4")
        print(
            format_table(
                [
                    "d",
                    "g",
                    "n",
                    "lower bound (Prop 2)",
                    "universal router",
                    "blocked formula",
                    "direct baseline",
                    "direct/universal",
                ],
                rows,
            )
        )
        print()
        print("The universal and specialised routers sit exactly on the lower bound;")
        print("the single-hop baseline degrades linearly in d.")

        # Concurrent same-shape requests coalesce into one megabatch kernel
        # call — the daemon's dynamic batcher at work.
        d = 16
        network = POPSNetwork(d, g)
        batch_sizes = []

        def route_one(seed: int) -> None:
            pi = random_group_moving_blocked_permutation(network, rng=seed)
            with ServeClient(host, port) as worker:
                batch_sizes.append(worker.route(pi, d=d, g=g).batch_size)

        threads = [threading.Thread(target=route_one, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        print()
        print(
            f"8 concurrent d={d} requests were answered in batches of "
            f"{sorted(batch_sizes, reverse=True)} (1 = routed alone)."
        )


if __name__ == "__main__":
    main()
