#!/usr/bin/env python3
"""Where the universal router wins: group-blocked (adversarial) traffic.

A permutation that maps every processor of a group into a single destination
group squeezes all of that group's traffic through one coupler, so any
single-hop strategy needs d slots.  The paper's two-hop algorithm scatters the
packets across intermediate groups first and always finishes in 2*ceil(d/g)
slots (Theorem 2), which Proposition 2 shows is optimal on this traffic class.

This example sweeps d for a fixed g and prints the slot counts of

* the universal router — served by a live in-process ``ServeDaemon``, the
  same daemon ``pops-repro serve`` runs standalone, queried through a
  ``ServeClient`` over a real socket,
* the specialised closed-formula router for group-blocked permutations, and
* the direct single-hop baseline,

together with the Proposition 2 lower bound — reproducing the crossover the
paper's worst-case guarantee is about.  A burst of concurrent requests then
shows the daemon's dynamic batcher coalescing same-shape traffic into one
megabatch kernel call, and a final act kills one of the couplers the clean
plan drives mid-schedule: execution trips, the residual packets are rerouted
online over the surviving couplers, and the degraded totals are printed next
to the clean Theorem 2 bound they stay within 2x of.

Run with::

    python examples/adversarial_traffic.py
"""

from __future__ import annotations

import threading

from repro import BlockedPermutationRouter, DirectRouter, POPSNetwork
from repro.analysis.reporting import format_table
from repro.faults import FaultSpec, route_with_recovery
from repro.patterns.generators import random_group_moving_blocked_permutation
from repro.pops.packet import Packet
from repro.pops.simulator import POPSSimulator
from repro.routing.lower_bounds import proposition2_lower_bound
from repro.routing.permutation_router import PermutationRouter, theorem2_slot_bound
from repro.serve import ServeClient, ServeDaemon


def main() -> None:
    g = 4
    rows = []
    with ServeDaemon(batch_window_ms=5.0) as daemon:
        host, port = daemon.address
        with ServeClient(host, port) as client:
            for d in (4, 8, 16, 32, 64):
                network = POPSNetwork(d, g)
                pi = random_group_moving_blocked_permutation(network, rng=d)

                # The daemon routes, simulates and verifies server-side; the
                # returned metrics equal a local Session.route bit for bit.
                outcome = client.route(pi, d=d, g=g)
                packets = [
                    Packet(source=i, destination=pi[i]) for i in range(network.n)
                ]

                blocked_schedule = BlockedPermutationRouter(network).route(pi)
                POPSSimulator(network).route_and_verify(blocked_schedule, packets)

                direct_router = DirectRouter(network)
                direct_slots = direct_router.slots_required(pi)

                rows.append(
                    [
                        d,
                        g,
                        network.n,
                        proposition2_lower_bound(network, pi),
                        outcome.metrics.slots,
                        blocked_schedule.n_slots,
                        direct_slots,
                        f"{direct_slots / outcome.metrics.slots:.1f}x",
                    ]
                )

        print("group-blocked (group-moving) traffic, g = 4")
        print(
            format_table(
                [
                    "d",
                    "g",
                    "n",
                    "lower bound (Prop 2)",
                    "universal router",
                    "blocked formula",
                    "direct baseline",
                    "direct/universal",
                ],
                rows,
            )
        )
        print()
        print("The universal and specialised routers sit exactly on the lower bound;")
        print("the single-hop baseline degrades linearly in d.")

        # Concurrent same-shape requests coalesce into one megabatch kernel
        # call — the daemon's dynamic batcher at work.
        d = 16
        network = POPSNetwork(d, g)
        batch_sizes = []

        def route_one(seed: int) -> None:
            pi = random_group_moving_blocked_permutation(network, rng=seed)
            with ServeClient(host, port) as worker:
                batch_sizes.append(worker.route(pi, d=d, g=g).batch_size)

        threads = [threading.Thread(target=route_one, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        print()
        print(
            f"8 concurrent d={d} requests were answered in batches of "
            f"{sorted(batch_sizes, reverse=True)} (1 = routed alone)."
        )

    # Final act: a coupler fails mid-schedule.  For each d we pick a coupler
    # the clean plan provably drives after slot 0, declare it dead from
    # slot 1, and let the recovery pipeline run: clean plan, injected
    # execution up to the trip, online reroute of the residual packets over
    # the surviving couplers, verified delivery on the degraded network.
    fault_rows = []
    for d in (4, 8, 16, 32):
        network = POPSNetwork(d, g)
        pi = random_group_moving_blocked_permutation(network, rng=d)
        plan = PermutationRouter(network).route(pi)
        driven = plan.schedule.slots[1].transmissions[0].coupler
        spec = FaultSpec(
            failed_couplers=((driven.dest_group, driven.source_group),),
            onset_slot=1,
        )
        report = route_with_recovery(network, pi, spec)
        fault_rows.append(
            [
                d,
                g,
                repr(driven),
                theorem2_slot_bound(d, g),
                report.executed_slots,
                report.reroute_slots,
                report.total_slots,
                f"{report.overhead_ratio:.2f}x",
                report.delivered,
            ]
        )
    print()
    print("one driven coupler fails at slot 1 (same traffic class)")
    print(
        format_table(
            [
                "d",
                "g",
                "failed coupler",
                "clean bound",
                "executed",
                "reroute",
                "total",
                "overhead",
                "delivered",
            ],
            fault_rows,
        )
    )
    print()
    print("Every packet still arrives: the slots already executed are kept,")
    print("the residual traffic detours over the surviving couplers, and the")
    print("degraded total stays within 2x of the clean Theorem 2 bound.")


if __name__ == "__main__":
    main()
