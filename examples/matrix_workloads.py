#!/usr/bin/env python3
"""Matrix workloads on a POPS network: transpose and Cannon multiplication.

[Sahni 2000a] studies matrix transpose and matrix multiplication on the POPS
network.  This example stores an m x m matrix one element per processor of a
POPS(d, g) network with d*g = m^2 and

* transposes it twice — once with the universal two-hop router
  (2*ceil(d/g) slots) and once with the single-hop direct schedule
  (ceil(d/g) slots, Sahni's optimum for the transpose's balanced traffic);
* multiplies two matrices with Cannon's algorithm, where every alignment and
  shift step is a permutation routed by the universal router, and checks the
  result against numpy.

Run with::

    python examples/matrix_workloads.py
"""

from __future__ import annotations

import numpy as np

from repro import POPSNetwork
from repro.algorithms.matrix import cannon_matrix_multiply, distributed_transpose
from repro.routing.permutation_router import theorem2_slot_bound


def main() -> None:
    # ------------------------------------------------------------- transpose
    network = POPSNetwork(d=16, g=4)        # 64 processors = an 8 x 8 matrix
    m = int(round(network.n ** 0.5))
    matrix = np.arange(m * m, dtype=float).reshape(m, m)
    print(f"transposing an {m}x{m} matrix on POPS(d={network.d}, g={network.g})")

    transposed, slots = distributed_transpose(network, matrix, method="router")
    assert (transposed == matrix.T).all()
    print(f"  universal router : {slots} slots "
          f"(Theorem 2 bound {theorem2_slot_bound(network.d, network.g)})")

    transposed, slots = distributed_transpose(network, matrix, method="direct")
    assert (transposed == matrix.T).all()
    print(f"  direct single-hop: {slots} slots (Sahni's ceil(d/g) optimum)")
    print()

    # ------------------------------------------------- Cannon multiplication
    network = POPSNetwork(d=4, g=4)          # 16 processors = a 4 x 4 mesh
    m = 4
    rng = np.random.default_rng(42)
    a = rng.normal(size=(m, m))
    b = rng.normal(size=(m, m))
    print(f"multiplying two {m}x{m} matrices with Cannon's algorithm on "
          f"POPS(d={network.d}, g={network.g})")
    product, slots = cannon_matrix_multiply(network, a, b)
    error = float(np.max(np.abs(product - a @ b)))
    steps = 2 + 2 * (m - 1)
    print(f"  routed permutations : {steps} (2 alignment skews + {2 * (m - 1)} shifts)")
    print(f"  total slots         : {slots} "
          f"({theorem2_slot_bound(network.d, network.g)} per permutation)")
    print(f"  max |error| vs numpy: {error:.2e}")


if __name__ == "__main__":
    main()
