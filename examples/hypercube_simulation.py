#!/usr/bin/env python3
"""Simulating a SIMD hypercube on a POPS network (the workload of [Sahni 2000b]).

The paper's Section 2 recalls that each communication step of an n-processor
hypercube — "send to the neighbour across dimension b" — is a permutation, and
Theorem 2 therefore routes it in 2*ceil(d/g) slots *for any one-to-one mapping*
of hypercube processors onto POPS processors.  This example:

1. runs every dimension exchange on a POPS(8, 4) network and shows the slot
   counts;
2. repeats the exercise with a random processor mapping to demonstrate the
   mapping-independence corollary;
3. uses the hypercube steps to run an all-reduce (data sum) and a prefix sum,
   checking the results against local references.

Run with::

    python examples/hypercube_simulation.py
"""

from __future__ import annotations

import random

from repro import POPSNetwork
from repro.algorithms.emulation import HypercubeEmulator
from repro.algorithms.prefix_sum import hypercube_prefix_sum
from repro.algorithms.reduction import hypercube_allreduce
from repro.utils.permutations import random_permutation


def main() -> None:
    network = POPSNetwork(d=8, g=4)
    n = network.n
    print(f"simulating a {n}-processor hypercube on POPS(d=8, g=4)")
    print(f"slots per simulated step (Theorem 2): {network.theorem2_slots}")
    print()

    # 1. Every dimension exchange, identity mapping.
    emulator = HypercubeEmulator(network)
    values = [f"data[{i}]" for i in range(n)]
    for bit in range(emulator.dimensions):
        moved = emulator.exchange(values, bit)
        assert moved[0] == f"data[{1 << bit}]"
    print(f"dimension exchanges 0..{emulator.dimensions - 1}: "
          f"{emulator.slots_used} slots total "
          f"({emulator.slots_used // emulator.dimensions} per step)")

    # 2. Random mapping: same cost, same results (the paper's corollary).
    mapping = random_permutation(n, random.Random(7))
    mapped = HypercubeEmulator(network, mapping=mapping)
    for bit in range(mapped.dimensions):
        assert mapped.exchange(values, bit) == emulator.exchange(values, bit)
    print("random processor mapping: identical results, "
          f"{mapped.slots_used} slots (mapping-independent)")
    print()

    # 3. Collectives built from the exchanges.
    data = [random.Random(1).randint(0, 99) for _ in range(n)]
    totals, slots = hypercube_allreduce(network, data, lambda a, b: a + b)
    assert all(total == sum(data) for total in totals)
    print(f"all-reduce (data sum) : total={totals[0]}, slots={slots}")

    prefixes, slots = hypercube_prefix_sum(network, data)
    running = 0
    expected = []
    for value in data:
        running += value
        expected.append(running)
    assert prefixes == expected
    print(f"prefix sum            : verified, slots={slots}")


if __name__ == "__main__":
    main()
