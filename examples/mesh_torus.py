#!/usr/bin/env python3
"""Simulating an N x N wraparound mesh (torus) on a POPS network.

Each of the four mesh moves — data one step up/down a column or left/right
along a row — is a permutation of the N^2 = d*g processors, so Theorem 2
routes it in 2*ceil(d/g) slots regardless of how mesh cells are assigned to
POPS processors ([Sahni 2000b], unified by the paper).  The example runs a
small iterative stencil (4-neighbour averaging on the torus) entirely through
routed mesh shifts and compares the result with a local numpy reference.

Run with::

    python examples/mesh_torus.py
"""

from __future__ import annotations

import numpy as np

from repro import POPSNetwork
from repro.algorithms.emulation import MeshEmulator


def torus_average_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Local reference for the 4-neighbour torus averaging stencil."""
    current = grid.astype(float)
    for _ in range(iterations):
        current = (
            np.roll(current, 1, axis=0)
            + np.roll(current, -1, axis=0)
            + np.roll(current, 1, axis=1)
            + np.roll(current, -1, axis=1)
        ) / 4.0
    return current


def main() -> None:
    side = 6
    network = POPSNetwork(d=6, g=6)          # 36 processors = a 6 x 6 torus
    emulator = MeshEmulator(network)
    print(f"simulating a {side}x{side} torus on POPS(d={network.d}, g={network.g})")
    print(f"slots per mesh move: {emulator.slots_per_step}")

    rng = np.random.default_rng(3)
    grid = rng.uniform(0.0, 100.0, size=(side, side))

    # Logical processor for mesh cell (i, j) is i + j*side (the paper's mapping).
    values = [0.0] * network.n
    for i in range(side):
        for j in range(side):
            values[i + j * side] = float(grid[i, j])

    iterations = 5
    for _ in range(iterations):
        up = emulator.shift(values, axis="column", offset=1)
        down = emulator.shift(values, axis="column", offset=-1)
        right = emulator.shift(values, axis="row", offset=1)
        left = emulator.shift(values, axis="row", offset=-1)
        values = [
            (up[p] + down[p] + right[p] + left[p]) / 4.0 for p in range(network.n)
        ]

    result = np.zeros((side, side))
    for i in range(side):
        for j in range(side):
            result[i, j] = values[i + j * side]

    reference = torus_average_reference(grid, iterations)
    error = float(np.max(np.abs(result - reference)))
    total_shifts = iterations * 4
    print(f"stencil iterations   : {iterations} ({total_shifts} routed mesh moves)")
    print(f"total slots          : {emulator.slots_used}")
    print(f"max |error| vs numpy : {error:.2e}")
    assert error < 1e-9


if __name__ == "__main__":
    main()
