"""Unified typed entry point for the reproduction.

One validated :class:`~repro.api.config.RunConfig`, pluggable registries for
router backends / simulator engines / experiments, and a
:class:`~repro.api.session.Session` facade the CLI and the Python API share::

    from repro.api import RunConfig, Session

    session = Session(RunConfig(sim_backend="batched", seed=7))
    session.route(pi, d=8, g=4)
    session.sweep([(32, 32)])
    session.experiment("E5")

``Session`` and ``RunConfig`` are re-exported lazily so that core modules can
import the registries at import time without creating a cycle through the
analysis layer.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.api.registry import (
    EXPERIMENTS,
    ROUTER_BACKENDS,
    SIM_ENGINES,
    Registry,
    ensure_builtin_backends,
    ensure_experiments,
)

__all__ = [
    "RunConfig",
    "Session",
    "derive_trial_seeds",
    "to_jsonable",
    "Registry",
    "ROUTER_BACKENDS",
    "SIM_ENGINES",
    "EXPERIMENTS",
    "ensure_builtin_backends",
    "ensure_experiments",
]

#: Lazily resolved re-exports: attribute -> home module.
_LAZY_EXPORTS = {
    "RunConfig": "repro.api.config",
    "Session": "repro.api.session",
    "derive_trial_seeds": "repro.api.session",
    "to_jsonable": "repro.api.serialize",
}


def __getattr__(name: str) -> Any:
    if name in _LAZY_EXPORTS:
        module = importlib.import_module(_LAZY_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
