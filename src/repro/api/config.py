"""One validated, frozen configuration object for every entry point.

Before this layer existed, each capability of the reproduction was reachable
only through its own ad-hoc keyword — ``backend=`` on the experiment
functions, ``sim_backend=`` on ``measure_routing``, per-subcommand CLI flags.
:class:`RunConfig` collects all of them in a single frozen dataclass that
validates on construction, so an invalid combination fails loudly at the
boundary instead of deep inside a sweep, and every consumer — the
:class:`~repro.api.session.Session`, the CLI, worker processes — speaks the
same vocabulary.
"""

from __future__ import annotations

import argparse
import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = [
    "RunConfig",
    "CACHE_POLICIES",
    "TRACE_MODES",
    "DEFAULT_CACHE_MAX_ENTRIES",
    "DEFAULT_CACHE_MAX_BYTES",
]

#: Allowed compiled-schedule cache policies.
CACHE_POLICIES: tuple[str, ...] = ("on", "off")

#: Allowed trace representations: ``"compiled"`` keeps traces as integer
#: arrays (statistics are numpy reductions); ``"materialized"`` expands them
#: to per-slot dicts eagerly.
TRACE_MODES: tuple[str, ...] = ("compiled", "materialized")

DEFAULT_CACHE_MAX_ENTRIES = 64
DEFAULT_CACHE_MAX_BYTES = 128 * 1024 * 1024

#: argparse attribute -> RunConfig field, for :meth:`RunConfig.from_cli_args`.
_CLI_FIELDS: dict[str, str] = {
    "backend": "router_backend",
    "sim_backend": "sim_backend",
    "trials": "trials",
    "seed": "seed",
    "workers": "workers",
    "shard_trials": "shard_trials",
    "cache_stats": "cache_stats",
    "plan_store": "plan_store_path",
}


def _check_positive_int(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an int, got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class RunConfig:
    """Validated configuration shared by the Session, the CLI and workers.

    Attributes
    ----------
    router_backend:
        Edge-colouring backend for the fair distribution; must be registered
        in :data:`~repro.api.registry.ROUTER_BACKENDS`.
    sim_backend:
        Simulator engine, registered in
        :data:`~repro.api.registry.SIM_ENGINES` — or ``None`` to keep each
        operation's historical default (``"reference"`` for single routings
        and the E1 sweep, ``"batched"`` for parallel sweeps).
    cache_policy:
        ``"on"`` (default) lets batched runs memoise compiled schedules in the
        session's :class:`~repro.pops.engine.ScheduleCache`; ``"off"``
        disables lookups entirely.
    cache_max_entries / cache_max_bytes:
        Bounds of the session-owned schedule cache.
    trace_mode:
        ``"compiled"`` (default) keeps simulation traces as integer arrays;
        ``"materialized"`` expands them to per-slot dict objects eagerly.
        Consumed by :meth:`~repro.api.session.Session.simulate`; routing
        metrics are representation-agnostic, so ``Session.route`` is
        unaffected.
    trials:
        Trials per sweep configuration.
    seed:
        Root of the RNG lineage for the routing sweeps (E1/E1p: per
        configuration, per trial, per shard) and the collectives experiment
        (E8: per random section), so those runs reproduce from this single
        integer.  E3–E7 keep their experiment-specific default seeds — their
        published tables stay stable across configs — and take explicit
        overrides via ``session.experiment(id, seed=...)``.
    workers:
        Worker processes for sweeps (``None`` = one per core, ``0`` = serial).
    shard_trials:
        Split each sweep configuration's trials into shards of at most this
        many trials (``None`` = one task per configuration).
    cache_stats:
        Report schedule-cache hit/miss counters in sweep notes.
    plan_store_path:
        Directory of the persistent content-addressed compiled-plan store
        (:class:`~repro.pops.plan_store.PlanStore`), attached as a second
        tier under the session's schedule cache; ``None`` (default) keeps
        the cache memory-only.  Because the whole config crosses process
        boundaries, ``sweep --shard-trials`` pool workers all open the same
        store and share plans instead of recompiling per process.
    """

    router_backend: str = "konig"
    sim_backend: str | None = None
    cache_policy: str = "on"
    cache_max_entries: int = DEFAULT_CACHE_MAX_ENTRIES
    cache_max_bytes: int = DEFAULT_CACHE_MAX_BYTES
    trace_mode: str = "compiled"
    trials: int = 3
    seed: int = 2002
    workers: int | None = None
    shard_trials: int | None = None
    cache_stats: bool = False
    plan_store_path: str | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check every field; raise on the first violation.

        Unknown registry names raise
        :class:`~repro.exceptions.ConfigurationError`; malformed numeric
        fields raise :class:`ValueError` (matching the messages the
        pre-Session free functions raised).
        """
        from repro.api.registry import (
            ROUTER_BACKENDS,
            SIM_ENGINES,
            ensure_builtin_backends,
        )

        ensure_builtin_backends()
        if self.router_backend not in ROUTER_BACKENDS:
            raise ConfigurationError(
                f"unknown router backend {self.router_backend!r}; "
                f"available: {sorted(ROUTER_BACKENDS.names())}"
            )
        if self.sim_backend is not None and self.sim_backend not in SIM_ENGINES:
            raise ConfigurationError(
                f"unknown simulator engine {self.sim_backend!r}; "
                f"available: {sorted(SIM_ENGINES.names())}"
            )
        if self.cache_policy not in CACHE_POLICIES:
            raise ConfigurationError(
                f"unknown cache policy {self.cache_policy!r}; "
                f"expected one of {CACHE_POLICIES}"
            )
        if self.trace_mode not in TRACE_MODES:
            raise ConfigurationError(
                f"unknown trace mode {self.trace_mode!r}; "
                f"expected one of {TRACE_MODES}"
            )
        _check_positive_int("cache_max_entries", self.cache_max_entries)
        _check_positive_int("cache_max_bytes", self.cache_max_bytes)
        _check_positive_int("trials", self.trials)
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        if self.workers is not None:
            if isinstance(self.workers, bool) or not isinstance(self.workers, int):
                raise ValueError(f"workers must be an int or None, got {self.workers!r}")
            if self.workers < 0:
                raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.shard_trials is not None:
            _check_positive_int("shard_trials", self.shard_trials)
        if not isinstance(self.cache_stats, bool):
            raise ValueError(f"cache_stats must be a bool, got {self.cache_stats!r}")
        if self.plan_store_path is not None and (
            not isinstance(self.plan_store_path, str) or not self.plan_store_path
        ):
            raise ValueError(
                "plan_store_path must be a non-empty str or None, "
                f"got {self.plan_store_path!r}"
            )

    # -- derivation ---------------------------------------------------------

    def replace(self, **changes: Any) -> RunConfig:
        """A copy with ``changes`` applied; the copy re-validates."""
        return dataclasses.replace(self, **changes)

    def resolved_sim_backend(self, default: str = "reference") -> str:
        """The simulator engine to use, falling back to an operation default."""
        return self.sim_backend if self.sim_backend is not None else default

    # -- conversion ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """All fields as a plain JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, mapping: dict[str, Any]) -> RunConfig:
        """Build a config from a mapping, rejecting unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown RunConfig fields {unknown}; known fields: {sorted(known)}"
            )
        return cls(**mapping)

    @classmethod
    def from_cli_args(cls, args: argparse.Namespace) -> RunConfig:
        """Lower parsed CLI flags into a config.

        Flags map 1:1 (``--backend`` -> ``router_backend``, ``--sim-backend``
        -> ``sim_backend``, …); flags a subcommand does not define — or that
        parsed to ``None`` — keep their :class:`RunConfig` defaults.
        """
        kwargs: dict[str, Any] = {}
        for attr, field_name in _CLI_FIELDS.items():
            value = getattr(args, attr, None)
            if value is not None:
                kwargs[field_name] = value
        return cls(**kwargs)
