"""String-keyed registries for the pluggable pieces of the reproduction.

The API layer composes three kinds of interchangeable components:

* **router backends** — edge-colouring algorithms behind Theorem 1's fair
  distribution (``"konig"``, ``"euler"``, …), consulted by
  :func:`repro.graph.edge_coloring.edge_color`;
* **simulator engines** — schedule executors
  (``"reference"``, ``"batched"``, …), consulted by
  :class:`repro.pops.simulator.POPSSimulator`;
* **experiments** — the ``E1..E8`` runners, consulted by
  :meth:`repro.api.session.Session.experiment`.

Each lives in a :class:`Registry`: a string-keyed table with decorator
registration, so new backends, engines and workloads plug in from anywhere
(including code outside this package) without touching the core dispatchers::

    from repro.api.registry import SIM_ENGINES

    @SIM_ENGINES.register("my-engine")
    def _my_engine(simulator, schedule, packets, initial_buffers=None, *,
                   cache_key=None, cache=None):
        ...

    POPSSimulator(network, backend="my-engine")   # now just works

The built-in entries register themselves when their home modules import
(``repro.graph.edge_coloring``, ``repro.pops.simulator``,
``repro.analysis.experiments``); :func:`ensure_builtin_backends` and
:func:`ensure_experiments` force those imports for callers that validate names
before touching the core.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any, TypeVar

from repro.exceptions import ConfigurationError

__all__ = [
    "Registry",
    "ROUTER_BACKENDS",
    "SIM_ENGINES",
    "EXPERIMENTS",
    "ensure_builtin_backends",
    "ensure_experiments",
]

T = TypeVar("T")


class Registry:
    """A string-keyed table of pluggable components.

    Parameters
    ----------
    kind:
        Human-readable component kind (``"router backend"``), used in error
        messages and reprs.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, entries={sorted(self._entries)})"

    def register(self, name: str, obj: T | None = None) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        ``register("x", thing)`` stores ``thing`` immediately;
        ``@register("x")`` stores the decorated object.  Duplicate names raise
        :class:`~repro.exceptions.ConfigurationError` — replacing an entry is
        always a bug (two plugins fighting over one name), so tests use
        :meth:`unregister` for temporary entries instead.  The one exception:
        re-registering an object with the same module and qualified name as
        the existing entry replaces it silently, so reloading a module whose
        body registers built-ins (``repro.pops.simulator``,
        ``repro.analysis.experiments``, …) does not crash.
        """
        if not isinstance(name, str) or not name:
            raise ConfigurationError(
                f"{self.kind} names must be non-empty strings, got {name!r}"
            )

        def _store(value: T) -> T:
            existing = self._entries.get(name)
            if existing is not None and not self._same_definition(existing, value):
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already registered"
                )
            self._entries[name] = value
            return value

        if obj is None:
            return _store
        return _store(obj)

    @staticmethod
    def _same_definition(existing: Any, value: Any) -> bool:
        """True iff both objects are the same *top-level* definition.

        Module reloads re-create module-level functions with identical
        module + qualname; those may replace each other.  Factory-made
        closures (qualname contains ``<locals>``) are excluded — two
        products of the same factory are distinct components, and swapping
        one for the other silently is exactly the duplicate-name bug the
        registry must reject.
        """
        if existing is value:
            return True
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        return (
            module is not None
            and qualname is not None
            and "<locals>" not in qualname
            and getattr(existing, "__module__", None) == module
            and getattr(existing, "__qualname__", None) == qualname
        )

    def unregister(self, name: str) -> None:
        """Remove ``name``; unknown names raise like :meth:`get`."""
        if name not in self._entries:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
            )
        del self._entries[name]

    def get(self, name: str) -> Any:
        """Look up ``name``, raising a listing of available keys on a miss."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._entries)

    def items(self) -> tuple[tuple[str, Any], ...]:
        """``(name, entry)`` pairs, in registration order."""
        return tuple(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


#: Edge-colouring backends behind the fair-distribution solver (Theorem 1).
ROUTER_BACKENDS = Registry("router backend")

#: Simulator engines executing routing schedules under the POPS slot model.
SIM_ENGINES = Registry("simulator engine")

#: Experiment runners, keyed by experiment id (``E1``..``E8``); entries are
#: callables ``runner(session, **overrides) -> ExperimentResult``.
EXPERIMENTS = Registry("experiment")


def ensure_builtin_backends() -> None:
    """Import the core modules whose import registers the built-in backends."""
    import repro.graph.array_coloring  # noqa: F401  (registers konig-array/euler-array)
    import repro.graph.edge_coloring  # noqa: F401  (registers konig/euler)
    import repro.pops.simulator  # noqa: F401  (registers reference/batched)


def ensure_experiments() -> None:
    """Import the experiment module, registering ``E1..E8`` runners."""
    import repro.analysis.experiments  # noqa: F401
