"""JSON-ready encoders for API results.

``RunConfig.to_dict()``-style: every public result type exposes ``to_dict()``
returning plain containers, and :func:`to_jsonable` is the shared coercion
those encoders use — numpy scalars become Python scalars, arrays become
lists, non-finite floats become ``None`` (strict JSON has no ``Infinity``),
and unknown objects fall back to ``repr`` rather than failing the dump.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

__all__ = ["to_jsonable"]


def to_jsonable(obj: Any) -> Any:
    """Recursively coerce ``obj`` into JSON-serialisable plain containers."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return to_jsonable(float(obj))
    if isinstance(obj, np.ndarray):
        return [to_jsonable(item) for item in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        to_dict = getattr(obj, "to_dict", None)
        if callable(to_dict):
            return to_jsonable(to_dict())
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (Sequence, set, frozenset)):
        return [to_jsonable(item) for item in obj]
    return repr(obj)
