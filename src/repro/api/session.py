"""The :class:`Session` facade: one config, one cache, one RNG lineage.

A session binds a validated :class:`~repro.api.config.RunConfig` to the
resources a run needs — a compiled-schedule cache and a deterministic seed
lineage — and exposes the reproduction's capabilities as methods::

    from repro.api import RunConfig, Session

    session = Session(RunConfig(router_backend="euler", seed=7))
    metrics = session.route(pi, d=8, g=4)          # one verified routing
    sweep = session.sweep([(32, 32)])              # sharded Theorem 2 sweep
    result = session.experiment("E4")              # any registered experiment
    reports = session.run_all()                    # everything, sorted by id

Every simulator engine, router backend and experiment is resolved through the
registries in :mod:`repro.api.registry`, so components registered by user
code are first-class citizens here.  (The deprecated free functions —
``measure_routing``, ``run_theorem2_sweep``, … — were removed in 1.2; the
session methods are the only entry points.)
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.api.config import RunConfig
from repro.api.registry import EXPERIMENTS, ensure_experiments
from repro.exceptions import ConfigurationError
from repro.pops.engine import ScheduleCache
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.simulator import POPSSimulator, SimulationResult
from repro.pops.topology import POPSNetwork
from repro.utils.rng import resolve_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.experiments import ExperimentResult
    from repro.analysis.metrics import RoutingMetrics

__all__ = ["Session", "derive_trial_seeds"]


def derive_trial_seeds(seed: int, trials: int) -> np.ndarray:
    """Deterministic per-trial seeds derived from one root seed.

    This is the single seed lineage of the whole API: sharded sweeps slice
    this array into whole-batch worker tasks, and experiments derive their
    per-section seeds the same way, so any unit of work can run in any
    process and still sample exactly what the serial run would.  Returns a
    ``(trials,)`` int64 array; the drawn values are unchanged from the
    historical list form (``.tolist()`` recovers it exactly — note the
    entries of the *array* are ``np.int64`` and must be converted back to
    Python ints before re-seeding :func:`repro.utils.rng.resolve_rng`).
    """
    rng = resolve_rng(seed)
    return np.fromiter(
        (rng.randrange(2**31) for _ in range(trials)),
        dtype=np.int64,
        count=trials,
    )


class Session:
    """Facade owning one schedule cache and one seed lineage.

    Parameters
    ----------
    config:
        The run configuration; defaults to ``RunConfig()``.
    cache:
        Compiled-schedule cache to use.  By default the session owns a fresh
        :class:`~repro.pops.engine.ScheduleCache` sized by the config; pass
        :func:`repro.pops.engine.schedule_cache` to share the process-wide
        cache (the deprecation shims do, preserving their historical
        behaviour).  With ``config.plan_store_path`` set, the session-owned
        cache is built with the persistent
        :class:`~repro.pops.plan_store.PlanStore` at that path attached as
        its disk tier (a caller-provided ``cache`` is taken as-is — its
        tiering is the caller's decision).
    """

    def __init__(
        self, config: RunConfig | None = None, *, cache: ScheduleCache | None = None
    ):
        if config is None:
            config = RunConfig()
        if not isinstance(config, RunConfig):
            raise TypeError(
                f"config must be a RunConfig or None, got {type(config).__name__}"
            )
        self.config = config
        if cache is not None:
            self.cache = cache
        else:
            store = None
            if config.plan_store_path is not None:
                from repro.pops.plan_store import PlanStore

                store = PlanStore(config.plan_store_path)
            self.cache = ScheduleCache(
                max_entries=config.cache_max_entries,
                max_bytes=config.cache_max_bytes,
                store=store,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session(config={self.config!r})"

    # -- component factories ------------------------------------------------

    def sim_backend(self, default: str = "reference") -> str:
        """The configured simulator engine, or ``default`` when unset."""
        return self.config.resolved_sim_backend(default)

    def simulator(
        self, network: POPSNetwork, *, default_backend: str = "reference"
    ) -> POPSSimulator:
        """A simulator for ``network`` using the configured engine."""
        return POPSSimulator(network, backend=self.sim_backend(default_backend))

    def trial_seeds(self, trials: int, seed: int | None = None) -> np.ndarray:
        """Per-trial seeds from the session lineage (root: ``config.seed``)."""
        root = self.config.seed if seed is None else seed
        return derive_trial_seeds(root, trials)

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/entry counters of the session's schedule cache.

        With a plan store configured the dict additionally carries the
        ``disk_hits`` / ``disk_misses`` counters of the persistent tier
        (kept separate from the memory counters, never summed).
        """
        return self.cache.stats()

    # -- capabilities -------------------------------------------------------

    def route(
        self,
        pi: Sequence[int],
        *,
        network: POPSNetwork | None = None,
        d: int | None = None,
        g: int | None = None,
        verify: bool = True,
    ) -> RoutingMetrics:
        """Route ``pi`` with the universal router; simulate, verify, summarise.

        The target network is given either as ``network=`` or as ``d=``/``g=``.
        Router backend, simulator engine, cache policy and trace mode all come
        from the session config; compiled schedules are memoised in the
        session's cache.

        The call is span-instrumented: when a tracer is installed via
        :func:`repro.obs.set_tracer` (the CLI's ``--profile``/``--trace-out``
        do this), it emits a ``session.route`` root span with
        ``route.setup``/``cache.probe``/``engine.*``/``metrics.*`` children;
        with the default :data:`repro.obs.NULL_TRACER` the instrumentation
        is a no-op (<1% of a warm route, see ``benchmarks/bench_obs.py``).
        """
        from repro.analysis.metrics import _measure_routing

        if network is None:
            if d is None or g is None:
                raise ConfigurationError(
                    "route() needs either network= or both d= and g="
                )
            network = POPSNetwork(d, g)
        return _measure_routing(
            network,
            pi,
            router_backend=self.config.router_backend,
            verify=verify,
            sim_backend=self.sim_backend("reference"),
            use_cache=self.config.cache_policy == "on",
            cache=self.cache,
        )

    def route_batch(
        self,
        pis,
        *,
        network: POPSNetwork | None = None,
        d: int | None = None,
        g: int | None = None,
        verify: bool = True,
    ) -> list[RoutingMetrics]:
        """Route a ``(B, n)`` permutation stack on the megabatch pipeline.

        The batched twin of :meth:`route`: on the batched/auto engines the
        whole stack is routed, executed, verified and summarised in one
        batched pass, and entry ``b`` of the returned list is bit-identical
        to ``route(pis[b])``.  Other engines measure element by element, so
        the method is safe under any configured backend.  Configuration
        (router backend, engine, cache policy) comes from the session; on the
        batched path the cache holds one batch-level entry per stack.

        Dispatch is shape-aware: ``d < g`` stacks take the per-element fast
        path even on the batched engines, where the padded batch plan
        builders measurably lose to the loop (bit-identical results either
        way — see ``_measure_routing_batch``).

        Span-instrumented like :meth:`route`, under a ``session.route_batch``
        root (one span tree for the whole stack on the batched path).
        """
        from repro.analysis.metrics import _measure_routing_batch

        if network is None:
            if d is None or g is None:
                raise ConfigurationError(
                    "route_batch() needs either network= or both d= and g="
                )
            network = POPSNetwork(d, g)
        return _measure_routing_batch(
            network,
            pis,
            router_backend=self.config.router_backend,
            verify=verify,
            sim_backend=self.sim_backend("reference"),
            use_cache=self.config.cache_policy == "on",
            cache=self.cache,
        )

    def route_compiled(
        self,
        pi: Sequence[int],
        *,
        network: POPSNetwork | None = None,
        d: int | None = None,
        g: int | None = None,
        verify: bool = True,
    ):
        """Compile the Theorem 2 plan for ``pi`` straight to schedule arrays.

        The array-native routing front end
        (:meth:`~repro.routing.permutation_router.PermutationRouter.
        route_compiled`): returns the
        :class:`~repro.pops.engine.CompiledSchedule` ready for the batched
        engines, bit-identical to routing object-level and compiling, with
        no intermediate per-packet Python objects for the array router
        backends (``"konig-array"`` / ``"euler-array"``; other backends fall
        back transparently).  With the cache policy ``"on"`` the plan is
        memoised in the session cache under the deterministic-router key, so
        re-routing a seen permutation skips construction entirely.
        """
        from repro.analysis.metrics import routing_cache_key
        from repro.routing.permutation_router import PermutationRouter

        if network is None:
            if d is None or g is None:
                raise ConfigurationError(
                    "route_compiled() needs either network= or both d= and g="
                )
            network = POPSNetwork(d, g)
        router = PermutationRouter(
            network, backend=self.config.router_backend, verify=verify
        )
        cache_key = (
            routing_cache_key(self.config.router_backend, network, pi)
            if self.config.cache_policy == "on"
            else None
        )
        return router.route_compiled(pi, cache_key=cache_key, cache=self.cache)

    def route_degraded(
        self,
        pi: Sequence[int],
        *,
        network: POPSNetwork | None = None,
        d: int | None = None,
        g: int | None = None,
        faults,
    ):
        """Route ``pi`` under fault injection and recover online.

        The fault-tolerance pipeline
        (:func:`repro.faults.route_with_recovery`): the clean Theorem 2 plan
        executes on the batched engine with ``faults`` (a
        :class:`~repro.faults.FaultSpec`) injected; if the schedule drives
        failed hardware inside the fault window, the residual traffic is
        re-solved over the surviving couplers and verified delivered on the
        degraded topology.  Returns a
        :class:`~repro.faults.FaultRecoveryReport` comparing total slots
        (executed before the fault + reroute) against the clean ``2⌈d/g⌉``
        bound.  Span-instrumented (``fault.inject``, ``route.reroute``).
        """
        from repro.faults import FaultSpec, route_with_recovery

        if not isinstance(faults, FaultSpec):
            raise ConfigurationError(
                f"faults must be a FaultSpec, got {type(faults).__name__}"
            )
        if network is None:
            if d is None or g is None:
                raise ConfigurationError(
                    "route_degraded() needs either network= or both d= and g="
                )
            network = POPSNetwork(d, g)
        return route_with_recovery(
            network, pi, faults, router_backend=self.config.router_backend
        )

    def simulate(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        *,
        cache_key: Hashable | None = None,
        verify: bool = False,
    ) -> SimulationResult:
        """Execute ``schedule`` on the configured engine and return the result.

        The result's trace representation follows ``config.trace_mode``:
        ``"compiled"`` keeps whatever the engine produced (integer-array
        traces from compiled engines), ``"materialized"`` expands compiled
        traces to per-slot dict objects eagerly.  ``verify=True`` additionally
        asserts every packet reached its destination.

        Pass ``cache_key`` to memoise the compiled schedule in the
        session-owned cache; the caller asserts the key fully determines
        ``(schedule, packets)`` — the contract of
        :meth:`repro.pops.engine.BatchedSimulator.compile`.  No key is
        derived automatically because arbitrary schedules, unlike the
        deterministic router's, have no sound generic key.  A set cache
        policy of ``"off"`` drops the key.
        """
        from repro.pops.trace import CompiledTrace

        if self.config.cache_policy == "off":
            cache_key = None
        simulator = self.simulator(schedule.network)
        result = simulator.run(
            schedule, packets, cache_key=cache_key, cache=self.cache
        )
        if verify:
            result.verify_permutation_delivery(packets)
        if self.config.trace_mode == "materialized" and isinstance(
            result.trace, CompiledTrace
        ):
            result.trace = result.trace.materialize()
        return result

    def experiment(self, experiment_id: str, **overrides: Any) -> ExperimentResult:
        """Run one registered experiment (``E1``..``E9``) under this session.

        ``overrides`` are forwarded to the experiment runner (sizes, trial
        counts, seeds — whatever the runner parameterises); everything else
        comes from the session config.  Unknown ids raise
        :class:`~repro.exceptions.ConfigurationError` listing the registered
        experiments.
        """
        ensure_experiments()
        runner = EXPERIMENTS.get(experiment_id)
        return runner(self, **overrides)

    def sweep(
        self, configs: Sequence[tuple[int, int]] | None = None
    ) -> ExperimentResult:
        """The Theorem 2 sweep over ``configs``, fanned across workers.

        Shard size, worker count, cache statistics, trials and seed all come
        from the session config (``shard_trials``, ``workers``,
        ``cache_stats``, ``trials``, ``seed``).
        """
        if configs is None:
            return self.experiment("E1p")
        return self.experiment("E1p", configs=configs)

    def run_all(self) -> dict[str, ExperimentResult]:
        """Run every registered experiment, sorted by id."""
        ensure_experiments()
        return {
            experiment_id: self.experiment(experiment_id)
            for experiment_id in sorted(EXPERIMENTS.names())
        }
