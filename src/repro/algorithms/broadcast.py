"""One-to-all broadcast (Section 1 of the paper).

The speaker drives *all* of its ``g`` transmitters with the same packet in a
single slot; every other processor reads the coupler fed by the speaker's
group.  This is the one-slot broadcast the paper describes when introducing
the architecture, and it doubles as a smoke test that the simulator's
broadcast semantics (non-consuming transmissions, one coupler read by many
processors) match the model.

Execution goes through the :class:`~repro.api.session.Session` layer on the
``auto`` engine by default, which dispatches broadcast schedules to the
vectorized multi-location :mod:`repro.pops.collective_engine` — the reference
simulator is no longer on the path for any broadcast size.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import TYPE_CHECKING, Any

from repro.algorithms._session import collective_session
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork
from repro.utils.validation import check_in_range

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

__all__ = ["one_to_all_broadcast", "execute_broadcast"]


def one_to_all_broadcast(
    network: POPSNetwork, speaker: int, payload: Any = None
) -> tuple[RoutingSchedule, Packet]:
    """Build the one-slot broadcast schedule from ``speaker`` to every processor.

    Returns the schedule and the broadcast packet (destination is set to the
    speaker itself; the delivery test for broadcasts is "every processor holds
    a copy", not the permutation check).
    """
    check_in_range(speaker, 0, network.n, "speaker")
    packet = Packet(source=speaker, destination=speaker, payload=payload)
    schedule = RoutingSchedule(
        network=network, description=f"one-to-all broadcast from {speaker}"
    )
    slot = schedule.new_slot()
    speaker_group = network.group_of(speaker)
    for dest_group in network.groups():
        coupler = network.coupler(dest_group, speaker_group)
        slot.add_transmission(speaker, coupler, packet, consume=False)
    for processor in network.processors():
        if processor == speaker:
            continue
        coupler = network.coupler(network.group_of(processor), speaker_group)
        slot.add_reception(processor, coupler)
    return schedule, packet


def execute_broadcast(
    network: POPSNetwork,
    speaker: int,
    payload: Any,
    session: Session | None = None,
    cache_key: Hashable | None = None,
) -> tuple[list[Any], int]:
    """Run the broadcast on the simulator; return the per-processor values and slots used.

    Every processor (including the speaker) ends up with ``payload``.  Pass a
    ``session`` to choose the engine/cache explicitly; ``cache_key`` memoises
    the compiled schedule in the session's cache (sound only when the key
    determines network, speaker *and* payload — see
    :meth:`repro.pops.collective_engine.CollectiveSimulator.compile`).
    """
    schedule, packet = one_to_all_broadcast(network, speaker, payload)
    result = collective_session(session).simulate(
        schedule, [packet], cache_key=cache_key
    )
    values: list[Any] = [None] * network.n
    for processor in network.processors():
        held = result.packets_at(processor)
        values[processor] = held[0].payload if held else None
    return values, schedule.n_slots
