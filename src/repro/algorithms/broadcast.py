"""One-to-all broadcast (Section 1 of the paper).

The speaker drives *all* of its ``g`` transmitters with the same packet in a
single slot; every other processor reads the coupler fed by the speaker's
group.  This is the one-slot broadcast the paper describes when introducing
the architecture, and it doubles as a smoke test that the simulator's
broadcast semantics (non-consuming transmissions, one coupler read by many
processors) match the model.
"""

from __future__ import annotations

from typing import Any

from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.utils.validation import check_in_range

__all__ = ["one_to_all_broadcast", "execute_broadcast"]


def one_to_all_broadcast(
    network: POPSNetwork, speaker: int, payload: Any = None
) -> tuple[RoutingSchedule, Packet]:
    """Build the one-slot broadcast schedule from ``speaker`` to every processor.

    Returns the schedule and the broadcast packet (destination is set to the
    speaker itself; the delivery test for broadcasts is "every processor holds
    a copy", not the permutation check).
    """
    check_in_range(speaker, 0, network.n, "speaker")
    packet = Packet(source=speaker, destination=speaker, payload=payload)
    schedule = RoutingSchedule(
        network=network, description=f"one-to-all broadcast from {speaker}"
    )
    slot = schedule.new_slot()
    speaker_group = network.group_of(speaker)
    for dest_group in network.groups():
        coupler = network.coupler(dest_group, speaker_group)
        slot.add_transmission(speaker, coupler, packet, consume=False)
    for processor in network.processors():
        if processor == speaker:
            continue
        coupler = network.coupler(network.group_of(processor), speaker_group)
        slot.add_reception(processor, coupler)
    return schedule, packet


def execute_broadcast(
    network: POPSNetwork, speaker: int, payload: Any
) -> tuple[list[Any], int]:
    """Run the broadcast on the simulator; return the per-processor values and slots used.

    Every processor (including the speaker) ends up with ``payload``.
    """
    schedule, packet = one_to_all_broadcast(network, speaker, payload)
    simulator = POPSSimulator(network)
    result = simulator.run(schedule, [packet])
    values: list[Any] = [None] * network.n
    for processor in network.processors():
        held = result.packets_at(processor)
        values[processor] = held[0].payload if held else None
    return values, schedule.n_slots
