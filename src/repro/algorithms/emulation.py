"""Hypercube and mesh emulation layers (the simulations of [Sahni 2000b]).

Section 2 of the paper recalls that a POPS(d, g) network with ``n = dg``
processors can simulate each communication step of an ``n``-processor SIMD
hypercube, or of an ``N x N`` wraparound mesh with ``N² = n``, in
``2⌈d/g⌉`` slots (one slot when ``d = 1``).  Theorem 2 makes this immediate —
every such step is a permutation — and additionally shows the result does not
depend on how the simulated machine's processors are mapped onto the POPS
processors.  The emulators below expose exactly those step permutations
(optionally composed with an arbitrary one-to-one mapping) and route them with
the universal router, tracking slot usage per step.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.algorithms.exchange import PermutationEngine
from repro.exceptions import ValidationError
from repro.patterns.families import (
    hypercube_exchange,
    mesh_column_shift,
    mesh_row_shift,
)
from repro.pops.topology import POPSNetwork
from repro.utils.bitops import bit_length_exact, is_power_of_two
from repro.utils.permutations import compose, invert
from repro.utils.validation import check_permutation

__all__ = ["HypercubeEmulator", "MeshEmulator"]


class _MappedEmulator:
    """Shared machinery: route step permutations through an embedding.

    ``mapping[v]`` is the POPS processor hosting logical processor ``v``.  A
    logical step permutation ``σ`` becomes the POPS permutation
    ``mapping ∘ σ ∘ mapping⁻¹``, which Theorem 2 routes in the same number of
    slots regardless of the chosen mapping — the "somewhat surprising"
    consequence highlighted at the end of the paper's Section 2.
    """

    def __init__(
        self,
        network: POPSNetwork,
        mapping: Sequence[int] | None = None,
        backend: str = "konig",
    ):
        self.network = network
        self.mapping = (
            list(range(network.n))
            if mapping is None
            else check_permutation(mapping, network.n)
        )
        self._inverse_mapping = invert(self.mapping)
        self.engine = PermutationEngine(network, backend=backend)

    def physical_permutation(self, logical_step: Sequence[int]) -> list[int]:
        """Translate a logical step permutation into the POPS permutation."""
        # physical = mapping ∘ logical ∘ mapping⁻¹
        return compose(self.mapping, compose(list(logical_step), self._inverse_mapping))

    def run_step(self, values: list[Any], logical_step: Sequence[int]) -> list[Any]:
        """Execute one logical step on logically-indexed ``values``.

        ``values[v]`` is the value held by logical processor ``v``; the return
        value uses the same logical indexing, while the data movement happens
        on the POPS network through the embedding.
        """
        physical_values = [values[self._inverse_mapping[p]] for p in range(self.network.n)]
        moved = self.engine.permute(physical_values, self.physical_permutation(logical_step))
        return [moved[self.mapping[v]] for v in range(self.network.n)]

    @property
    def slots_used(self) -> int:
        """Total POPS slots consumed by the steps executed so far."""
        return self.engine.slots_used

    @property
    def slots_per_step(self) -> int:
        """Slots Theorem 2 guarantees for every emulated step."""
        return self.network.theorem2_slots


class HypercubeEmulator(_MappedEmulator):
    """Emulates an ``n``-processor SIMD hypercube on POPS(d, g) with ``n = dg``.

    The processor count must be a power of two.  ``mapping`` is an arbitrary
    one-to-one placement of hypercube processors onto POPS processors (identity
    by default).
    """

    def __init__(
        self,
        network: POPSNetwork,
        mapping: Sequence[int] | None = None,
        backend: str = "konig",
    ):
        if not is_power_of_two(network.n):
            raise ValidationError(
                f"a hypercube needs a power-of-two processor count, got {network.n}"
            )
        super().__init__(network, mapping, backend)
        self.dimensions = bit_length_exact(network.n)

    def exchange_permutation(self, bit: int) -> list[int]:
        """The POPS permutation realising the dimension-``bit`` exchange."""
        return self.physical_permutation(hypercube_exchange(self.network.n, bit))

    def exchange(self, values: list[Any], bit: int) -> list[Any]:
        """Send every logical processor's value to its dimension-``bit`` neighbour."""
        return self.run_step(values, hypercube_exchange(self.network.n, bit))


class MeshEmulator(_MappedEmulator):
    """Emulates an ``N x N`` SIMD wraparound mesh on POPS(d, g) with ``N² = dg``.

    Logical mesh cell ``(i, j)`` is logical processor ``i + j·N`` (the paper's
    mapping); physical placement is again an arbitrary bijection.
    """

    def __init__(
        self,
        network: POPSNetwork,
        mapping: Sequence[int] | None = None,
        backend: str = "konig",
    ):
        side = int(round(network.n ** 0.5))
        if side * side != network.n:
            raise ValidationError(
                f"a square mesh needs a square processor count, got {network.n}"
            )
        super().__init__(network, mapping, backend)
        self.side = side

    def shift_permutation(self, axis: str, offset: int = 1) -> list[int]:
        """The POPS permutation for a ``row``/``column`` shift by ``offset``."""
        if axis == "row":
            logical = mesh_row_shift(self.side, offset)
        elif axis == "column":
            logical = mesh_column_shift(self.side, offset)
        else:
            raise ValidationError(f"axis must be 'row' or 'column', got {axis!r}")
        return self.physical_permutation(logical)

    def shift(self, values: list[Any], axis: str, offset: int = 1) -> list[Any]:
        """Shift logical values along rows or columns of the mesh."""
        if axis == "row":
            logical = mesh_row_shift(self.side, offset)
        elif axis == "column":
            logical = mesh_column_shift(self.side, offset)
        else:
            raise ValidationError(f"axis must be 'row' or 'column', got {axis!r}")
        return self.run_step(values, logical)
