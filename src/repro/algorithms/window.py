"""Windowed data operations: consecutive sums, adjacent sums, circular shifts.

The paper's introduction lists, among the algorithms previously developed for
the POPS network, "data sum, prefix sum, consecutive sum, adjacent sum, and
several data movement operations" ([Sahni 2000b]).  Data sum and prefix sum
live in :mod:`repro.algorithms.reduction` and
:mod:`repro.algorithms.prefix_sum`; this module completes the catalogue:

* **consecutive sum** — processor ``i`` obtains the sum of the values held by
  the window ``i, i+1, …, i+w-1`` (cyclically).  Implemented with ``w - 1``
  routed circular shifts, i.e. ``(w-1)·2⌈d/g⌉`` slots.
* **adjacent sum** — the ``w = 2`` special case (each processor adds its right
  neighbour's value).
* **circular shift** — the underlying data-movement operation, exposed
  directly because it is one of [Sahni 2000b]'s primitive operations; a single
  permutation, so ``2⌈d/g⌉`` slots (1 when ``d = 1``).

Every operation is executed end-to-end on the simulator via
:class:`~repro.algorithms.exchange.PermutationEngine`, so the returned slot
counts are measured, not computed.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.algorithms.exchange import PermutationEngine
from repro.exceptions import ValidationError
from repro.patterns.families import cyclic_shift
from repro.pops.topology import POPSNetwork
from repro.utils.validation import check_positive_int

__all__ = ["circular_shift", "consecutive_sum", "adjacent_sum"]


def circular_shift(
    network: POPSNetwork,
    values: Sequence[Any],
    offset: int = 1,
    backend: str = "konig",
) -> tuple[list[Any], int]:
    """Move every processor's value ``offset`` positions forward (cyclically).

    Returns ``(shifted, slots)`` with ``shifted[(i + offset) % n] == values[i]``.
    """
    if len(values) != network.n:
        raise ValidationError(f"expected {network.n} values, got {len(values)}")
    engine = PermutationEngine(network, backend=backend)
    shifted = engine.permute(list(values), cyclic_shift(network.n, offset))
    return shifted, engine.slots_used


def consecutive_sum(
    network: POPSNetwork,
    values: Sequence[Any],
    window: int,
    combine: Callable[[Any, Any], Any] = lambda a, b: a + b,
    backend: str = "konig",
) -> tuple[list[Any], int]:
    """Cyclic windowed reduction: result[i] = values[i] ⊕ … ⊕ values[(i+window-1) % n].

    ``window`` must be between 1 and ``n``.  Uses ``window - 1`` circular
    shifts of the running copy, so the cost is ``(window-1) · 2⌈d/g⌉`` slots
    (``window - 1`` slots when ``d = 1``).
    """
    check_positive_int(window, "window")
    n = network.n
    if window > n:
        raise ValidationError(f"window {window} exceeds the processor count {n}")
    if len(values) != n:
        raise ValidationError(f"expected {n} values, got {len(values)}")

    engine = PermutationEngine(network, backend=backend)
    result = list(values)
    rotating = list(values)
    # After k backward shifts, processor i holds values[(i + k) % n]; adding it
    # to the accumulator extends every window by one element on the right.
    for _ in range(window - 1):
        rotating = engine.permute(rotating, cyclic_shift(n, -1))
        result = [combine(result[i], rotating[i]) for i in range(n)]
    return result, engine.slots_used


def adjacent_sum(
    network: POPSNetwork,
    values: Sequence[Any],
    combine: Callable[[Any, Any], Any] = lambda a, b: a + b,
    backend: str = "konig",
) -> tuple[list[Any], int]:
    """Each processor combines its own value with its right neighbour's
    (cyclically): the ``window = 2`` consecutive sum of [Sahni 2000b]."""
    return consecutive_sum(network, values, window=2, combine=combine, backend=backend)
