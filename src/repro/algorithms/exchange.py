"""Value exchange: execute a permutation of per-processor values on the simulator.

Every collective in :mod:`repro.algorithms` decomposes into rounds of
"permute the processors' values according to ``π``, then combine locally".
:class:`PermutationEngine` owns the permute step: it routes payload-carrying
packets with the universal router (or any other router exposing ``route``),
executes the schedule through the :class:`~repro.api.session.Session` layer
(default: the ``auto`` engine, which runs these consuming permutation rounds
on the vectorized batched engine), verifies delivery and returns both the new
value vector and the number of slots consumed.  Slot counts accumulated by
the engine are what benchmark E8 reports.

Compiled schedules are *not* memoised across rounds: the packets carry the
round's values as payloads, and a cache hit would resurrect the first round's
payload-carrying universe (the documented key contract of
:meth:`repro.pops.engine.BatchedSimulator.compile`), so each round compiles
fresh and only the execution is vectorized.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro.algorithms._session import collective_session
from repro.exceptions import DeliveryError
from repro.pops.packet import Packet
from repro.pops.topology import POPSNetwork
from repro.routing.permutation_router import PermutationRouter
from repro.utils.validation import check_permutation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

__all__ = ["permute_values", "PermutationEngine"]


class PermutationEngine:
    """Executes value permutations on a POPS network and tracks slot usage.

    Parameters
    ----------
    network:
        The POPS network to run on.
    backend:
        Edge-colouring backend forwarded to the universal router.  Ignored
        when ``session`` is given (the session's ``router_backend`` wins).
    verify:
        When ``True`` every executed schedule is checked for correct delivery.
    session:
        Session supplying the simulator engine and schedule cache; defaults
        to a fresh session on the ``auto`` engine.
    """

    def __init__(
        self,
        network: POPSNetwork,
        backend: str = "konig",
        verify: bool = True,
        session: Session | None = None,
    ):
        self.network = network
        self.session = collective_session(session)
        if session is not None:
            backend = session.config.router_backend
        self.router = PermutationRouter(network, backend=backend, verify=verify)
        self.verify = verify
        self.slots_used = 0
        self.rounds_executed = 0

    def permute(self, values: Sequence[Any], pi: Sequence[int]) -> list[Any]:
        """Return the value vector after sending ``values[i]`` to processor ``pi[i]``."""
        network = self.network
        images = check_permutation(pi, network.n)
        if len(values) != network.n:
            raise DeliveryError(
                f"expected {network.n} values, got {len(values)}"
            )
        plan = self.router.route(images)
        packets = [
            Packet(source=i, destination=images[i], payload=values[i])
            for i in range(network.n)
        ]
        # The plan's schedule references Packet(source, destination) values that
        # compare equal to the payload-carrying ones (payload is excluded from
        # equality), so the same schedule moves the payloads.
        result = self.session.simulate(plan.schedule, packets, verify=self.verify)
        self.slots_used += plan.n_slots
        self.rounds_executed += 1

        new_values: list[Any] = [None] * network.n
        for processor in network.processors():
            held = result.packets_at(processor)
            if len(held) != 1:
                raise DeliveryError(
                    f"processor {processor} holds {len(held)} packets after the "
                    "permutation; expected exactly one"
                )
            new_values[processor] = held[0].payload
        return new_values

    def reset_counters(self) -> None:
        """Zero the accumulated slot and round counters."""
        self.slots_used = 0
        self.rounds_executed = 0


def permute_values(
    network: POPSNetwork,
    values: Sequence[Any],
    pi: Sequence[int],
    backend: str = "konig",
    session: Session | None = None,
) -> tuple[list[Any], int]:
    """One-shot helper: permute ``values`` by ``pi`` and return ``(new_values, slots)``."""
    engine = PermutationEngine(network, backend=backend, session=session)
    new_values = engine.permute(values, pi)
    return new_values, engine.slots_used
