"""The default execution session shared by the collective algorithms."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

__all__ = ["collective_session"]


def collective_session(session: Session | None = None) -> Session:
    """The session a collective algorithm executes on.

    A caller-supplied session is used as-is (its engine, cache and seed
    lineage apply); otherwise a fresh session on the ``auto`` engine is built,
    so broadcast-style schedules run on the vectorized collective engine and
    permutation rounds on the batched one.
    """
    from repro.api.config import RunConfig
    from repro.api.session import Session

    if session is not None:
        return session
    return Session(RunConfig(sim_backend="auto"))
