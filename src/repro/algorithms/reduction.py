"""Data sum / all-reduce via hypercube dimension exchanges.

[Sahni 2000b] builds the POPS data-sum algorithm from the hypercube simulation
primitives: in round ``b`` every processor exchanges its partial sum with the
processor whose index differs in bit ``b`` and adds the received value.  After
``log2 n`` rounds every processor holds the total (an all-reduce).  Each round
is a permutation (the dimension-``b`` exchange), so the universal router
executes it in ``2⌈d/g⌉`` slots and the whole reduction in
``2⌈d/g⌉·log2 n`` slots (``log2 n`` when ``d = 1``) — the figure benchmark E8
reports.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any

from repro.algorithms.exchange import PermutationEngine
from repro.exceptions import ValidationError
from repro.patterns.families import hypercube_exchange
from repro.pops.topology import POPSNetwork
from repro.utils.bitops import bit_length_exact, is_power_of_two

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

__all__ = ["hypercube_allreduce", "data_sum"]


def hypercube_allreduce(
    network: POPSNetwork,
    values: Sequence[Any],
    combine: Callable[[Any, Any], Any],
    backend: str = "konig",
    session: Session | None = None,
) -> tuple[list[Any], int]:
    """All-reduce ``values`` with the associative/commutative operator ``combine``.

    Returns ``(result_vector, slots_used)``; every entry of the result vector
    equals the reduction of all inputs.  The processor count must be a power of
    two (the hypercube embedding of [Sahni 2000b]).  Each exchange round
    executes through the :class:`~repro.api.session.Session` layer (``session``
    or a fresh ``auto``-engine session), so the rounds run on the vectorized
    batched engine.
    """
    n = network.n
    if not is_power_of_two(n):
        raise ValidationError(
            f"hypercube all-reduce requires a power-of-two processor count, got {n}"
        )
    if len(values) != n:
        raise ValidationError(f"expected {n} values, got {len(values)}")
    engine = PermutationEngine(network, backend=backend, session=session)
    current = list(values)
    for bit in range(bit_length_exact(n)):
        exchanged = engine.permute(current, hypercube_exchange(n, bit))
        current = [combine(mine, theirs) for mine, theirs in zip(current, exchanged)]
    return current, engine.slots_used


def data_sum(
    network: POPSNetwork,
    values: Sequence[float],
    backend: str = "konig",
    session: Session | None = None,
) -> tuple[float, int]:
    """Sum one value per processor; return ``(total, slots_used)``.

    Implemented as a hypercube all-reduce with addition, mirroring the data sum
    operation of [Sahni 2000b].
    """
    reduced, slots = hypercube_allreduce(
        network, list(values), lambda a, b: a + b, backend=backend, session=session
    )
    return reduced[0], slots
