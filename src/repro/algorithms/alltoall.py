"""All-to-all, gather and scatter collectives built on the h-relation router.

These are the "data movement operations" flavour of the POPS literature
([Sahni 2000b] and follow-ups) expressed through the h-relation extension:

* **all-to-all personalised exchange** — every processor sends a distinct
  value to every other processor: an ``(n - 1)``-relation;
* **scatter** — one root sends a distinct value to every processor: out-degree
  ``n - 1`` at the root, in-degree 1 elsewhere;
* **gather** — every processor sends its value to one root: in-degree
  ``n - 1`` at the root.

Each collective is executed end-to-end on the slot-accurate simulator —
through the :class:`~repro.api.session.Session` layer on the ``auto`` engine,
so the consuming h-relation rounds run vectorized — and returns both the
received data and the number of slots consumed, so the benchmarks can compare
measured slot counts against the ``h · 2⌈d/g⌉`` decomposition bound.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro.algorithms._session import collective_session
from repro.exceptions import ValidationError
from repro.pops.packet import Packet
from repro.pops.topology import POPSNetwork
from repro.routing.relation import HRelationRouter
from repro.utils.validation import check_in_range

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

__all__ = ["all_to_all_personalized", "scatter", "gather"]


def _execute_relation(
    network: POPSNetwork,
    packets: list[Packet],
    backend: str,
    session: Session | None,
) -> tuple[dict[int, list[Packet]], int]:
    """Route ``packets`` as an h-relation, simulate, and return final buffers."""
    if session is not None:
        backend = session.config.router_backend
    router = HRelationRouter(network, backend=backend)
    plan = router.route_packets(packets)
    result = collective_session(session).simulate(
        plan.schedule, packets, verify=True
    )
    return result.buffers, plan.n_slots


def all_to_all_personalized(
    network: POPSNetwork,
    values: Sequence[Sequence[Any]],
    backend: str = "konig",
    session: Session | None = None,
) -> tuple[list[list[Any]], int]:
    """Personalised all-to-all exchange.

    ``values[i][j]`` is the value processor ``i`` sends to processor ``j``.
    Returns ``(received, slots)`` where ``received[j][i]`` is the value ``j``
    obtained from ``i`` (the transpose of the input, carried by real routed
    packets rather than a local transpose).
    """
    n = network.n
    if len(values) != n or any(len(row) != n for row in values):
        raise ValidationError(f"values must be an {n} x {n} table")

    packets = [
        Packet(source=i, destination=j, payload=values[i][j])
        for i in range(n)
        for j in range(n)
        if i != j
    ]
    buffers, slots = _execute_relation(network, packets, backend, session)

    received: list[list[Any]] = [[None] * n for _ in range(n)]
    for j in range(n):
        received[j][j] = values[j][j]
        for packet in buffers[j]:
            received[j][packet.source] = packet.payload
    return received, slots


def scatter(
    network: POPSNetwork,
    root: int,
    values: Sequence[Any],
    backend: str = "konig",
    session: Session | None = None,
) -> tuple[list[Any], int]:
    """Scatter ``values[j]`` from ``root`` to every processor ``j``.

    Returns ``(received, slots)`` with ``received[j] == values[j]``.
    """
    check_in_range(root, 0, network.n, "root")
    if len(values) != network.n:
        raise ValidationError(f"expected {network.n} values, got {len(values)}")
    packets = [
        Packet(source=root, destination=j, payload=values[j])
        for j in range(network.n)
        if j != root
    ]
    buffers, slots = _execute_relation(network, packets, backend, session)
    received: list[Any] = [None] * network.n
    received[root] = values[root]
    for j in range(network.n):
        for packet in buffers[j]:
            if packet.source == root:
                received[j] = packet.payload
    return received, slots


def gather(
    network: POPSNetwork,
    root: int,
    values: Sequence[Any],
    backend: str = "konig",
    session: Session | None = None,
) -> tuple[list[Any], int]:
    """Gather every processor's value at ``root``.

    Returns ``(collected, slots)`` where ``collected[i]`` is processor ``i``'s
    value as received by the root.
    """
    check_in_range(root, 0, network.n, "root")
    if len(values) != network.n:
        raise ValidationError(f"expected {network.n} values, got {len(values)}")
    packets = [
        Packet(source=i, destination=root, payload=values[i])
        for i in range(network.n)
        if i != root
    ]
    buffers, slots = _execute_relation(network, packets, backend, session)
    collected: list[Any] = [None] * network.n
    collected[root] = values[root]
    for packet in buffers[root]:
        collected[packet.source] = packet.payload
    return collected, slots
