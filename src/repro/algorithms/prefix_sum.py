"""Prefix sums via hypercube dimension exchanges.

The classical hypercube prefix-sum algorithm keeps two registers per
processor: the running prefix value and the subtree total.  In round ``b``
processor ``i`` exchanges its subtree total with ``i XOR 2^b``; the total is
always accumulated, while the prefix is only updated when the partner's index
is smaller (bit ``b`` of ``i`` is one).  Each exchange is a permutation routed
by the universal router, so the POPS cost is ``2⌈d/g⌉·log2 n`` slots
(``log2 n`` when ``d = 1``) — the consecutive-sum / prefix-sum operations of
[Sahni 2000b] realised through a single universal primitive.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.algorithms.exchange import PermutationEngine
from repro.exceptions import ValidationError
from repro.patterns.families import hypercube_exchange
from repro.pops.topology import POPSNetwork
from repro.utils.bitops import bit_length_exact, get_bit, is_power_of_two

__all__ = ["hypercube_prefix_sum"]


def hypercube_prefix_sum(
    network: POPSNetwork,
    values: Sequence[Any],
    combine: Callable[[Any, Any], Any] = lambda a, b: a + b,
    backend: str = "konig",
) -> tuple[list[Any], int]:
    """Inclusive prefix reduction of ``values`` under ``combine``.

    Returns ``(prefix_vector, slots_used)`` where
    ``prefix_vector[i] = values[0] ⊕ ... ⊕ values[i]``.  The operator must be
    associative; the processor count must be a power of two.
    """
    n = network.n
    if not is_power_of_two(n):
        raise ValidationError(
            f"hypercube prefix sum requires a power-of-two processor count, got {n}"
        )
    if len(values) != n:
        raise ValidationError(f"expected {n} values, got {len(values)}")

    engine = PermutationEngine(network, backend=backend)
    prefix = list(values)
    total = list(values)
    for bit in range(bit_length_exact(n)):
        exchanged = engine.permute(total, hypercube_exchange(n, bit))
        new_total = list(total)
        new_prefix = list(prefix)
        for i in range(n):
            if get_bit(i, bit):
                # Partner has the lower index: its subtree precedes ours.
                new_total[i] = combine(exchanged[i], total[i])
                new_prefix[i] = combine(exchanged[i], prefix[i])
            else:
                new_total[i] = combine(total[i], exchanged[i])
        prefix, total = new_prefix, new_total
    return prefix, engine.slots_used
