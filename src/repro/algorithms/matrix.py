"""Distributed matrix operations on the POPS network.

[Sahni 2000a] studies matrix transpose and matrix multiplication on
POPS(d, g).  Both are reproduced here on top of the universal router:

* :func:`distributed_transpose` — the matrix transpose permutation executed
  either with the universal router (``2⌈d/g⌉`` slots) or with the direct
  single-hop baseline, which achieves the ``⌈d/g⌉`` slots Sahni proves optimal
  when the traffic is balanced.
* :func:`cannon_matrix_multiply` — Cannon's algorithm on the conceptual
  ``m × m`` processor mesh (one element of each operand per processor), with
  every mesh shift realised as a POPS permutation routing.  This exercises the
  router on ``O(m)`` distinct permutations per multiply and checks the result
  against a local reference product.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.exchange import PermutationEngine
from repro.exceptions import ValidationError
from repro.patterns.families import matrix_transpose_permutation
from repro.pops.simulator import POPSSimulator
from repro.pops.packet import Packet
from repro.pops.topology import POPSNetwork
from repro.routing.baselines.direct import DirectRouter

__all__ = ["distributed_transpose", "cannon_matrix_multiply"]


def distributed_transpose(
    network: POPSNetwork,
    matrix: np.ndarray,
    method: str = "router",
    backend: str = "konig",
) -> tuple[np.ndarray, int]:
    """Transpose a square matrix stored one element per processor (row-major).

    Parameters
    ----------
    network:
        POPS network with ``n = m^2`` processors for an ``m x m`` matrix.
    matrix:
        The matrix to transpose; ``matrix.size`` must equal ``network.n``.
    method:
        ``"router"`` uses the universal two-hop router; ``"direct"`` uses the
        single-hop baseline (optimal for the transpose's balanced traffic).

    Returns
    -------
    (transposed, slots_used)
    """
    m = int(round(network.n ** 0.5))
    if m * m != network.n:
        raise ValidationError(
            f"distributed transpose needs a square processor count, got {network.n}"
        )
    data = np.asarray(matrix)
    if data.shape != (m, m):
        raise ValidationError(f"matrix must be {m}x{m}, got {data.shape}")
    values = [data[i // m, i % m] for i in range(network.n)]
    pi = matrix_transpose_permutation(m)

    if method == "router":
        engine = PermutationEngine(network, backend=backend)
        new_values = engine.permute(values, pi)
        slots = engine.slots_used
    elif method == "direct":
        router = DirectRouter(network)
        schedule = router.route(pi)
        packets = [
            Packet(source=i, destination=pi[i], payload=values[i])
            for i in range(network.n)
        ]
        result = POPSSimulator(network).run(schedule, packets)
        result.verify_permutation_delivery(packets)
        new_values = [result.packets_at(p)[0].payload for p in network.processors()]
        slots = schedule.n_slots
    else:
        raise ValidationError(f"unknown transpose method {method!r}")

    transposed = np.array(new_values, dtype=data.dtype).reshape(m, m)
    return transposed, slots


def _cannon_skew_rows(m: int, inverse: bool = False) -> list[int]:
    """Permutation skewing row ``r`` left by ``r`` positions (or back)."""
    pi = [0] * (m * m)
    for r in range(m):
        for c in range(m):
            shift = -r if not inverse else r
            pi[r * m + c] = r * m + ((c + shift) % m)
    return pi


def _cannon_skew_cols(m: int, inverse: bool = False) -> list[int]:
    """Permutation skewing column ``c`` up by ``c`` positions (or back)."""
    pi = [0] * (m * m)
    for r in range(m):
        for c in range(m):
            shift = -c if not inverse else c
            pi[r * m + c] = ((r + shift) % m) * m + c
    return pi


def _shift_rows_left(m: int) -> list[int]:
    """Permutation shifting every element one column to the left (wraparound)."""
    return [r * m + ((c - 1) % m) for r in range(m) for c in range(m)]


def _shift_cols_up(m: int) -> list[int]:
    """Permutation shifting every element one row up (wraparound)."""
    return [((r - 1) % m) * m + c for r in range(m) for c in range(m)]


def cannon_matrix_multiply(
    network: POPSNetwork,
    a: np.ndarray,
    b: np.ndarray,
    backend: str = "konig",
) -> tuple[np.ndarray, int]:
    """Multiply two ``m x m`` matrices with Cannon's algorithm on POPS(d, g).

    Each processor holds one element of ``A`` and one of ``B``; the initial
    skews and the ``m - 1`` shift steps are all permutations routed by the
    universal router, and each processor accumulates its local product.

    Returns
    -------
    (product, slots_used)
        ``product`` equals ``a @ b``; ``slots_used`` counts every slot of every
        routed permutation.
    """
    m = int(round(network.n ** 0.5))
    if m * m != network.n:
        raise ValidationError(
            f"Cannon's algorithm needs a square processor count, got {network.n}"
        )
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != (m, m) or b.shape != (m, m):
        raise ValidationError(f"operands must be {m}x{m}, got {a.shape} and {b.shape}")

    engine = PermutationEngine(network, backend=backend)
    a_values: list[float] = [a[i // m, i % m] for i in range(network.n)]
    b_values: list[float] = [b[i // m, i % m] for i in range(network.n)]
    accumulator = [0.0] * network.n

    # Initial alignment: row r of A shifts left by r, column c of B shifts up by c.
    a_values = engine.permute(a_values, _cannon_skew_rows(m))
    b_values = engine.permute(b_values, _cannon_skew_cols(m))

    for step in range(m):
        for i in range(network.n):
            accumulator[i] += a_values[i] * b_values[i]
        if step == m - 1:
            break
        a_values = engine.permute(a_values, _shift_rows_left(m))
        b_values = engine.permute(b_values, _shift_cols_up(m))

    product = np.array(accumulator).reshape(m, m)
    return product, engine.slots_used
