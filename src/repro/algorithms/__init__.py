"""Collective algorithms built on top of the permutation router.

The paper motivates universal permutation routing by the catalogue of
algorithms previously designed pattern-by-pattern for the POPS network
(broadcast, data sum, prefix sum, matrix operations, hypercube and mesh
simulation — [Gravenstreter & Melhem 1998], [Sahni 2000a, 2000b]).  This
package re-creates that catalogue using the universal router as the only
communication primitive, demonstrating the unification claim end-to-end: every
collective below is executed on the slot-accurate simulator, not merely
counted.
"""

from repro.algorithms._session import collective_session
from repro.algorithms.broadcast import one_to_all_broadcast, execute_broadcast
from repro.algorithms.exchange import permute_values, PermutationEngine
from repro.algorithms.reduction import hypercube_allreduce, data_sum
from repro.algorithms.prefix_sum import hypercube_prefix_sum
from repro.algorithms.matrix import (
    distributed_transpose,
    cannon_matrix_multiply,
)
from repro.algorithms.emulation import HypercubeEmulator, MeshEmulator
from repro.algorithms.alltoall import all_to_all_personalized, gather, scatter
from repro.algorithms.window import adjacent_sum, circular_shift, consecutive_sum

__all__ = [
    "collective_session",
    "all_to_all_personalized",
    "gather",
    "scatter",
    "adjacent_sum",
    "circular_shift",
    "consecutive_sum",
    "one_to_all_broadcast",
    "execute_broadcast",
    "permute_values",
    "PermutationEngine",
    "hypercube_allreduce",
    "data_sum",
    "hypercube_prefix_sum",
    "distributed_transpose",
    "cannon_matrix_multiply",
    "HypercubeEmulator",
    "MeshEmulator",
]
