"""Allow ``python -m repro`` as an alias for the ``pops-repro`` console script."""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
