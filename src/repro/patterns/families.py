"""Named permutation families from the POPS literature.

These are the concrete permutation routing problems that had been attacked one
by one before the paper (see its Section 2): the hypercube simulation
primitives and mesh shifts of [Sahni 2000b], the vector reversal, matrix
transpose and BPC permutations of [Sahni 2000a], plus a few classics (perfect
shuffle, bit reversal, cyclic shifts) that are BPC instances.  The unification
benchmark (E5) routes each family with the universal router and checks the
slot counts the specialised results promised.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.exceptions import ValidationError
from repro.utils.bitops import bit_length_exact, flip_bit, get_bit, reverse_bits
from repro.utils.validation import check_in_range, check_positive_int

__all__ = [
    "figure3_permutation",
    "vector_reversal",
    "matrix_transpose_permutation",
    "perfect_shuffle",
    "inverse_perfect_shuffle",
    "bit_reversal_permutation",
    "bpc_permutation",
    "hypercube_exchange",
    "all_hypercube_exchanges",
    "mesh_row_shift",
    "mesh_column_shift",
    "cyclic_shift",
    "group_cyclic_shift",
    "NAMED_FAMILIES",
    "family_by_name",
]


def figure3_permutation() -> list[int]:
    """The POPS(3,3) permutation of the paper's Figure 3.

    Reading the figure, packet ``xy`` (destination group ``x``, destination
    processor ``y``) sits at each source processor; in one-line notation the
    permutation is ``π = [4, 8, 3, 6, 0, 2, 7, 1, 5]``.  Processors 4 and 5
    (both in group 1) target group 0, so a single slot cannot route it — the
    example motivating the two-slot algorithm.
    """
    return [4, 8, 3, 6, 0, 2, 7, 1, 5]


def vector_reversal(n: int) -> list[int]:
    """Vector reversal: ``π(i) = n - 1 - i`` ([Sahni 2000a])."""
    check_positive_int(n, "n")
    return [n - 1 - i for i in range(n)]


def cyclic_shift(n: int, offset: int = 1) -> list[int]:
    """Cyclic shift: ``π(i) = (i + offset) mod n``."""
    check_positive_int(n, "n")
    return [(i + offset) % n for i in range(n)]


def group_cyclic_shift(n: int, d: int, group_offset: int = 1) -> list[int]:
    """Shift every packet ``group_offset`` groups forward, preserving local index.

    A canonical group-moving, group-blocked permutation (Proposition 2's tight
    class) for any ``d`` and ``g = n/d``.
    """
    check_positive_int(n, "n")
    check_positive_int(d, "d")
    if n % d != 0:
        raise ValidationError(f"d={d} must divide n={n}")
    g = n // d
    return [((i // d + group_offset) % g) * d + (i % d) for i in range(n)]


def matrix_transpose_permutation(rows: int, cols: int | None = None) -> list[int]:
    """Transpose of a ``rows x cols`` matrix stored row-major.

    Element ``(r, c)`` stored at processor ``r * cols + c`` moves to processor
    ``c * rows + r`` ([Sahni 2000a] uses square matrices; rectangular shapes
    are supported for the tests).
    """
    check_positive_int(rows, "rows")
    cols = rows if cols is None else check_positive_int(cols, "cols")
    n = rows * cols
    pi = [0] * n
    for r in range(rows):
        for c in range(cols):
            pi[r * cols + c] = c * rows + r
    return pi


def perfect_shuffle(n: int) -> list[int]:
    """Perfect shuffle on ``n = 2^k`` elements: cyclic left rotation of the index bits."""
    k = bit_length_exact(n)
    if k == 0:
        return [0]
    return [((i << 1) | (i >> (k - 1))) & (n - 1) for i in range(n)]


def inverse_perfect_shuffle(n: int) -> list[int]:
    """Inverse perfect shuffle: cyclic right rotation of the index bits."""
    k = bit_length_exact(n)
    if k == 0:
        return [0]
    return [(i >> 1) | ((i & 1) << (k - 1)) for i in range(n)]


def bit_reversal_permutation(n: int) -> list[int]:
    """Bit reversal on ``n = 2^k`` elements."""
    k = bit_length_exact(n)
    return [reverse_bits(i, k) for i in range(n)]


def bpc_permutation(
    n: int, bit_order: Sequence[int], complement_mask: int = 0
) -> list[int]:
    """A BPC (bit-permute-complement) permutation on ``n = 2^k`` elements.

    Destination bit ``j`` equals source bit ``bit_order[j]``, and bits selected
    by ``complement_mask`` are complemented afterwards:
    ``π(i) = complement_mask XOR  Σ_j  bit_j(i)[bit_order[j]] << j``.

    The class is closed under composition and contains vector reversal
    (identity order, full complement mask), matrix transpose of a ``2^a x 2^a``
    matrix (rotation of the bit order), perfect shuffle, bit reversal and the
    hypercube exchanges (identity order, single-bit mask) — [Sahni 2000a].
    """
    k = bit_length_exact(n)
    if sorted(bit_order) != list(range(k)):
        raise ValidationError(
            f"bit_order must be a permutation of 0..{k - 1}, got {list(bit_order)}"
        )
    if not (0 <= complement_mask < n):
        raise ValidationError(
            f"complement_mask {complement_mask} out of range [0, {n})"
        )
    pi = []
    for i in range(n):
        image = 0
        for j in range(k):
            image |= get_bit(i, bit_order[j]) << j
        pi.append(image ^ complement_mask)
    return pi


def hypercube_exchange(n: int, bit: int) -> list[int]:
    """Hypercube dimension-``bit`` exchange: ``π(i) = i XOR 2^bit`` ([Sahni 2000b])."""
    k = bit_length_exact(n)
    check_in_range(bit, 0, k, "bit")
    return [flip_bit(i, bit) for i in range(n)]


def all_hypercube_exchanges(n: int) -> list[list[int]]:
    """All ``log2 n`` dimension exchanges of an ``n``-processor hypercube."""
    k = bit_length_exact(n)
    return [hypercube_exchange(n, bit) for bit in range(k)]


def mesh_row_shift(side: int, offset: int = 1) -> list[int]:
    """Shift every element of an ``side x side`` wraparound mesh along its row.

    The mesh cell ``(r, c)`` is stored at processor ``r + c * side`` (the
    paper's mapping ``(i, j) -> i + jN``); a row shift moves data to column
    ``(c + offset) mod side``.
    """
    check_positive_int(side, "side")
    n = side * side
    pi = [0] * n
    for r in range(side):
        for c in range(side):
            pi[r + c * side] = r + ((c + offset) % side) * side
    return pi


def mesh_column_shift(side: int, offset: int = 1) -> list[int]:
    """Shift every element of an ``side x side`` wraparound mesh along its column.

    With the mapping ``(i, j) -> i + jN`` a column shift moves data to row
    ``(r + offset) mod side`` within the same column.
    """
    check_positive_int(side, "side")
    n = side * side
    pi = [0] * n
    for r in range(side):
        for c in range(side):
            pi[r + c * side] = ((r + offset) % side) + c * side
    return pi


#: Registry of parameter-free families keyed by name; each entry maps ``n``
#: (total processors) to a permutation.  Families that need extra structure
#: (mesh side, hypercube bit) are exposed through their own functions.
NAMED_FAMILIES: dict[str, Callable[[int], list[int]]] = {
    "identity": lambda n: list(range(n)),
    "vector_reversal": vector_reversal,
    "cyclic_shift": cyclic_shift,
    "perfect_shuffle": perfect_shuffle,
    "inverse_perfect_shuffle": inverse_perfect_shuffle,
    "bit_reversal": bit_reversal_permutation,
}


def family_by_name(name: str, n: int) -> list[int]:
    """Instantiate the named parameter-free family on ``n`` processors."""
    try:
        factory = NAMED_FAMILIES[name]
    except KeyError:
        raise ValidationError(
            f"unknown permutation family {name!r}; available: {sorted(NAMED_FAMILIES)}"
        ) from None
    return factory(n)
