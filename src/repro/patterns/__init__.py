"""Permutation families and workload generators.

:mod:`~repro.patterns.families` provides the named permutations the paper's
related-work section discusses (vector reversal, matrix transpose, perfect
shuffle, bit reversal, BPC permutations, hypercube dimension exchanges, mesh
row/column shifts) and :mod:`~repro.patterns.generators` provides randomised
workloads (uniform permutations, derangements, group-blocked permutations,
partial permutations) for the benchmark sweeps.
"""

from repro.patterns.families import (
    figure3_permutation,
    vector_reversal,
    matrix_transpose_permutation,
    perfect_shuffle,
    inverse_perfect_shuffle,
    bit_reversal_permutation,
    bpc_permutation,
    hypercube_exchange,
    all_hypercube_exchanges,
    mesh_row_shift,
    mesh_column_shift,
    cyclic_shift,
    group_cyclic_shift,
    NAMED_FAMILIES,
    family_by_name,
)
from repro.patterns.generators import (
    PermutationGenerator,
    random_permutation_workload,
    random_derangement_workload,
    random_group_blocked_permutation,
    random_group_moving_blocked_permutation,
    random_partial_permutation,
    random_within_group_permutation,
)

__all__ = [
    "figure3_permutation",
    "vector_reversal",
    "matrix_transpose_permutation",
    "perfect_shuffle",
    "inverse_perfect_shuffle",
    "bit_reversal_permutation",
    "bpc_permutation",
    "hypercube_exchange",
    "all_hypercube_exchanges",
    "mesh_row_shift",
    "mesh_column_shift",
    "cyclic_shift",
    "group_cyclic_shift",
    "NAMED_FAMILIES",
    "family_by_name",
    "PermutationGenerator",
    "random_permutation_workload",
    "random_derangement_workload",
    "random_group_blocked_permutation",
    "random_group_moving_blocked_permutation",
    "random_partial_permutation",
    "random_within_group_permutation",
]
