"""Randomised permutation workloads for the benchmark sweeps.

All generators take an ``rng`` argument (seed, :class:`random.Random`, or
``None``) and are deterministic given a seed, so every experiment in
EXPERIMENTS.md can be reproduced bit-for-bit.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.exceptions import ValidationError
from repro.pops.topology import POPSNetwork
from repro.utils.permutations import random_derangement, random_permutation
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "PermutationGenerator",
    "random_permutation_workload",
    "random_derangement_workload",
    "random_group_blocked_permutation",
    "random_group_moving_blocked_permutation",
    "random_within_group_permutation",
    "random_partial_permutation",
]


def random_permutation_workload(
    n: int, count: int, rng: random.Random | int | None = None
) -> Iterator[list[int]]:
    """Yield ``count`` independent uniform permutations of ``n`` elements."""
    check_positive_int(n, "n")
    check_positive_int(count, "count")
    generator = resolve_rng(rng)
    for _ in range(count):
        yield random_permutation(n, generator)


def random_derangement_workload(
    n: int, count: int, rng: random.Random | int | None = None
) -> Iterator[list[int]]:
    """Yield ``count`` independent uniform derangements of ``n`` elements."""
    check_positive_int(n, "n")
    check_positive_int(count, "count")
    generator = resolve_rng(rng)
    for _ in range(count):
        yield random_derangement(n, generator)


def random_group_blocked_permutation(
    network: POPSNetwork, rng: random.Random | int | None = None
) -> list[int]:
    """A random group-blocked permutation: a random permutation of the groups
    composed with an independent random permutation inside every group.

    This is the hypothesis class of Propositions 2 and 3.
    """
    generator = resolve_rng(rng)
    d, g = network.d, network.g
    group_map = random_permutation(g, generator)
    pi = [0] * network.n
    for h in range(g):
        local = random_permutation(d, generator)
        for i in range(d):
            pi[h * d + i] = group_map[h] * d + local[i]
    return pi


def random_group_moving_blocked_permutation(
    network: POPSNetwork, rng: random.Random | int | None = None
) -> list[int]:
    """A random group-blocked permutation whose induced group map is a derangement.

    Satisfies the hypotheses of Proposition 2 (``group(i) != group(π(i))`` for
    all ``i``), so Theorem 2's ``2⌈d/g⌉`` is exactly optimal on it.  Requires
    at least two groups.
    """
    generator = resolve_rng(rng)
    d, g = network.d, network.g
    if g < 2:
        raise ValidationError("a group-moving permutation requires at least two groups")
    group_map = random_derangement(g, generator)
    pi = [0] * network.n
    for h in range(g):
        local = random_permutation(d, generator)
        for i in range(d):
            pi[h * d + i] = group_map[h] * d + local[i]
    return pi


def random_within_group_permutation(
    network: POPSNetwork, rng: random.Random | int | None = None
) -> list[int]:
    """A random permutation that never leaves its group (identity group map)."""
    generator = resolve_rng(rng)
    d, g = network.d, network.g
    pi = [0] * network.n
    for h in range(g):
        local = random_permutation(d, generator)
        for i in range(d):
            pi[h * d + i] = h * d + local[i]
    return pi


def random_partial_permutation(
    n: int, density: float, rng: random.Random | int | None = None
) -> dict[int, int]:
    """A random partial permutation: a subset of sources of expected size
    ``density * n`` mapped injectively to distinct destinations.

    Returned as a ``source -> destination`` mapping; used by tests of the
    one-slot router and of the simulator on sparse traffic.
    """
    check_positive_int(n, "n")
    check_probability(density, "density")
    generator = resolve_rng(rng)
    sources = [i for i in range(n) if generator.random() < density]
    destinations = generator.sample(range(n), len(sources))
    return dict(zip(sources, destinations))


class PermutationGenerator:
    """Factory bundling all workload generators behind one seeded object.

    Useful in benchmark sweeps: build one generator per parameter point from a
    master seed and draw as many workloads as needed.
    """

    def __init__(self, network: POPSNetwork, rng: random.Random | int | None = None):
        self.network = network
        self._rng = resolve_rng(rng)

    def uniform(self) -> list[int]:
        """A uniform random permutation of the network's processors."""
        return random_permutation(self.network.n, self._rng)

    def derangement(self) -> list[int]:
        """A uniform random derangement of the network's processors."""
        return random_derangement(self.network.n, self._rng)

    def group_blocked(self) -> list[int]:
        """A random group-blocked permutation."""
        return random_group_blocked_permutation(self.network, self._rng)

    def group_moving_blocked(self) -> list[int]:
        """A random group-blocked permutation with a derangement group map."""
        return random_group_moving_blocked_permutation(self.network, self._rng)

    def within_group(self) -> list[int]:
        """A random permutation with the identity group map."""
        return random_within_group_permutation(self.network, self._rng)

    def batch(self, kind: str, count: int) -> list[list[int]]:
        """Draw ``count`` workloads of the named kind.

        ``kind`` is one of ``uniform``, ``derangement``, ``group_blocked``,
        ``group_moving_blocked``, ``within_group``.
        """
        check_positive_int(count, "count")
        factories = {
            "uniform": self.uniform,
            "derangement": self.derangement,
            "group_blocked": self.group_blocked,
            "group_moving_blocked": self.group_moving_blocked,
            "within_group": self.within_group,
        }
        try:
            factory = factories[kind]
        except KeyError:
            raise ValidationError(
                f"unknown workload kind {kind!r}; available: {sorted(factories)}"
            ) from None
        return [factory() for _ in range(count)]
