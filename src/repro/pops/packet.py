"""Packets moved by the POPS simulator.

A packet records where it started, where it must end up, and an optional
payload.  Packets are identified by their source processor (the paper's
``p_i`` is stored at processor ``i``), which is sufficient because every
routing problem considered moves exactly one packet per source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Packet"]


@dataclass(frozen=True)
class Packet:
    """A routed packet.

    Attributes
    ----------
    source:
        Processor the packet originates at (also its identity).
    destination:
        Processor the packet must be delivered to.
    payload:
        Arbitrary application data carried along (ignored by the router).
    """

    source: int
    destination: int
    payload: Any = field(default=None, compare=False)

    def with_payload(self, payload: Any) -> "Packet":
        """Return a copy of the packet carrying ``payload``."""
        return Packet(self.source, self.destination, payload)

    def __repr__(self) -> str:
        return f"Packet({self.source}->{self.destination})"
