"""Partitioned Optical Passive Stars (POPS) network substrate.

This package models the POPS(d, g) architecture of Chiarulli/Gravenstreter/
Melhem exactly as the paper describes it: ``n = d * g`` processors partitioned
into ``g`` groups of ``d``, one optical passive star coupler ``c(b, a)`` per
ordered pair of groups, and a slot-synchronous SIMD execution model where in
each slot every processor may drive any subset of its ``g`` transmitters with
a single packet and read from exactly one of its ``g`` receivers.

The substrate is a slot-accurate simulator rather than optical hardware; it
enforces the conflict rules the paper's results depend on (one packet per
coupler per slot, one read per processor per slot) and counts slots.
"""

from repro.pops.topology import POPSNetwork, Coupler
from repro.pops.packet import Packet
from repro.pops.schedule import Transmission, Reception, SlotProgram, RoutingSchedule
from repro.pops.simulator import POPSSimulator, SimulationResult
from repro.pops.engine import (
    BatchedSimulator,
    CompiledSchedule,
    ScheduleCache,
    compile_schedule,
    schedule_cache,
)
from repro.pops.collective_engine import (
    CollectiveCompiledSchedule,
    CollectiveSimulator,
    compile_collective_schedule,
)
from repro.pops.lowering import classify_schedule
from repro.pops.trace import SlotTrace, SimulationTrace, CompiledTrace
from repro.pops.render import (
    render_schedule,
    render_slot,
    schedule_to_dict,
    coupler_usage_grid,
)

__all__ = [
    "render_schedule",
    "render_slot",
    "schedule_to_dict",
    "coupler_usage_grid",
    "POPSNetwork",
    "Coupler",
    "Packet",
    "Transmission",
    "Reception",
    "SlotProgram",
    "RoutingSchedule",
    "POPSSimulator",
    "SimulationResult",
    "BatchedSimulator",
    "CompiledSchedule",
    "CollectiveCompiledSchedule",
    "CollectiveSimulator",
    "ScheduleCache",
    "classify_schedule",
    "compile_schedule",
    "compile_collective_schedule",
    "schedule_cache",
    "SlotTrace",
    "SimulationTrace",
    "CompiledTrace",
]
