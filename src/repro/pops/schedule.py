"""Routing schedules: what every processor does in every slot.

A :class:`SlotProgram` is the SIMD instruction for one slot: a set of
transmissions (processor drives a coupler with a packet) and receptions
(processor reads one of its receivers).  A :class:`RoutingSchedule` is an
ordered sequence of slot programs.

Schedules are *plans*; they can be statically validated against a
:class:`~repro.pops.topology.POPSNetwork` (wiring and conflict rules that do
not depend on packet positions) and then executed by
:class:`~repro.pops.simulator.POPSSimulator`, which additionally checks the
dynamic rules (the sender must actually hold the packet, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from repro.exceptions import (
    ConfigurationError,
    CouplerConflictError,
    ReceiverConflictError,
    TransmitterError,
)
from repro.pops.packet import Packet
from repro.pops.topology import Coupler, POPSNetwork

__all__ = ["Transmission", "Reception", "SlotProgram", "RoutingSchedule"]


@dataclass(frozen=True)
class Transmission:
    """One processor driving one coupler with one packet during a slot.

    ``consume`` controls whether the packet leaves the sender's buffer (the
    normal case for routing) or is copied (broadcast-style collectives keep the
    local copy).
    """

    sender: int
    coupler: Coupler
    packet: Packet
    consume: bool = True


@dataclass(frozen=True)
class Reception:
    """One processor reading one of its receivers during a slot."""

    receiver: int
    coupler: Coupler


@dataclass
class SlotProgram:
    """Everything that happens in a single slot."""

    transmissions: list[Transmission] = field(default_factory=list)
    receptions: list[Reception] = field(default_factory=list)

    def add_transmission(
        self, sender: int, coupler: Coupler, packet: Packet, consume: bool = True
    ) -> None:
        """Append a transmission to this slot."""
        self.transmissions.append(Transmission(sender, coupler, packet, consume))

    def add_reception(self, receiver: int, coupler: Coupler) -> None:
        """Append a reception to this slot."""
        self.receptions.append(Reception(receiver, coupler))

    @property
    def n_packets_moved(self) -> int:
        """Number of distinct couplers carrying a packet in this slot."""
        return len({t.coupler for t in self.transmissions})

    def couplers_used(self) -> set[Coupler]:
        """The set of couplers driven in this slot."""
        return {t.coupler for t in self.transmissions}

    def validate(self, network: POPSNetwork) -> None:
        """Statically validate this slot against the POPS communication rules.

        Checks wiring (each sender/receiver owns the port it uses), the
        one-packet-per-coupler rule, the one-read-per-processor rule, and that
        a single processor does not try to send two *different* packets (it may
        broadcast the same packet through several transmitters).

        Raises
        ------
        TransmitterError, CouplerConflictError, ReceiverConflictError,
        ConfigurationError
        """
        driven: dict[Coupler, Transmission] = {}
        packets_by_sender: dict[int, Packet] = {}
        for transmission in self.transmissions:
            sender = transmission.sender
            coupler = transmission.coupler
            if not (0 <= sender < network.n):
                raise ConfigurationError(f"sender {sender} is not a processor of {network!r}")
            if not (0 <= coupler.source_group < network.g) or not (
                0 <= coupler.dest_group < network.g
            ):
                raise ConfigurationError(f"{coupler!r} does not exist in {network!r}")
            if not network.can_transmit(sender, coupler):
                raise TransmitterError(
                    f"processor {sender} (group {network.group_of(sender)}) has no "
                    f"transmitter into {coupler!r}"
                )
            if coupler in driven and driven[coupler].sender != sender:
                raise CouplerConflictError(
                    f"{coupler!r} driven by both processor {driven[coupler].sender} "
                    f"and processor {sender} in the same slot"
                )
            if coupler in driven and driven[coupler].packet != transmission.packet:
                raise CouplerConflictError(
                    f"{coupler!r} driven with two different packets by processor {sender}"
                )
            driven[coupler] = transmission
            previous = packets_by_sender.get(sender)
            if previous is not None and previous != transmission.packet:
                raise CouplerConflictError(
                    f"processor {sender} attempts to send two different packets "
                    f"({previous!r} and {transmission.packet!r}) in one slot"
                )
            packets_by_sender[sender] = transmission.packet

        readers: set[int] = set()
        for reception in self.receptions:
            receiver = reception.receiver
            coupler = reception.coupler
            if not (0 <= receiver < network.n):
                raise ConfigurationError(
                    f"receiver {receiver} is not a processor of {network!r}"
                )
            if not network.can_receive(receiver, coupler):
                raise TransmitterError(
                    f"processor {receiver} (group {network.group_of(receiver)}) has no "
                    f"receiver from {coupler!r}"
                )
            if receiver in readers:
                raise ReceiverConflictError(
                    f"processor {receiver} reads more than one coupler in the same slot"
                )
            readers.add(receiver)


@dataclass
class RoutingSchedule:
    """An ordered sequence of slot programs produced by a router.

    Attributes
    ----------
    network:
        The POPS network the schedule targets.
    slots:
        Slot programs in execution order.
    description:
        Human-readable provenance (which router, which permutation family, ...).
    """

    network: POPSNetwork
    slots: list[SlotProgram] = field(default_factory=list)
    description: str = ""

    @property
    def n_slots(self) -> int:
        """Number of slots the schedule occupies."""
        return len(self.slots)

    def new_slot(self) -> SlotProgram:
        """Append and return a fresh slot program."""
        slot = SlotProgram()
        self.slots.append(slot)
        return slot

    def extend(self, other: "RoutingSchedule") -> None:
        """Append all slots of ``other`` (which must target the same network)."""
        if other.network != self.network:
            raise ConfigurationError(
                "cannot concatenate schedules for different networks: "
                f"{self.network!r} vs {other.network!r}"
            )
        self.slots.extend(other.slots)

    def validate(self) -> None:
        """Statically validate every slot (wiring and per-slot conflict rules)."""
        for slot in self.slots:
            slot.validate(self.network)

    def packets(self) -> set[Packet]:
        """All packets mentioned anywhere in the schedule."""
        return {t.packet for slot in self.slots for t in slot.transmissions}

    def couplers_used_per_slot(self) -> list[int]:
        """Number of couplers driven in each slot."""
        return [slot.n_packets_moved for slot in self.slots]

    def __iter__(self) -> Iterator[SlotProgram]:
        return iter(self.slots)

    def __len__(self) -> int:
        return len(self.slots)

    @classmethod
    def concatenate(
        cls, network: POPSNetwork, schedules: Iterable["RoutingSchedule"], description: str = ""
    ) -> "RoutingSchedule":
        """Concatenate several schedules for the same network into one."""
        result = cls(network=network, description=description)
        for schedule in schedules:
            result.extend(schedule)
        return result
