"""Batched fast-path execution of routing schedules.

:class:`~repro.pops.simulator.POPSSimulator` executes one Python
``Transmission``/``Reception`` object at a time, which caps the network sizes
experiments can explore.  This module exploits a structural property of the
POPS slot model: the *dataflow* of a schedule is entirely static.  Which
coupler carries which packet, which reception resolves to which delivery, and
which packets leave their sender are all functions of the schedule alone — the
only thing that depends on execution state is whether each sender actually
holds the packet it drives.

:func:`compile_schedule` therefore lowers a
:class:`~repro.pops.schedule.RoutingSchedule` once into flat integer arrays
(CSR-style, one segment per slot), performing every static check (wiring,
coupler conflicts, receiver conflicts) vectorized, and
:class:`BatchedSimulator` executes a slot as three numpy operations: one
comparison for the dynamic buffer-ownership check and two scatters for the
buffer commit.  Buffers are a single packet-location array ``loc`` with
``loc[k]`` the processor currently holding packet ``k`` (or ``-1`` when the
packet was consumed without being read).

The engine covers the consume-and-deliver model used by permutation routing.
Schedules that *duplicate* packets — non-consuming (broadcast-style) sends, or
several processors reading the same coupler in one slot — cannot be expressed
in a flat location array and raise
:class:`~repro.exceptions.UnsupportedScheduleError` at compile time;
``POPSSimulator(backend="batched")`` catches that and falls back to the
reference implementation, so the switch is always safe to flip.

Error parity with the reference simulator: static violations are raised before
execution (the reference calls ``schedule.validate()`` up front, and the
engine re-runs it on the slow path to reproduce the exact exception), and the
two dynamic errors — a sender not holding its packet, a strict read of an idle
coupler — are raised at the same slot, for the same offender, with the same
message.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    SimulationError,
    UnsupportedScheduleError,
)
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import Coupler, POPSNetwork
from repro.pops.trace import CompiledTrace, SimulationTrace

__all__ = [
    "CompiledSchedule",
    "BatchedSimulator",
    "ScheduleCache",
    "compile_schedule",
    "schedule_cache",
]


@dataclass
class CompiledSchedule:
    """A routing schedule lowered to flat integer arrays.

    All arrays are concatenated over slots; ``*_ptr`` arrays hold the slot
    boundaries (``xs[ptr[s]:ptr[s + 1]]`` is slot ``s``'s segment), so one
    compiled schedule drives the whole run without touching Python objects.

    Attributes
    ----------
    network:
        The network the schedule targets.
    packets:
        The packet universe; array entries index into this list.
    tx_sender / tx_packet / tx_ptr:
        Per-slot transmissions, for the dynamic ownership check.
    pay_coupler / pay_packet / pay_ptr:
        Per-slot coupler payloads (first transmission per driven coupler, in
        schedule order) — the static part of the trace.
    del_receiver / del_packet / del_ptr:
        Per-slot deliveries (receptions joined with payloads, idle reads
        dropped) in reception order.
    con_packet / con_ptr:
        Per-slot packets consumed (each sent packet leaves its sender).
    idle_receiver / idle_coupler:
        Per slot, the first reception of an idle coupler (``-1`` when none);
        strict runs abort there.
    initial_loc:
        Starting processor of every packet in the universe (``-1``: nowhere).
    pk_destination:
        Destination of every packet, for vectorized delivery verification.
    """

    network: POPSNetwork
    packets: list[Packet]
    n_slots: int
    tx_sender: np.ndarray
    tx_packet: np.ndarray
    tx_ptr: np.ndarray
    pay_coupler: np.ndarray
    pay_packet: np.ndarray
    pay_ptr: np.ndarray
    del_receiver: np.ndarray
    del_packet: np.ndarray
    del_ptr: np.ndarray
    con_packet: np.ndarray
    con_ptr: np.ndarray
    idle_receiver: np.ndarray
    idle_coupler: np.ndarray
    initial_loc: np.ndarray
    pk_destination: np.ndarray

    @property
    def n_transmissions(self) -> int:
        """Total transmissions across all slots."""
        return int(self.tx_sender.shape[0])

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the compiled arrays."""
        return sum(
            getattr(self, name).nbytes
            for name in (
                "tx_sender", "tx_packet", "tx_ptr",
                "pay_coupler", "pay_packet", "pay_ptr",
                "del_receiver", "del_packet", "del_ptr",
                "con_packet", "con_ptr",
                "idle_receiver", "idle_coupler",
                "initial_loc", "pk_destination",
            )
        )


class ScheduleCache:
    """Cache of :class:`CompiledSchedule` objects keyed by caller-chosen keys.

    Lowering a schedule is the dominant fixed cost of the batched engine, and
    sweeps recompile identical schedules on every iteration: the same
    ``(router backend, permutation, d, g, n)`` always lowers to the same
    arrays.  Callers that can prove that determinism pass the corresponding
    key (see :func:`repro.analysis.metrics.measure_routing`) and repeated
    compilations become dictionary lookups.

    The cache is doubly bounded — at most ``max_entries`` schedules *and*
    at most ``max_bytes`` of compiled arrays, FIFO-evicted — so sweeping
    huge networks (a compiled n≈20k schedule is megabytes of arrays) cannot
    balloon a worker's memory even at a 0% hit rate.  It counts hits and
    misses; ``pops-repro sweep --cache-stats`` surfaces the counters.
    Compiled schedules are immutable after compilation, so sharing one object
    between executions is safe (``execute`` copies the location array).
    """

    def __init__(self, max_entries: int = 64, max_bytes: int = 128 * 1024 * 1024):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: dict[Hashable, CompiledSchedule] = {}
        self._total_bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Approximate bytes of compiled arrays currently cached."""
        return self._total_bytes

    def get(self, key: Hashable) -> CompiledSchedule | None:
        """Look up ``key``, counting the access as a hit or a miss."""
        compiled = self._entries.get(key)
        if compiled is None:
            self.misses += 1
        else:
            self.hits += 1
        return compiled

    def put(self, key: Hashable, compiled: CompiledSchedule) -> None:
        """Store ``compiled`` under ``key``, FIFO-evicting until within bounds.

        A schedule larger than ``max_bytes`` on its own is not cached at all.
        """
        nbytes = compiled.nbytes
        if nbytes > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._total_bytes -= old.nbytes
        while self._entries and (
            len(self._entries) >= self.max_entries
            or self._total_bytes + nbytes > self.max_bytes
        ):
            evicted = self._entries.pop(next(iter(self._entries)))
            self._total_bytes -= evicted.nbytes
        self._entries[key] = compiled
        self._total_bytes += nbytes

    def stats(self) -> dict[str, int]:
        """Counters as a plain dict: ``hits``, ``misses``, ``entries``."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self._total_bytes = 0
        self.hits = 0
        self.misses = 0


#: Process-wide default cache; worker processes each hold their own instance.
_SCHEDULE_CACHE = ScheduleCache()


def schedule_cache() -> ScheduleCache:
    """The process-wide compiled-schedule cache."""
    return _SCHEDULE_CACHE


def _packet_universe(
    network: POPSNetwork,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None,
) -> tuple[list[Packet], np.ndarray]:
    """The indexable packet list and initial location of every packet."""
    if initial_buffers is not None:
        universe = []
        locations_l: list[int] = []
        seen: set[Packet] = set()
        for processor in sorted(initial_buffers):
            for packet in initial_buffers[processor]:
                if packet in seen:
                    raise UnsupportedScheduleError(
                        f"{packet!r} appears in more than one initial buffer; "
                        "the batched engine tracks a single location per packet"
                    )
                seen.add(packet)
                universe.append(packet)
                locations_l.append(processor)
        return universe, np.array(locations_l, dtype=np.int64)

    universe = list(packets)
    locations = np.array([p.source for p in universe], dtype=np.int64)
    bad = np.flatnonzero((locations < 0) | (locations >= network.n))
    if bad.size:
        raise SimulationError(
            f"{universe[int(bad[0])]!r} has source outside the network of size "
            f"{network.n}"
        )
    return universe, locations


def _resolve_packet_indices(
    network: POPSNetwork,
    universe: list[Packet],
    initial_loc: np.ndarray,
    pk_destination: np.ndarray,
    schedule_packets: list[Packet],
) -> tuple[np.ndarray, list[Packet], np.ndarray, np.ndarray]:
    """Map every transmitted packet to its universe index by value.

    The fast path indexes the universe by packet *source* — valid whenever
    sources are unique, which covers every permutation-routing workload — and
    never hashes a ``Packet``.  Duplicated sources, or schedule packets absent
    from the universe, fall back to a dict keyed by packet value; unknown
    packets are registered with no location so the dynamic ownership check
    fails at the right slot with the reference error message.

    Returns the index array plus the (possibly extended) universe, locations
    and destination arrays.
    """
    n_tx = len(schedule_packets)
    u_size = len(universe)
    pk_source = np.array([p.source for p in universe], dtype=np.int64)
    sources_unique = bool(((pk_source >= 0) & (pk_source < network.n)).all())
    if sources_unique:
        src_to_idx = np.full(network.n, -1, dtype=np.int64)
        src_to_idx[pk_source] = np.arange(u_size, dtype=np.int64)
        # Scatter-then-gather equals arange iff no source was written twice.
        sources_unique = bool(
            (src_to_idx[pk_source] == np.arange(u_size, dtype=np.int64)).all()
        )
    if sources_unique and n_tx and u_size:
        t_src = np.array([p.source for p in schedule_packets], dtype=np.int64)
        t_dst = np.array(
            [p.destination for p in schedule_packets], dtype=np.int64
        )
        in_range = (t_src >= 0) & (t_src < network.n)
        idx = np.where(in_range, src_to_idx[np.clip(t_src, 0, network.n - 1)], -1)
        known = (idx >= 0) & (pk_destination[np.maximum(idx, 0)] == t_dst)
        if known.all():
            return idx, universe, initial_loc, pk_destination
    else:
        known = np.zeros(n_tx, dtype=bool)
        idx = np.full(n_tx, -1, dtype=np.int64)

    # Slow path: hash-based resolution (duplicate sources / unknown packets).
    index_of: dict[Packet, int] = {}
    for i, packet in enumerate(universe):
        index_of.setdefault(packet, i)
    extra_loc: list[int] = []
    for i in np.flatnonzero(~known):
        packet = schedule_packets[i]
        j = index_of.get(packet)
        if j is None:
            j = len(universe)
            index_of[packet] = j
            universe.append(packet)
            extra_loc.append(-1)
        idx[i] = j
    if extra_loc:
        extra = np.array(extra_loc, dtype=np.int64)
        initial_loc = np.concatenate((initial_loc, extra))
        pk_destination = np.concatenate(
            (
                pk_destination,
                np.array(
                    [p.destination for p in universe[u_size:]], dtype=np.int64
                ),
            )
        )
    return idx, universe, initial_loc, pk_destination


def _group_firsts(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable group-by on integer keys.

    Returns ``(order, same, new_group)`` where ``order`` sorts ``keys``
    stably, ``same[i]`` marks ``keys[order][i + 1] == keys[order][i]``, and
    ``new_group`` flags the first (earliest, thanks to stability) element of
    each key group within the sorted view.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    same = sorted_keys[1:] == sorted_keys[:-1]
    new_group = np.empty(keys.size, dtype=bool)
    if keys.size:
        new_group[0] = True
        new_group[1:] = ~same
    return order, same, new_group


def compile_schedule(
    network: POPSNetwork,
    schedule: RoutingSchedule,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None = None,
) -> CompiledSchedule:
    """Lower ``schedule`` to integer arrays, raising any static violation.

    Raises
    ------
    SimulationError
        (or a subclass) exactly as ``schedule.validate()`` would for static
        violations, at compile time rather than slot by slot.
    UnsupportedScheduleError
        If the schedule duplicates packets (non-consuming sends, multi-reader
        couplers) and therefore cannot run on a flat location array.
    """
    if schedule.network != network:
        raise SimulationError(
            f"schedule targets {schedule.network!r}, simulator holds {network!r}"
        )
    g = network.g
    g2 = g * g
    universe, initial_loc = _packet_universe(network, packets, initial_buffers)
    pk_destination = np.array([p.destination for p in universe], dtype=np.int64)

    # -- flatten to integer arrays (the only per-object Python loops) ----------
    all_tx = [t for slot in schedule.slots for t in slot.transmissions]
    all_rx = [r for slot in schedule.slots for r in slot.receptions]
    tx_counts = [len(slot.transmissions) for slot in schedule.slots]
    rx_counts = [len(slot.receptions) for slot in schedule.slots]
    if not all([t.consume for t in all_tx]):
        raise UnsupportedScheduleError(
            "non-consuming (broadcast-style) transmissions duplicate packets; "
            "use the reference simulator"
        )
    tx_packet, universe, initial_loc, pk_destination = _resolve_packet_indices(
        network, universe, initial_loc, pk_destination,
        [t.packet for t in all_tx],
    )

    n_tx, n_rx = len(all_tx), len(all_rx)
    n_slots = len(schedule.slots)
    tx_sender = np.array([t.sender for t in all_tx], dtype=np.int64)
    tx_couplers = [t.coupler for t in all_tx]
    tx_dest = np.array([c.dest_group for c in tx_couplers], dtype=np.int64)
    tx_src = np.array([c.source_group for c in tx_couplers], dtype=np.int64)
    tx_ptr = np.concatenate(([0], np.cumsum(tx_counts, dtype=np.int64)))
    rx_receiver = np.array([r.receiver for r in all_rx], dtype=np.int64)
    rx_couplers = [r.coupler for r in all_rx]
    rx_dest = np.array([c.dest_group for c in rx_couplers], dtype=np.int64)
    rx_src = np.array([c.source_group for c in rx_couplers], dtype=np.int64)
    rx_ptr = np.concatenate(([0], np.cumsum(rx_counts, dtype=np.int64)))
    tx_slot = np.repeat(np.arange(n_slots, dtype=np.int64), tx_counts)
    rx_slot = np.repeat(np.arange(n_slots, dtype=np.int64), rx_counts)

    tx_coupler = tx_dest * g + tx_src
    rx_coupler = rx_dest * g + rx_src
    u_size = len(universe)

    # One shared stable group-by over (slot, coupler): it powers both the
    # coupler-conflict checks and the payload dedup below.
    tx_key = tx_slot * g2 + tx_coupler
    c_order, c_same, c_new = _group_firsts(tx_key)

    # -- static validation (vectorized; slow path reproduces the exact error) --
    n, d = network.n, network.d
    static_bad = False
    if n_tx:
        static_bad = (
            bool(((tx_sender < 0) | (tx_sender >= n)).any())
            or bool(
                ((tx_dest < 0) | (tx_dest >= g) | (tx_src < 0) | (tx_src >= g)).any()
            )
            or bool((tx_sender // d != tx_src).any())
            # Same coupler driven twice in a slot: sender and packet must agree.
            or bool((c_same & (tx_sender[c_order][1:] != tx_sender[c_order][:-1])).any())
            or bool((c_same & (tx_packet[c_order][1:] != tx_packet[c_order][:-1])).any())
        )
        if not static_bad:
            # One packet per sender per slot (broadcasting one packet through
            # several transmitters is legal, two different packets is not).
            s_order, s_same, _ = _group_firsts(tx_slot * n + tx_sender)
            static_bad = bool(
                (s_same & (tx_packet[s_order][1:] != tx_packet[s_order][:-1])).any()
            )
    if not static_bad and n_rx:
        receiver_key = np.sort(rx_slot * n + rx_receiver)
        static_bad = (
            bool(((rx_receiver < 0) | (rx_receiver >= n)).any())
            or bool(
                ((rx_dest < 0) | (rx_dest >= g) | (rx_src < 0) | (rx_src >= g)).any()
            )
            or bool((rx_receiver // d != rx_dest).any())
            or bool((receiver_key[1:] == receiver_key[:-1]).any())
        )
    if static_bad:
        schedule.validate()  # raises the same exception the reference would
        raise SimulationError(
            "batched engine rejected the schedule but schedule.validate() "
            "accepted it; please report this divergence"
        )

    # -- static dataflow, fully vectorized across slots ------------------------
    # Payloads: first transmission per (slot, coupler), in schedule order.
    first_by_key = c_order[c_new]
    uniq_key = tx_key[c_order][c_new]
    first = np.sort(first_by_key)
    pay_coupler = tx_coupler[first]
    pay_packet = tx_packet[first]
    pay_counts = np.bincount(tx_slot[first], minlength=n_slots)

    # Consumed: each packet sent in a slot leaves its sender once.
    p_order, _, p_new = _group_firsts(tx_slot * max(u_size, 1) + tx_packet)
    con_first = np.sort(p_order[p_new])
    con_packet = tx_packet[con_first]
    con_counts = np.bincount(tx_slot[con_first], minlength=n_slots)

    # Deliveries: join receptions against payloads on the (slot, coupler) key.
    rx_key = rx_slot * g2 + rx_coupler
    pos = np.searchsorted(uniq_key, rx_key)
    live = np.zeros(n_rx, dtype=bool)
    in_bounds = pos < uniq_key.size
    live[in_bounds] = uniq_key[pos[in_bounds]] == rx_key[in_bounds]
    live_idx = np.flatnonzero(live)
    del_receiver = rx_receiver[live_idx]
    del_packet = tx_packet[first_by_key][pos[live_idx]]
    del_counts = np.bincount(rx_slot[live_idx], minlength=n_slots)

    # Idle reads: first reception of an undriven coupler per slot.
    idle_receiver = np.full(n_slots, -1, dtype=np.int64)
    idle_coupler = np.full(n_slots, -1, dtype=np.int64)
    idle_idx = np.flatnonzero(~live)
    if idle_idx.size:
        idle_slots, idle_first = np.unique(rx_slot[idle_idx], return_index=True)
        idle_receiver[idle_slots] = rx_receiver[idle_idx[idle_first]]
        idle_coupler[idle_slots] = rx_coupler[idle_idx[idle_first]]

    # A packet read by several receivers in one slot would be duplicated.
    del_key = np.sort(rx_slot[live_idx] * max(u_size, 1) + del_packet)
    dup = np.flatnonzero(del_key[1:] == del_key[:-1])
    if dup.size:
        raise UnsupportedScheduleError(
            f"slot {int(del_key[dup[0]] // max(u_size, 1))}: a packet is read "
            "by several receivers, which duplicates it; use the reference "
            "simulator"
        )

    return CompiledSchedule(
        network=network,
        packets=universe,
        n_slots=n_slots,
        tx_sender=tx_sender,
        tx_packet=tx_packet,
        tx_ptr=tx_ptr,
        pay_coupler=pay_coupler,
        pay_packet=pay_packet,
        pay_ptr=np.concatenate(([0], np.cumsum(pay_counts, dtype=np.int64))),
        del_receiver=del_receiver,
        del_packet=del_packet,
        del_ptr=np.concatenate(([0], np.cumsum(del_counts, dtype=np.int64))),
        con_packet=con_packet,
        con_ptr=np.concatenate(([0], np.cumsum(con_counts, dtype=np.int64))),
        idle_receiver=idle_receiver,
        idle_coupler=idle_coupler,
        initial_loc=initial_loc,
        pk_destination=pk_destination,
    )


class BatchedSimulator:
    """Vectorized slot-model executor, trace-equivalent to the reference.

    Parameters
    ----------
    network:
        The POPS(d, g) network to simulate.
    strict_receptions:
        Same contract as :class:`~repro.pops.simulator.POPSSimulator`: a read
        of an idle coupler raises :class:`SimulationError` when ``True`` and
        silently yields nothing when ``False``.
    """

    def __init__(self, network: POPSNetwork, strict_receptions: bool = True):
        self.network = network
        self.strict_receptions = strict_receptions

    def compile(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        initial_buffers: dict[int, list[Packet]] | None = None,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ) -> CompiledSchedule:
        """Lower ``schedule`` once; the result can be executed repeatedly.

        ``cache_key`` opts into the compiled-schedule cache: the caller
        asserts that the key fully determines ``(schedule, packets)`` — e.g.
        ``(router backend, d, g, permutation)`` for deterministic routers —
        and repeated compilations under the same key return the cached
        arrays.  Because a hit returns the *first* compilation's packet
        universe and ``Packet.payload`` is excluded from packet equality,
        the key must also determine payloads: keys may only be shared by
        runs whose packets are payload-free or payload-identical (the
        routing layer's packets carry no payloads).  ``cache`` overrides the
        process-wide cache (useful for isolation in tests and benchmarks).
        Runs with explicit ``initial_buffers`` never consult the cache,
        since buffer contents are not covered by the key contract.
        """
        if cache_key is None or initial_buffers is not None:
            return compile_schedule(self.network, schedule, packets, initial_buffers)
        store = cache if cache is not None else schedule_cache()
        compiled = store.get(cache_key)
        if compiled is None:
            compiled = compile_schedule(self.network, schedule, packets, None)
            store.put(cache_key, compiled)
        return compiled

    def execute(self, compiled: CompiledSchedule) -> np.ndarray:
        """Run a compiled schedule, returning the final packet-location array."""
        loc = compiled.initial_loc.copy()
        packets = compiled.packets
        tx_ptr, del_ptr, con_ptr = compiled.tx_ptr, compiled.del_ptr, compiled.con_ptr
        strict = self.strict_receptions
        for s in range(compiled.n_slots):
            senders = compiled.tx_sender[tx_ptr[s]:tx_ptr[s + 1]]
            sent = compiled.tx_packet[tx_ptr[s]:tx_ptr[s + 1]]
            held = loc[sent] == senders
            if not held.all():
                i = int(np.argmin(held))
                raise SimulationError(
                    f"slot {s}: processor {senders[i]} does not hold "
                    f"{packets[sent[i]]!r}"
                )
            if strict and compiled.idle_receiver[s] >= 0:
                cid = int(compiled.idle_coupler[s])
                coupler = Coupler(cid // self.network.g, cid % self.network.g)
                raise SimulationError(
                    f"slot {s}: processor {compiled.idle_receiver[s]} reads "
                    f"idle {coupler!r}"
                )
            loc[compiled.con_packet[con_ptr[s]:con_ptr[s + 1]]] = -1
            loc[compiled.del_packet[del_ptr[s]:del_ptr[s + 1]]] = (
                compiled.del_receiver[del_ptr[s]:del_ptr[s + 1]]
            )
        return loc

    def verify_locations(self, compiled: CompiledSchedule, loc: np.ndarray) -> None:
        """Vectorized delivery check: every packet sits at its destination.

        Equivalent to
        :meth:`~repro.pops.simulator.SimulationResult.verify_permutation_delivery`
        over the whole packet universe, without building buffer dicts.
        """
        from repro.exceptions import DeliveryError

        misplaced = np.flatnonzero(loc != compiled.pk_destination)
        if misplaced.size:
            i = int(misplaced[0])
            packet = compiled.packets[i]
            where = [int(loc[i])] if loc[i] >= 0 else []
            raise DeliveryError(
                f"{packet!r} should end at processor {packet.destination}, "
                f"found at {where}"
            )

    def buffers_from_locations(
        self, compiled: CompiledSchedule, loc: np.ndarray
    ) -> dict[int, list[Packet]]:
        """Reconstruct ``processor -> packets held`` from a location array.

        Within a buffer, packets appear in universe order (the reference
        simulator preserves arrival order instead; compare as multisets).
        """
        buffers: dict[int, list[Packet]] = {
            p: [] for p in self.network.processors()
        }
        for idx in np.flatnonzero(loc >= 0):
            buffers[int(loc[idx])].append(compiled.packets[idx])
        return buffers

    def compiled_trace(self, compiled: CompiledSchedule) -> CompiledTrace:
        """The (static) trace of a compiled schedule as a zero-copy array view.

        The returned :class:`~repro.pops.trace.CompiledTrace` shares the
        compiled schedule's payload/delivery arrays; statistics over it are
        numpy reductions, and ``.materialize()`` produces the dict-based
        :class:`~repro.pops.trace.SimulationTrace` when per-slot objects are
        genuinely needed.
        """
        return CompiledTrace(
            g=self.network.g,
            packets=compiled.packets,
            pay_coupler=compiled.pay_coupler,
            pay_packet=compiled.pay_packet,
            pay_ptr=compiled.pay_ptr,
            del_receiver=compiled.del_receiver,
            del_packet=compiled.del_packet,
            del_ptr=compiled.del_ptr,
        )

    def trace_from_compiled(self, compiled: CompiledSchedule) -> SimulationTrace:
        """Materialize the per-slot dict trace of a compiled schedule."""
        return self.compiled_trace(compiled).materialize()

    def run(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        initial_buffers: dict[int, list[Packet]] | None = None,
        collect_trace: bool = True,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ):
        """Compile and execute ``schedule``, packaging a ``SimulationResult``.

        The result's trace is a :class:`~repro.pops.trace.CompiledTrace` —
        integer arrays end to end; statistics are numpy reductions and
        per-slot dicts are only built if ``trace.materialize()`` (or the
        ``trace.slots`` escape hatch) is called.  With ``collect_trace=False``
        the trace is left empty.  ``cache_key`` and ``cache`` are forwarded to
        :meth:`compile`.
        """
        from repro.pops.simulator import SimulationResult

        compiled = self.compile(
            schedule, packets, initial_buffers, cache_key=cache_key, cache=cache
        )
        loc = self.execute(compiled)
        trace = (
            self.compiled_trace(compiled) if collect_trace else SimulationTrace()
        )
        return SimulationResult(
            network=self.network,
            buffers=self.buffers_from_locations(compiled, loc),
            trace=trace,
        )

    def route_and_verify(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ):
        """Run ``schedule`` and assert every packet reached its destination."""
        result = self.run(schedule, packets, cache_key=cache_key, cache=cache)
        result.verify_permutation_delivery(packets)
        return result
