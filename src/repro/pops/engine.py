"""Batched fast-path execution of routing schedules.

:class:`~repro.pops.simulator.POPSSimulator` executes one Python
``Transmission``/``Reception`` object at a time, which caps the network sizes
experiments can explore.  This module exploits a structural property of the
POPS slot model: the *dataflow* of a schedule is entirely static.  Which
coupler carries which packet, which reception resolves to which delivery, and
which packets leave their sender are all functions of the schedule alone — the
only thing that depends on execution state is whether each sender actually
holds the packet it drives.

:func:`compile_schedule` therefore lowers a
:class:`~repro.pops.schedule.RoutingSchedule` once into flat integer arrays
(CSR-style, one segment per slot) via the shared front end in
:mod:`repro.pops.lowering` — flattening, vectorized static validation
(wiring, coupler conflicts, receiver conflicts) and the reception/payload
join are common to all compiled engines — and :class:`BatchedSimulator`
executes a slot as three numpy operations: one comparison for the dynamic
buffer-ownership check and two scatters for the buffer commit.  Buffers are a
single packet-location array ``loc`` with ``loc[k]`` the processor currently
holding packet ``k`` (or ``-1`` when the packet was consumed without being
read).

The engine covers the consume-and-deliver model used by permutation routing.
Schedules that *duplicate* packets — non-consuming (broadcast-style) sends, or
several processors reading the same coupler in one slot — cannot be expressed
in a flat location array and raise
:class:`~repro.exceptions.UnsupportedScheduleError` at compile time;
``POPSSimulator(backend="batched")`` catches that and falls back, first to the
vectorized multi-location :class:`~repro.pops.collective_engine.
CollectiveSimulator` and ultimately to the reference implementation, so the
switch is always safe to flip.

Error parity with the reference simulator: static violations are raised before
execution (the reference calls ``schedule.validate()`` up front, and the
engine re-runs it on the slow path to reproduce the exact exception), and the
two dynamic errors — a sender not holding its packet, a strict read of an idle
coupler — are raised at the same slot, for the same offender, with the same
message.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    SimulationError,
    UnsupportedScheduleError,
)
from repro.obs import get_tracer
from repro.obs.metrics import Counter
from repro.pops.lowering import group_firsts, lower_schedule
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import Coupler, POPSNetwork
from repro.pops.trace import CompiledTrace, CompiledTraceBatch, SimulationTrace

__all__ = [
    "CompiledSchedule",
    "CompiledScheduleBatch",
    "BatchedSimulator",
    "ScheduleCache",
    "compile_schedule",
    "schedule_cache",
]


@dataclass
class CompiledSchedule:
    """A routing schedule lowered to flat integer arrays.

    All arrays are concatenated over slots; ``*_ptr`` arrays hold the slot
    boundaries (``xs[ptr[s]:ptr[s + 1]]`` is slot ``s``'s segment), so one
    compiled schedule drives the whole run without touching Python objects.

    Attributes
    ----------
    network:
        The network the schedule targets.
    packets:
        The packet universe; array entries index into this sequence (a
        plain list when lowered in-process, a lazily materialized sequence
        when loaded from the persistent plan store).
    tx_sender / tx_packet / tx_ptr:
        Per-slot transmissions, for the dynamic ownership check.
    pay_coupler / pay_packet / pay_ptr:
        Per-slot coupler payloads (first transmission per driven coupler, in
        schedule order) — the static part of the trace.
    del_receiver / del_packet / del_ptr:
        Per-slot deliveries (receptions joined with payloads, idle reads
        dropped) in reception order.
    con_packet / con_ptr:
        Per-slot packets consumed (each sent packet leaves its sender).
    idle_receiver / idle_coupler:
        Per slot, the first reception of an idle coupler (``-1`` when none);
        strict runs abort there.
    initial_loc:
        Starting processor of every packet in the universe (``-1``: nowhere).
    pk_destination:
        Destination of every packet, for vectorized delivery verification.
    """

    network: POPSNetwork
    packets: Sequence[Packet]
    n_slots: int
    tx_sender: np.ndarray
    tx_packet: np.ndarray
    tx_ptr: np.ndarray
    pay_coupler: np.ndarray
    pay_packet: np.ndarray
    pay_ptr: np.ndarray
    del_receiver: np.ndarray
    del_packet: np.ndarray
    del_ptr: np.ndarray
    con_packet: np.ndarray
    con_ptr: np.ndarray
    idle_receiver: np.ndarray
    idle_coupler: np.ndarray
    initial_loc: np.ndarray
    pk_destination: np.ndarray

    @property
    def n_transmissions(self) -> int:
        """Total transmissions across all slots."""
        return int(self.tx_sender.shape[0])

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the compiled arrays."""
        return sum(
            getattr(self, name).nbytes
            for name in (
                "tx_sender", "tx_packet", "tx_ptr",
                "pay_coupler", "pay_packet", "pay_ptr",
                "del_receiver", "del_packet", "del_ptr",
                "con_packet", "con_ptr",
                "idle_receiver", "idle_coupler",
                "initial_loc", "pk_destination",
            )
        )


@dataclass
class CompiledScheduleBatch:
    """``B`` compiled schedules sharing one CSR slot structure.

    The megabatch layout: for a fixed POPS(d, g) every Theorem 2 plan has the
    *same* slot segmentation — identical ``*_ptr`` arrays, identical slot
    count — so a batch of plans is stored as shared structure arrays plus
    ``(B, ·)`` per-batch planes.  Planes may be broadcast views when a plan
    array is genuinely shared across the batch (e.g. ``initial_loc`` for
    permutation routing, where packet ``i`` always starts at processor ``i``).

    The packet universe is implicit — permutation-routing packets: universe
    entry ``i`` of element ``b`` is ``Packet(i, pk_destination[b, i])`` — so
    no per-element Python objects exist until :meth:`element` materializes
    one :class:`CompiledSchedule`.

    Attributes mirror :class:`CompiledSchedule`, with ``tx_sender``,
    ``tx_packet``, ``pay_coupler``, ``pay_packet``, ``del_receiver``,
    ``del_packet``, ``con_packet``, ``initial_loc`` and ``pk_destination``
    grown a leading batch axis and the ``*_ptr`` / idle arrays shared.
    """

    network: POPSNetwork
    n_batch: int
    n_slots: int
    tx_sender: np.ndarray
    tx_packet: np.ndarray
    tx_ptr: np.ndarray
    pay_coupler: np.ndarray
    pay_packet: np.ndarray
    pay_ptr: np.ndarray
    del_receiver: np.ndarray
    del_packet: np.ndarray
    del_ptr: np.ndarray
    con_packet: np.ndarray
    con_ptr: np.ndarray
    idle_receiver: np.ndarray
    idle_coupler: np.ndarray
    initial_loc: np.ndarray
    pk_destination: np.ndarray

    @property
    def u_size(self) -> int:
        """Size of each element's packet universe."""
        return int(self.pk_destination.shape[1])

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the batch arrays.

        Broadcast planes report their expanded size, over-counting the
        actual allocation — acceptable for cache accounting, which only
        needs an upper bound.
        """
        return sum(
            getattr(self, name).nbytes
            for name in (
                "tx_sender", "tx_packet", "tx_ptr",
                "pay_coupler", "pay_packet", "pay_ptr",
                "del_receiver", "del_packet", "del_ptr",
                "con_packet", "con_ptr",
                "idle_receiver", "idle_coupler",
                "initial_loc", "pk_destination",
            )
        )

    def element(self, b: int) -> CompiledSchedule:
        """Materialize element ``b`` as a standalone :class:`CompiledSchedule`.

        Plane rows are views (zero-copy); structure arrays are shared.  The
        result is bit-identical to compiling element ``b``'s plan alone.
        """
        destinations = self.pk_destination[b]
        packets = list(map(Packet, range(destinations.size), destinations.tolist()))
        return CompiledSchedule(
            network=self.network,
            packets=packets,
            n_slots=self.n_slots,
            tx_sender=self.tx_sender[b],
            tx_packet=self.tx_packet[b],
            tx_ptr=self.tx_ptr,
            pay_coupler=self.pay_coupler[b],
            pay_packet=self.pay_packet[b],
            pay_ptr=self.pay_ptr,
            del_receiver=self.del_receiver[b],
            del_packet=self.del_packet[b],
            del_ptr=self.del_ptr,
            con_packet=self.con_packet[b],
            con_ptr=self.con_ptr,
            idle_receiver=self.idle_receiver,
            idle_coupler=self.idle_coupler,
            initial_loc=self.initial_loc[b],
            pk_destination=destinations,
        )


class ScheduleCache:
    """Cache of :class:`CompiledSchedule` / :class:`CompiledScheduleBatch`
    objects keyed by caller-chosen keys.

    Lowering a schedule is the dominant fixed cost of the batched engine, and
    sweeps recompile identical schedules on every iteration: the same
    ``(router backend, permutation, d, g, n)`` always lowers to the same
    arrays.  Callers that can prove that determinism pass the corresponding
    key (:func:`repro.analysis.metrics.routing_cache_key`, as
    :meth:`repro.api.session.Session.route` does) and repeated compilations
    become dictionary lookups.

    The cache is doubly bounded — at most ``max_entries`` schedules *and*
    at most ``max_bytes`` of compiled arrays, FIFO-evicted — so sweeping
    huge networks (a compiled n≈20k schedule is megabytes of arrays) cannot
    balloon a worker's memory even at a 0% hit rate.  It counts hits and
    misses; ``pops-repro sweep --cache-stats`` surfaces the counters.
    Compiled schedules are immutable after compilation, so sharing one object
    between executions is safe (``execute`` copies the location array).

    ``store`` attaches a second, *persistent* tier — a
    :class:`~repro.pops.plan_store.PlanStore` probed on every memory miss
    and written through on every fill.  A disk hit promotes the plan into
    the memory tier and is counted separately (``disk_hits`` — the ``hits``
    counter stays memory-only, ``misses`` means both tiers missed), so
    ``--cache-stats`` can distinguish "warm in this process" from "warm on
    disk from another process or an earlier run".  Without a store the
    cache behaves — and reports — exactly as before.
    """

    def __init__(
        self,
        max_entries: int = 64,
        max_bytes: int = 128 * 1024 * 1024,
        store=None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.store = store
        self._entries: dict[Hashable, CompiledSchedule | CompiledScheduleBatch] = {}
        self._total_bytes = 0
        # The counters are repro.obs metrics (the one counting model every
        # layer reports through); the int-valued properties below keep the
        # historical ``cache.hits``-style reads working unchanged.
        self._hits = Counter("cache_hits")
        self._misses = Counter("cache_misses")
        self._disk_hits = Counter("cache_disk_hits")
        self._disk_misses = Counter("cache_disk_misses")

    @property
    def hits(self) -> int:
        """Memory-tier hits (cumulative since construction or :meth:`clear`)."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Accesses both tiers missed."""
        return self._misses.value

    @property
    def disk_hits(self) -> int:
        """Persistent-tier hits (0 without a store)."""
        return self._disk_hits.value

    @property
    def disk_misses(self) -> int:
        """Persistent-tier misses (0 without a store)."""
        return self._disk_misses.value

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Approximate bytes of compiled arrays currently cached."""
        return self._total_bytes

    def get(self, key: Hashable) -> CompiledSchedule | CompiledScheduleBatch | None:
        """Look up ``key``, counting the access as a hit or a miss.

        Memory first; on a memory miss an attached persistent store is
        probed, and a disk hit is promoted into the memory tier (without a
        write-back — the blob is already on disk).  ``misses`` counts only
        accesses both tiers missed.
        """
        with get_tracer().span("cache.probe") as probe:
            compiled = self._entries.get(key)
            if compiled is not None:
                self._hits.inc()
                probe.annotate(tier="memory", hit=True)
                return compiled
            if self.store is not None:
                compiled = self.store.get(key)
                if compiled is not None:
                    self._disk_hits.inc()
                    self._put_memory(key, compiled)
                    probe.annotate(tier="disk", hit=True)
                    return compiled
                self._disk_misses.inc()
            self._misses.inc()
            probe.annotate(hit=False)
            return None

    def peek(self, key: Hashable) -> CompiledSchedule | CompiledScheduleBatch | None:
        """Look up ``key`` without touching the hit/miss counters.

        For dispatchers that only need to know *whether* a compiled entry
        exists (the ``auto`` engine skips its schedule-shape probe on a hit);
        the engine that actually consumes the entry still goes through
        :meth:`get` and accounts for the access.
        """
        return self._entries.get(key)

    def put(self, key: Hashable, compiled: CompiledSchedule | CompiledScheduleBatch) -> None:
        """Store ``compiled`` under ``key``, FIFO-evicting until within bounds.

        A schedule larger than ``max_bytes`` on its own is not cached at all
        in memory; with a persistent store attached the plan is still
        written through to disk (the disk tier has its own budget policy),
        so later processes can warm-start even from plans this process's
        memory bounds rejected.
        """
        if self.store is not None:
            self.store.put(key, compiled)
        self._put_memory(key, compiled)

    def _put_memory(
        self, key: Hashable, compiled: CompiledSchedule | CompiledScheduleBatch
    ) -> None:
        """The memory-tier insert (no write-through); FIFO-evicts to bounds."""
        nbytes = compiled.nbytes
        if nbytes > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._total_bytes -= old.nbytes
        while self._entries and (
            len(self._entries) >= self.max_entries
            or self._total_bytes + nbytes > self.max_bytes
        ):
            evicted = self._entries.pop(next(iter(self._entries)))
            self._total_bytes -= evicted.nbytes
        self._entries[key] = compiled
        self._total_bytes += nbytes

    def stats(self) -> dict[str, int]:
        """Counters as a plain dict: ``hits``, ``misses``, ``entries``.

        With a persistent store attached, ``disk_hits`` / ``disk_misses``
        are reported as *separate* keys (``hits`` stays memory-only; the
        tiers are never summed), so consumers can tell a warm process from
        a warm disk.  Without a store the dict keeps its historical
        three-key shape exactly.
        """
        stats = {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }
        if self.store is not None:
            stats["disk_hits"] = self.disk_hits
            stats["disk_misses"] = self.disk_misses
        return stats

    def clear(self) -> None:
        """Drop all memory entries and reset the counters (disk untouched)."""
        self._entries.clear()
        self._total_bytes = 0
        self._hits.reset()
        self._misses.reset()
        self._disk_hits.reset()
        self._disk_misses.reset()


#: Process-wide default cache; worker processes each hold their own instance.
_SCHEDULE_CACHE = ScheduleCache()


def schedule_cache() -> ScheduleCache:
    """The process-wide compiled-schedule cache."""
    return _SCHEDULE_CACHE


def compile_schedule(
    network: POPSNetwork,
    schedule: RoutingSchedule,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None = None,
) -> CompiledSchedule:
    """Lower ``schedule`` to integer arrays, raising any static violation.

    The shared front end (:func:`repro.pops.lowering.lower_schedule`) performs
    the flattening, the vectorized static validation and the
    reception/payload join; this function adds the consuming-model specifics —
    the flat location array, the per-slot consumed-packet groups, and the
    rejection of packet-duplicating shapes.

    Raises
    ------
    SimulationError
        (or a subclass) exactly as ``schedule.validate()`` would for static
        violations, at compile time rather than slot by slot.
    UnsupportedScheduleError
        If the schedule duplicates packets (non-consuming sends, multi-reader
        couplers) and therefore cannot run on a flat location array.
    """
    with get_tracer().span("route.lower"):
        lowered = lower_schedule(
            network, schedule, packets, initial_buffers, single_location=True
        )
        if not lowered.tx_consume.all():
            raise UnsupportedScheduleError(
                "non-consuming (broadcast-style) transmissions duplicate packets; "
                "use the batched-collective engine"
            )
        universe = lowered.packets
        u_size = lowered.u_size
        n_slots = lowered.n_slots

        # Consumed: each packet sent in a slot leaves its sender once.
        p_order, _, p_new = group_firsts(
            lowered.tx_slot * max(u_size, 1) + lowered.tx_packet
        )
        con_first = np.sort(p_order[p_new])
        con_packet = lowered.tx_packet[con_first]
        con_counts = np.bincount(lowered.tx_slot[con_first], minlength=n_slots)

        # A packet read by several receivers in one slot would be duplicated.
        del_key = np.sort(lowered.del_slot * max(u_size, 1) + lowered.del_packet)
        dup = np.flatnonzero(del_key[1:] == del_key[:-1])
        if dup.size:
            raise UnsupportedScheduleError(
                f"slot {int(del_key[dup[0]] // max(u_size, 1))}: a packet is read "
                "by several receivers, which duplicates it; use the "
                "batched-collective engine"
            )

        # Fold the (packet, processor) holder pairs into the flat location array.
        # The single-location front end guarantees at most one pair per packet;
        # transmitted packets unknown to the universe stay at -1 (held nowhere).
        initial_loc = np.full(u_size, -1, dtype=np.int64)
        initial_loc[lowered.initial_hold_packet] = lowered.initial_hold_proc

        return CompiledSchedule(
            network=network,
            packets=universe,
            n_slots=n_slots,
            tx_sender=lowered.tx_sender,
            tx_packet=lowered.tx_packet,
            tx_ptr=lowered.tx_ptr,
            pay_coupler=lowered.pay_coupler,
            pay_packet=lowered.pay_packet,
            pay_ptr=lowered.pay_ptr,
            del_receiver=lowered.del_receiver,
            del_packet=lowered.del_packet,
            del_ptr=lowered.del_ptr,
            con_packet=con_packet,
            con_ptr=np.concatenate(([0], np.cumsum(con_counts, dtype=np.int64))),
            idle_receiver=lowered.idle_receiver,
            idle_coupler=lowered.idle_coupler,
            initial_loc=initial_loc,
            pk_destination=lowered.pk_destination,
        )


class BatchedSimulator:
    """Vectorized slot-model executor, trace-equivalent to the reference.

    Parameters
    ----------
    network:
        The POPS(d, g) network to simulate.
    strict_receptions:
        Same contract as :class:`~repro.pops.simulator.POPSSimulator`: a read
        of an idle coupler raises :class:`SimulationError` when ``True`` and
        silently yields nothing when ``False``.
    """

    def __init__(self, network: POPSNetwork, strict_receptions: bool = True):
        self.network = network
        self.strict_receptions = strict_receptions

    def compile(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        initial_buffers: dict[int, list[Packet]] | None = None,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ) -> CompiledSchedule:
        """Lower ``schedule`` once; the result can be executed repeatedly.

        ``cache_key`` opts into the compiled-schedule cache: the caller
        asserts that the key fully determines ``(schedule, packets)`` — e.g.
        ``(router backend, d, g, permutation)`` for deterministic routers —
        and repeated compilations under the same key return the cached
        arrays.  Because a hit returns the *first* compilation's packet
        universe and ``Packet.payload`` is excluded from packet equality,
        the key must also determine payloads: keys may only be shared by
        runs whose packets are payload-free or payload-identical (the
        routing layer's packets carry no payloads).  ``cache`` overrides the
        process-wide cache (useful for isolation in tests and benchmarks).
        Runs with explicit ``initial_buffers`` never consult the cache,
        since buffer contents are not covered by the key contract.
        """
        if cache_key is None or initial_buffers is not None:
            return compile_schedule(self.network, schedule, packets, initial_buffers)
        store = cache if cache is not None else schedule_cache()
        compiled = store.get(cache_key)
        if compiled is None:
            compiled = compile_schedule(self.network, schedule, packets, None)
            store.put(cache_key, compiled)
        return compiled

    def execute(self, compiled: CompiledSchedule, faults=None) -> np.ndarray:
        """Run a compiled schedule, returning the final packet-location array.

        ``faults`` opts into fault injection: a
        :class:`~repro.faults.FaultSpec` whose hardware is checked at the
        start of every slot inside the fault window.  Driving a failed
        coupler (or scheduling a failed processor) raises
        :class:`~repro.exceptions.CouplerFailedError` carrying the slot, the
        coupler, and the residual packet state — bit-identical to the
        reference simulator's fault path
        (:meth:`repro.pops.simulator.POPSSimulator.run_reference`).
        """
        if faults is not None and faults.is_empty:
            faults = None
        if faults is not None:
            g = self.network.g
            coupler_failed = np.zeros(g * g, dtype=bool)
            ids = faults.failed_coupler_ids(g)
            if ids:
                coupler_failed[list(ids)] = True
            proc_failed = np.zeros(self.network.n, dtype=bool)
            procs = faults.failed_processor_set(self.network)
            if procs:
                proc_failed[list(procs)] = True
        loc = compiled.initial_loc.copy()
        packets = compiled.packets
        tx_ptr, del_ptr, con_ptr = compiled.tx_ptr, compiled.del_ptr, compiled.con_ptr
        strict = self.strict_receptions
        for s in range(compiled.n_slots):
            if faults is not None and faults.active_at(s):
                self._check_faults(
                    compiled, s, loc, coupler_failed, proc_failed
                )
            senders = compiled.tx_sender[tx_ptr[s]:tx_ptr[s + 1]]
            sent = compiled.tx_packet[tx_ptr[s]:tx_ptr[s + 1]]
            held = loc[sent] == senders
            if not held.all():
                i = int(np.argmin(held))
                raise SimulationError(
                    f"slot {s}: processor {senders[i]} does not hold "
                    f"{packets[sent[i]]!r}"
                )
            if strict and compiled.idle_receiver[s] >= 0:
                cid = int(compiled.idle_coupler[s])
                coupler = Coupler(cid // self.network.g, cid % self.network.g)
                raise SimulationError(
                    f"slot {s}: processor {compiled.idle_receiver[s]} reads "
                    f"idle {coupler!r}"
                )
            loc[compiled.con_packet[con_ptr[s]:con_ptr[s + 1]]] = -1
            loc[compiled.del_packet[del_ptr[s]:del_ptr[s + 1]]] = (
                compiled.del_receiver[del_ptr[s]:del_ptr[s + 1]]
            )
        return loc

    def _check_faults(
        self,
        compiled: CompiledSchedule,
        s: int,
        loc: np.ndarray,
        coupler_failed: np.ndarray,
        proc_failed: np.ndarray,
    ) -> None:
        """Raise :class:`CouplerFailedError` if slot ``s`` touches failed hardware.

        Check order matches the reference simulator's fault path exactly —
        driven couplers first, then failed senders, then failed receivers —
        and the residual state is the location array at the *start* of the
        slot, so both engines raise bit-identically.
        """
        from repro.exceptions import CouplerFailedError

        g = self.network.g
        pay = compiled.pay_coupler[compiled.pay_ptr[s]:compiled.pay_ptr[s + 1]]
        coupler = None
        message = None
        hit = np.flatnonzero(coupler_failed[pay])
        if hit.size:
            cid = int(pay[hit[0]])
            coupler = Coupler(cid // g, cid % g)
            message = f"slot {s}: {coupler!r} is failed under the active fault spec"
        else:
            senders = compiled.tx_sender[compiled.tx_ptr[s]:compiled.tx_ptr[s + 1]]
            bad = np.flatnonzero(proc_failed[senders])
            if bad.size:
                message = (
                    f"slot {s}: failed processor {int(senders[bad[0]])} "
                    "is scheduled to transmit"
                )
            else:
                receivers = compiled.del_receiver[
                    compiled.del_ptr[s]:compiled.del_ptr[s + 1]
                ]
                bad = np.flatnonzero(proc_failed[receivers])
                if not bad.size:
                    return
                message = (
                    f"slot {s}: failed processor {int(receivers[bad[0]])} "
                    "is scheduled to receive"
                )
        undelivered = np.flatnonzero(
            (loc != compiled.pk_destination) & (loc >= 0)
        )
        residual = {
            compiled.packets[int(k)]: int(loc[k]) for k in undelivered
        }
        raise CouplerFailedError(message, slot=s, coupler=coupler, residual=residual)

    def verify_locations(self, compiled: CompiledSchedule, loc: np.ndarray) -> None:
        """Vectorized delivery check: every packet sits at its destination.

        Equivalent to
        :meth:`~repro.pops.simulator.SimulationResult.verify_permutation_delivery`
        over the whole packet universe, without building buffer dicts.
        """
        from repro.exceptions import DeliveryError

        misplaced = np.flatnonzero(loc != compiled.pk_destination)
        if misplaced.size:
            i = int(misplaced[0])
            packet = compiled.packets[i]
            where = [int(loc[i])] if loc[i] >= 0 else []
            raise DeliveryError(
                f"{packet!r} should end at processor {packet.destination}, "
                f"found at {where}"
            )

    def execute_batch(self, batch: CompiledScheduleBatch) -> np.ndarray:
        """Run a compiled batch; returns the final ``(B, U)`` location stack.

        One slot is still three numpy operations — ownership comparison,
        consume scatter, delivery scatter — just broadcast over the batch
        axis via ``take_along_axis`` / ``put_along_axis``.  Row ``b`` of the
        result equals ``execute(batch.element(b))``.

        On a dynamic failure the offending elements are replayed one by one
        through :meth:`execute` so the error raised is exactly the error the
        lowest failing element would raise alone.
        """
        loc = np.array(batch.initial_loc)
        tx_ptr, del_ptr, con_ptr = batch.tx_ptr, batch.del_ptr, batch.con_ptr
        strict = self.strict_receptions
        for s in range(batch.n_slots):
            senders = batch.tx_sender[:, tx_ptr[s]:tx_ptr[s + 1]]
            sent = batch.tx_packet[:, tx_ptr[s]:tx_ptr[s + 1]]
            held = np.take_along_axis(loc, sent, axis=1) == senders
            if not held.all():
                self._replay_batch_failure(batch)
            if strict and batch.idle_receiver[s] >= 0:
                cid = int(batch.idle_coupler[s])
                coupler = Coupler(cid // self.network.g, cid % self.network.g)
                raise SimulationError(
                    f"slot {s}: processor {batch.idle_receiver[s]} reads "
                    f"idle {coupler!r}"
                )
            np.put_along_axis(
                loc, batch.con_packet[:, con_ptr[s]:con_ptr[s + 1]], -1, axis=1
            )
            np.put_along_axis(
                loc,
                batch.del_packet[:, del_ptr[s]:del_ptr[s + 1]],
                batch.del_receiver[:, del_ptr[s]:del_ptr[s + 1]],
                axis=1,
            )
        return loc

    def _replay_batch_failure(self, batch: CompiledScheduleBatch) -> None:
        """Reproduce a batch execution failure element by element.

        Replays elements in batch order so the raised error is the exact
        single-element error of the lowest failing element (when several
        elements fail in different slots, batch order wins over slot order —
        the one accepted divergence from the per-trial loop).
        """
        for b in range(batch.n_batch):
            self.execute(batch.element(b))
        raise SimulationError(
            "internal error: batch execution failed but every element "
            "executes cleanly alone; please report this divergence"
        )

    def verify_locations_batch(
        self, batch: CompiledScheduleBatch, loc: np.ndarray
    ) -> None:
        """Batched :meth:`verify_locations` over a ``(B, U)`` location stack.

        On failure the offending elements are replayed through the
        single-element check, raising the exact per-trial
        :class:`~repro.exceptions.DeliveryError` of the lowest failing one.
        """
        from repro.exceptions import DeliveryError

        if bool((loc == batch.pk_destination).all()):
            return
        for b in range(batch.n_batch):
            self.verify_locations(batch.element(b), loc[b])
        raise DeliveryError(
            "internal error: batch delivery check failed but every element "
            "verifies cleanly alone; please report this divergence"
        )

    def compiled_trace_batch(self, batch: CompiledScheduleBatch) -> CompiledTraceBatch:
        """The static trace of a compiled batch as zero-copy array views.

        Statistics over the returned
        :class:`~repro.pops.trace.CompiledTraceBatch` are per-element numpy
        reductions; no per-element trace objects are materialized.
        """
        return CompiledTraceBatch(
            g=self.network.g,
            n_batch=batch.n_batch,
            pay_coupler=batch.pay_coupler,
            pay_packet=batch.pay_packet,
            pay_ptr=batch.pay_ptr,
            del_receiver=batch.del_receiver,
            del_packet=batch.del_packet,
            del_ptr=batch.del_ptr,
        )

    def buffers_from_locations(
        self, compiled: CompiledSchedule, loc: np.ndarray
    ) -> dict[int, list[Packet]]:
        """Reconstruct ``processor -> packets held`` from a location array.

        Within a buffer, packets appear in universe order (the reference
        simulator preserves arrival order instead; compare as multisets).
        """
        buffers: dict[int, list[Packet]] = {
            p: [] for p in self.network.processors()
        }
        for idx in np.flatnonzero(loc >= 0):
            buffers[int(loc[idx])].append(compiled.packets[idx])
        return buffers

    def compiled_trace(self, compiled: CompiledSchedule) -> CompiledTrace:
        """The (static) trace of a compiled schedule as a zero-copy array view.

        The returned :class:`~repro.pops.trace.CompiledTrace` shares the
        compiled schedule's payload/delivery arrays; statistics over it are
        numpy reductions, and ``.materialize()`` produces the dict-based
        :class:`~repro.pops.trace.SimulationTrace` when per-slot objects are
        genuinely needed.
        """
        return CompiledTrace(
            g=self.network.g,
            packets=compiled.packets,
            pay_coupler=compiled.pay_coupler,
            pay_packet=compiled.pay_packet,
            pay_ptr=compiled.pay_ptr,
            del_receiver=compiled.del_receiver,
            del_packet=compiled.del_packet,
            del_ptr=compiled.del_ptr,
        )

    def trace_from_compiled(self, compiled: CompiledSchedule) -> SimulationTrace:
        """Materialize the per-slot dict trace of a compiled schedule."""
        return self.compiled_trace(compiled).materialize()

    def run(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        initial_buffers: dict[int, list[Packet]] | None = None,
        collect_trace: bool = True,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ):
        """Compile and execute ``schedule``, packaging a ``SimulationResult``.

        The result's trace is a :class:`~repro.pops.trace.CompiledTrace` —
        integer arrays end to end; statistics are numpy reductions and
        per-slot dicts are only built if ``trace.materialize()`` (or the
        ``trace.slots`` escape hatch) is called.  With ``collect_trace=False``
        the trace is left empty.  ``cache_key`` and ``cache`` are forwarded to
        :meth:`compile`.
        """
        from repro.pops.simulator import SimulationResult

        compiled = self.compile(
            schedule, packets, initial_buffers, cache_key=cache_key, cache=cache
        )
        loc = self.execute(compiled)
        trace = (
            self.compiled_trace(compiled) if collect_trace else SimulationTrace()
        )
        return SimulationResult(
            network=self.network,
            buffers=self.buffers_from_locations(compiled, loc),
            trace=trace,
        )

    def route_and_verify(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ):
        """Run ``schedule`` and assert every packet reached its destination."""
        result = self.run(schedule, packets, cache_key=cache_key, cache=cache)
        result.verify_permutation_delivery(packets)
        return result
