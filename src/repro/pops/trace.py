"""Execution traces and aggregate statistics for simulated schedules.

The simulator records, per slot, which couplers carried which packets and how
every processor's buffer changed.  Traces feed the analysis layer (coupler
utilisation, packets moved per slot) and make failed runs debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pops.packet import Packet
from repro.pops.topology import Coupler

__all__ = ["SlotTrace", "SimulationTrace"]


@dataclass
class SlotTrace:
    """What happened during one simulated slot."""

    slot_index: int
    coupler_payloads: dict[Coupler, Packet] = field(default_factory=dict)
    deliveries: list[tuple[int, Packet]] = field(default_factory=list)

    @property
    def packets_moved(self) -> int:
        """Number of couplers that carried a packet this slot."""
        return len(self.coupler_payloads)

    @property
    def packets_received(self) -> int:
        """Number of (processor, packet) receptions this slot."""
        return len(self.deliveries)


@dataclass
class SimulationTrace:
    """Trace of a whole simulation run."""

    slots: list[SlotTrace] = field(default_factory=list)

    @property
    def n_slots(self) -> int:
        """Number of slots executed."""
        return len(self.slots)

    @property
    def total_packets_moved(self) -> int:
        """Total coupler-slot usages across the run."""
        return sum(slot.packets_moved for slot in self.slots)

    def coupler_usage(self) -> dict[Coupler, int]:
        """How many slots each coupler carried a packet for."""
        usage: dict[Coupler, int] = {}
        for slot in self.slots:
            for coupler in slot.coupler_payloads:
                usage[coupler] = usage.get(coupler, 0) + 1
        return usage

    def max_coupler_usage(self) -> int:
        """The busiest coupler's number of used slots (0 for an empty trace)."""
        usage = self.coupler_usage()
        return max(usage.values(), default=0)

    def mean_coupler_utilisation(self, n_couplers: int) -> float:
        """Average fraction of couplers busy per slot."""
        if not self.slots or n_couplers == 0:
            return 0.0
        return self.total_packets_moved / (len(self.slots) * n_couplers)

    def packets_moved_per_slot(self) -> list[int]:
        """Packets moved in each slot, in execution order."""
        return [slot.packets_moved for slot in self.slots]
