"""Execution traces and aggregate statistics for simulated schedules.

The simulator records, per slot, which couplers carried which packets and how
every processor's buffer changed.  Traces feed the analysis layer (coupler
utilisation, packets moved per slot) and make failed runs debuggable.

Two representations coexist:

* :class:`SimulationTrace` — per-slot Python dicts (:class:`SlotTrace`), built
  by the reference simulator and ideal for rendering and debugging.
* :class:`CompiledTrace` — the batched engine's CSR-style integer arrays kept
  end to end, with the same statistics implemented as numpy reductions and an
  explicit :meth:`CompiledTrace.materialize` escape hatch that produces the
  dict representation on demand.

Both expose ``n_slots``, ``total_packets_moved``, ``total_packets_received``,
``coupler_usage()``, ``max_coupler_usage()``, ``mean_coupler_utilisation()``,
``packets_moved_per_slot()``, ``packets_received_per_slot()``,
``receiver_usage()`` and ``mean_delivery_fanout()`` with identical values, so
the analysis layer is representation-agnostic.  The reception-side statistics
matter for multi-holder (collective) schedules, where one coupler payload
fans out to many receivers: the fanout is the ratio of deliveries to coupler
usages, exactly 1.0 for consuming permutation routing and up to ``d`` for
broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pops.packet import Packet
from repro.pops.topology import Coupler

__all__ = ["SlotTrace", "SimulationTrace", "CompiledTrace", "CompiledTraceBatch"]


@dataclass
class SlotTrace:
    """What happened during one simulated slot."""

    slot_index: int
    coupler_payloads: dict[Coupler, Packet] = field(default_factory=dict)
    deliveries: list[tuple[int, Packet]] = field(default_factory=list)

    @property
    def packets_moved(self) -> int:
        """Number of couplers that carried a packet this slot."""
        return len(self.coupler_payloads)

    @property
    def packets_received(self) -> int:
        """Number of (processor, packet) receptions this slot."""
        return len(self.deliveries)


@dataclass
class SimulationTrace:
    """Trace of a whole simulation run."""

    slots: list[SlotTrace] = field(default_factory=list)

    @property
    def n_slots(self) -> int:
        """Number of slots executed."""
        return len(self.slots)

    @property
    def total_packets_moved(self) -> int:
        """Total coupler-slot usages across the run."""
        return sum(slot.packets_moved for slot in self.slots)

    @property
    def total_packets_received(self) -> int:
        """Total (processor, packet) receptions across the run."""
        return sum(slot.packets_received for slot in self.slots)

    def packets_received_per_slot(self) -> list[int]:
        """Packets received in each slot, in execution order."""
        return [slot.packets_received for slot in self.slots]

    def receiver_usage(self) -> dict[int, int]:
        """How many deliveries each processor received across the run."""
        usage: dict[int, int] = {}
        for slot in self.slots:
            for receiver, _ in slot.deliveries:
                usage[receiver] = usage.get(receiver, 0) + 1
        return usage

    def mean_delivery_fanout(self) -> float:
        """Deliveries per coupler usage (1.0 for consuming schedules, up to
        ``d`` when multi-reader couplers fan copies out)."""
        moved = self.total_packets_moved
        if moved == 0:
            return 0.0
        return self.total_packets_received / moved

    def coupler_usage(self) -> dict[Coupler, int]:
        """How many slots each coupler carried a packet for."""
        usage: dict[Coupler, int] = {}
        for slot in self.slots:
            for coupler in slot.coupler_payloads:
                usage[coupler] = usage.get(coupler, 0) + 1
        return usage

    def max_coupler_usage(self) -> int:
        """The busiest coupler's number of used slots (0 for an empty trace)."""
        usage = self.coupler_usage()
        return max(usage.values(), default=0)

    def mean_coupler_utilisation(self, n_couplers: int) -> float:
        """Average fraction of couplers busy per slot."""
        if not self.slots or n_couplers == 0:
            return 0.0
        return self.total_packets_moved / (len(self.slots) * n_couplers)

    def packets_moved_per_slot(self) -> list[int]:
        """Packets moved in each slot, in execution order."""
        return [slot.packets_moved for slot in self.slots]


@dataclass(eq=False)
class CompiledTrace:
    """A simulation trace kept as the engine's compiled integer arrays.

    Slot ``s``'s coupler payloads are ``(pay_coupler, pay_packet)[pay_ptr[s]:
    pay_ptr[s + 1]]`` and its deliveries ``(del_receiver, del_packet)
    [del_ptr[s]:del_ptr[s + 1]]``; packet ids index into ``packets`` and
    coupler ids encode ``Coupler(cid // g, cid % g)``.  All aggregate
    statistics are numpy reductions over these arrays — no per-slot Python
    objects exist unless :meth:`materialize` (or the :attr:`slots` escape
    hatch) is called.

    Attributes
    ----------
    g:
        Number of groups of the simulated network (``g * g`` couplers).
    packets:
        The packet universe the id arrays index into.
    pay_coupler / pay_packet / pay_ptr:
        CSR arrays of per-slot coupler payloads.
    del_receiver / del_packet / del_ptr:
        CSR arrays of per-slot deliveries.
    """

    g: int
    packets: list[Packet]
    pay_coupler: np.ndarray
    pay_packet: np.ndarray
    pay_ptr: np.ndarray
    del_receiver: np.ndarray
    del_packet: np.ndarray
    del_ptr: np.ndarray

    # The dataclass-generated __eq__ would apply ``==`` to the ndarray fields
    # and raise on the resulting boolean arrays; compare them element-wise
    # instead so two SimulationResults remain comparable on any backend.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledTrace):
            return NotImplemented
        return (
            self.g == other.g
            and self.packets == other.packets
            and all(
                np.array_equal(getattr(self, name), getattr(other, name))
                for name in (
                    "pay_coupler",
                    "pay_packet",
                    "pay_ptr",
                    "del_receiver",
                    "del_packet",
                    "del_ptr",
                )
            )
        )

    __hash__ = None  # mutable container semantics, like SimulationTrace

    # -- aggregate statistics (numpy reductions) -----------------------------

    @property
    def n_slots(self) -> int:
        """Number of slots executed."""
        return int(self.pay_ptr.shape[0]) - 1

    @property
    def total_packets_moved(self) -> int:
        """Total coupler-slot usages across the run."""
        return int(self.pay_coupler.shape[0])

    @property
    def total_packets_received(self) -> int:
        """Total (processor, packet) receptions across the run."""
        return int(self.del_receiver.shape[0])

    def packets_moved(self, slot: int) -> int:
        """Number of couplers that carried a packet in ``slot``."""
        return int(self.pay_ptr[slot + 1] - self.pay_ptr[slot])

    def packets_received(self, slot: int) -> int:
        """Number of (processor, packet) receptions in ``slot``."""
        return int(self.del_ptr[slot + 1] - self.del_ptr[slot])

    def packets_moved_per_slot(self) -> list[int]:
        """Packets moved in each slot, in execution order."""
        return np.diff(self.pay_ptr).tolist()

    def packets_received_per_slot(self) -> list[int]:
        """Packets received in each slot, in execution order."""
        return np.diff(self.del_ptr).tolist()

    def receiver_usage(self) -> dict[int, int]:
        """How many deliveries each processor received across the run."""
        counts = np.bincount(self.del_receiver) if self.del_receiver.size else np.empty(0)
        return {
            int(receiver): int(counts[receiver])
            for receiver in np.flatnonzero(counts)
        }

    def mean_delivery_fanout(self) -> float:
        """Deliveries per coupler usage (1.0 for consuming schedules, up to
        ``d`` when multi-reader couplers fan copies out)."""
        moved = self.total_packets_moved
        if moved == 0:
            return 0.0
        return self.total_packets_received / moved

    def coupler_usage_counts(self) -> np.ndarray:
        """Per-coupler busy-slot counts as a dense ``g * g`` array.

        Index ``cid`` corresponds to ``Coupler(cid // g, cid % g)``.
        """
        return np.bincount(self.pay_coupler, minlength=self.g * self.g)

    def coupler_usage(self) -> dict[Coupler, int]:
        """How many slots each coupler carried a packet for."""
        counts = self.coupler_usage_counts()
        g = self.g
        return {
            Coupler(int(cid) // g, int(cid) % g): int(counts[cid])
            for cid in np.flatnonzero(counts)
        }

    def max_coupler_usage(self) -> int:
        """The busiest coupler's number of used slots (0 for an empty trace)."""
        if self.pay_coupler.shape[0] == 0:
            return 0
        return int(self.coupler_usage_counts().max())

    def mean_coupler_utilisation(self, n_couplers: int) -> float:
        """Average fraction of couplers busy per slot."""
        if self.n_slots == 0 or n_couplers == 0:
            return 0.0
        return self.total_packets_moved / (self.n_slots * n_couplers)

    # -- escape hatch to the dict representation -----------------------------

    def materialize(self) -> SimulationTrace:
        """Build the dict-based :class:`SimulationTrace` for rendering/debugging."""
        g = self.g
        couplers = [Coupler(cid // g, cid % g) for cid in range(g * g)]
        packets = self.packets
        pay_ptr, del_ptr = self.pay_ptr, self.del_ptr
        trace = SimulationTrace()
        for s in range(self.n_slots):
            payloads = {
                couplers[c]: packets[p]
                for c, p in zip(
                    self.pay_coupler[pay_ptr[s]:pay_ptr[s + 1]],
                    self.pay_packet[pay_ptr[s]:pay_ptr[s + 1]],
                )
            }
            deliveries = [
                (int(r), packets[p])
                for r, p in zip(
                    self.del_receiver[del_ptr[s]:del_ptr[s + 1]],
                    self.del_packet[del_ptr[s]:del_ptr[s + 1]],
                )
            ]
            trace.slots.append(
                SlotTrace(
                    slot_index=s,
                    coupler_payloads=payloads,
                    deliveries=deliveries,
                )
            )
        return trace

    @property
    def slots(self) -> list[SlotTrace]:
        """Materialized per-slot views, built lazily and cached.

        Debug/rendering convenience only — analysis code should use the numpy
        reductions above, which never build per-slot objects.
        """
        cached = getattr(self, "_materialized", None)
        if cached is None:
            cached = self.materialize().slots
            self._materialized = cached
        return cached


@dataclass(eq=False)
class CompiledTraceBatch:
    """Traces of ``B`` compiled schedules sharing one CSR slot structure.

    The trace twin of :class:`~repro.pops.engine.CompiledScheduleBatch`: the
    ``*_ptr`` arrays are shared, the payload/delivery arrays are ``(B, ·)``
    planes (possibly broadcast views).  Aggregate statistics reduce over the
    slot axis *per batch element* without materializing ``B`` trace objects;
    structure-derived quantities (slot counts, per-slot movement counts,
    utilisation) are shared scalars/lists, exactly as the per-trial loop
    would compute them for every element.
    """

    g: int
    n_batch: int
    pay_coupler: np.ndarray
    pay_packet: np.ndarray
    pay_ptr: np.ndarray
    del_receiver: np.ndarray
    del_packet: np.ndarray
    del_ptr: np.ndarray

    __hash__ = None  # mutable container semantics, like SimulationTrace

    # -- structure-shared statistics (identical for every element) -----------

    @property
    def n_slots(self) -> int:
        """Number of slots executed (shared across the batch)."""
        return int(self.pay_ptr.shape[0]) - 1

    @property
    def total_packets_moved(self) -> int:
        """Per-element coupler-slot usages (shared across the batch)."""
        return int(self.pay_coupler.shape[1])

    @property
    def total_packets_received(self) -> int:
        """Per-element (processor, packet) receptions (shared)."""
        return int(self.del_receiver.shape[1])

    def packets_moved_per_slot(self) -> list[int]:
        """Packets moved in each slot, identical for every element."""
        return np.diff(self.pay_ptr).tolist()

    def packets_received_per_slot(self) -> list[int]:
        """Packets received in each slot, identical for every element."""
        return np.diff(self.del_ptr).tolist()

    def mean_coupler_utilisation(self, n_couplers: int) -> float:
        """Average fraction of couplers busy per slot (shared)."""
        if self.n_slots == 0 or n_couplers == 0:
            return 0.0
        return self.total_packets_moved / (self.n_slots * n_couplers)

    # -- per-element reductions ----------------------------------------------

    def coupler_usage_counts(self) -> np.ndarray:
        """Per-coupler busy-slot counts as a ``(B, g * g)`` array."""
        n_couplers = self.g * self.g
        if self.pay_coupler.shape[1] == 0:
            return np.zeros((self.n_batch, n_couplers), dtype=np.int64)
        offsets = np.arange(self.n_batch, dtype=np.int64)[:, None] * n_couplers
        return np.bincount(
            (self.pay_coupler + offsets).ravel(),
            minlength=self.n_batch * n_couplers,
        ).reshape(self.n_batch, n_couplers)

    def max_coupler_usage(self) -> np.ndarray:
        """The busiest coupler's used-slot count per element, shape ``(B,)``."""
        if self.pay_coupler.shape[1] == 0:
            return np.zeros(self.n_batch, dtype=np.int64)
        return self.coupler_usage_counts().max(axis=1)

    # -- escape hatch to per-element traces ----------------------------------

    def element(self, b: int, packets: list[Packet]) -> CompiledTrace:
        """Materialize element ``b`` as a standalone :class:`CompiledTrace`.

        ``packets`` is the element's packet universe (the batch stores no
        per-element packet objects); array fields are zero-copy row views.
        """
        return CompiledTrace(
            g=self.g,
            packets=packets,
            pay_coupler=self.pay_coupler[b],
            pay_packet=self.pay_packet[b],
            pay_ptr=self.pay_ptr,
            del_receiver=self.del_receiver[b],
            del_packet=self.del_packet[b],
            del_ptr=self.del_ptr,
        )
