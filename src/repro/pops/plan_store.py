"""Persistent content-addressed store for compiled routing plans.

The in-memory :class:`~repro.pops.engine.ScheduleCache` dies with its
process, so every ``sweep --shard-trials`` pool worker, every benchmark
module and every CI job re-lowers identical ``(backend, d, g, permutation)``
plans even though a cache hit skips route construction entirely.  This
module adds the missing durable tier: a :class:`PlanStore` keeps
:class:`~repro.pops.engine.CompiledSchedule` /
:class:`~repro.pops.engine.CompiledScheduleBatch` arrays on disk as ``.npz``
blobs addressed by a digest of the existing cache keys
(:func:`repro.analysis.metrics.routing_cache_key` /
``routing_cache_key_batch``), so any process pointed at the same directory —
a pool worker, a later CI run restored from ``actions/cache``, a serving
daemon starting up — acquires a previously lowered plan with one file read
instead of a full route + lower.

Design points, in the order they matter for correctness:

* **Content addressing.**  :func:`plan_key_digest` folds a cache key into a
  blake2b-128 hex digest over an unambiguous type-tagged encoding (nested
  tuples of ints/strings/bytes/bools/None/floats).  Keys containing anything
  else are simply not persistable — :meth:`PlanStore.get` / ``put`` skip the
  disk tier and the in-memory cache behaves exactly as before.
* **Exact round-trip.**  Blobs record every compiled array with its dtype
  plus the scalar shape metadata (``d``, ``g``, slot/batch counts) and the
  packet universe as a source array (routing packets are payload-free by
  construction; a schedule whose packets carry payloads is refused, since
  payloads are arbitrary objects the key contract does not cover).  A loaded
  plan is bit-identical — array values *and* dtypes — to the stored one,
  pinned by hypothesis in ``tests/test_plan_store.py``.  Batch planes that
  were broadcast views (stride 0 along the batch axis) are stored as their
  single distinct row and re-broadcast on load, so a gigabyte-looking
  broadcast plane costs one row on disk.
* **Atomic writes.**  A blob is written to a unique temporary file in the
  same directory and published with ``os.replace``: readers see either the
  complete old blob or the complete new one, never a torn write, which is
  what makes N writers racing one key safe without locks.
* **Corruption quarantine.**  Every blob embeds a checksum over its array
  bytes.  A blob that fails to open, parse or checksum is atomically moved
  to ``quarantine/`` and reported as a miss, so the caller recompiles
  instead of crashing; ``pops-repro cache verify`` sweeps the whole store
  through the same path.
* **Size-budgeted GC.**  :meth:`PlanStore.gc` deletes oldest-first (by
  mtime) until the store fits a byte budget; a store opened with
  ``max_bytes`` runs the same sweep automatically after writes.
* **Lock-free cumulative counters.**  Each store instance owns one private
  JSON shard under ``stats/`` (overwritten in place — the instance is the
  shard's only writer, and readers skip a shard caught mid-write);
  :meth:`PlanStore.stats` sums the shards, which is how
  ``pops-repro cache stats`` can report disk hits accumulated by *other*
  processes — the cold-vs-warm CI smoke asserts exactly that.

The store never speaks to the network or imports anything heavier than
numpy; the directory layout is ``store.json`` (schema pin) +
``objects/<xx>/<digest>.npz`` + ``quarantine/`` + ``stats/``.
"""

from __future__ import annotations

import json
import os
import uuid
import zipfile
from collections.abc import Hashable, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs import get_tracer
from repro.obs.metrics import Counter
from repro.pops.packet import Packet
from repro.pops.topology import POPSNetwork

__all__ = ["PlanStore", "plan_key_digest", "STORE_SCHEMA_VERSION"]

#: Bump when the blob layout or the key encoding changes incompatibly; a
#: store directory written under a different schema refuses to open (CI keys
#: its ``actions/cache`` entry on this constant, so a bump naturally starts
#: a fresh store instead of quarantining every blob).
STORE_SCHEMA_VERSION = 1

#: Array fields of a CompiledSchedule, in checksum order.
_SCHEDULE_FIELDS: tuple[str, ...] = (
    "tx_sender", "tx_packet", "tx_ptr",
    "pay_coupler", "pay_packet", "pay_ptr",
    "del_receiver", "del_packet", "del_ptr",
    "con_packet", "con_ptr",
    "idle_receiver", "idle_coupler",
    "initial_loc", "pk_destination",
)

#: Batch fields carrying a leading ``(B, ·)`` axis (candidates for the
#: broadcast-row compaction); the remaining fields are shared structure.
_BATCH_PLANE_FIELDS: frozenset[str] = frozenset(
    {
        "tx_sender", "tx_packet", "pay_coupler", "pay_packet",
        "del_receiver", "del_packet", "con_packet",
        "initial_loc", "pk_destination",
    }
)


def _encode_key(key: Any, out: list[bytes]) -> bool:
    """Append an unambiguous type-tagged encoding of ``key`` to ``out``.

    Returns ``False`` (leaving ``out`` in an undefined state) when the key
    contains a value outside the supported vocabulary; callers treat that
    key as not persistable.  Tags + explicit lengths make the encoding
    prefix-free, so distinct keys can never collide by concatenation —
    e.g. ``("ab",)`` vs ``("a", "b")``.
    """
    if key is None:
        out.append(b"N;")
    elif isinstance(key, bool):  # before int: bool is an int subclass
        out.append(b"B1;" if key else b"B0;")
    elif isinstance(key, int):
        out.append(b"I%d;" % key)
    elif isinstance(key, float):
        out.append(b"F" + repr(key).encode("ascii") + b";")
    elif isinstance(key, str):
        raw = key.encode("utf-8")
        out.append(b"S%d:" % len(raw))
        out.append(raw)
    elif isinstance(key, bytes):
        out.append(b"Y%d:" % len(key))
        out.append(key)
    elif isinstance(key, tuple):
        out.append(b"T%d:" % len(key))
        for item in key:
            if not _encode_key(item, out):
                return False
    else:
        return False
    return True


def plan_key_digest(key: Hashable) -> str | None:
    """Stable hex digest addressing ``key``'s blob, or ``None``.

    ``None`` means the key is outside the persistable vocabulary (nested
    tuples of ints, strings, bytes, bools, floats and ``None``) and the disk
    tier must be skipped for it.  The digest is blake2b-128 over the
    type-tagged encoding, so it is stable across processes, platforms and
    Python versions — the property content addressing needs.
    """
    import hashlib

    parts: list[bytes] = []
    if not _encode_key(key, parts):
        return None
    return hashlib.blake2b(b"".join(parts), digest_size=16).hexdigest()


def _pack_fields(
    names: list[str], arrays: dict[str, np.ndarray]
) -> tuple[bytes, np.ndarray]:
    """Concatenate the named arrays into one aligned byte buffer + header.

    Blob load latency is dominated by *per-member* zip overhead, not bytes,
    so each blob carries a single ``data`` member holding every field's raw
    bytes (offsets padded to 16 so the load-side views stay aligned) and a
    ``header`` member — JSON ``[[name, dtype, shape, offset, nbytes], ...]``
    as utf-8 bytes — describing how to slice it back.  Returns
    ``(header_bytes, buffer)``.
    """
    chunks: list[bytes] = []
    header: list[list[Any]] = []
    offset = 0
    for name in names:
        arr = np.ascontiguousarray(arrays[name])
        pad = (-offset) % 16
        if pad:
            chunks.append(b"\x00" * pad)
            offset += pad
        raw = arr.tobytes()
        header.append([name, arr.dtype.str, list(arr.shape), offset, len(raw)])
        chunks.append(raw)
        offset += len(raw)
    buffer = np.frombuffer(b"".join(chunks), dtype=np.uint8)
    return json.dumps(header, separators=(",", ":")).encode("utf-8"), buffer


def _content_checksum(
    kind: str, shape_meta: np.ndarray, header: bytes, buffer: np.ndarray
) -> bytes:
    """Checksum over the blob's structure and bytes.

    The header carries every field's name, dtype and shape, so hashing
    ``kind + shape_meta + header + buffer`` covers values *and* layout in
    one pass over contiguous memory.
    """
    import hashlib

    h = hashlib.blake2b(digest_size=16)
    h.update(kind.encode("ascii"))
    h.update(np.ascontiguousarray(shape_meta, dtype=np.int64))
    h.update(header)
    h.update(np.ascontiguousarray(buffer))
    return h.digest()


class _CorruptBlob(Exception):
    """Internal: the blob exists but cannot be trusted."""


class _LazyPackets(Sequence):
    """Packet universe of a loaded plan, materialized on first touch.

    Rebuilding ``n`` frozen :class:`~repro.pops.packet.Packet` objects
    dominates blob load time (it is pure Python object construction), yet
    acquiring a plan — the warm-start hot path — never looks at them; only
    error reporting, trace materialization and buffer reconstruction do.
    This sequence holds the source/destination arrays and builds the list
    the first time anyone indexes, iterates or compares it, so a disk hit
    costs array reads only.
    """

    __slots__ = ("_source", "_destination", "_items")

    def __init__(self, source: np.ndarray, destination: np.ndarray):
        self._source = source
        self._destination = destination
        self._items: list[Packet] | None = None

    def _materialized(self) -> list[Packet]:
        if self._items is None:
            self._items = list(
                map(Packet, self._source.tolist(), self._destination.tolist())
            )
            self._source = self._destination = None
        return self._items

    def __len__(self) -> int:
        if self._items is not None:
            return len(self._items)
        return int(self._destination.shape[0])

    def __getitem__(self, index):
        return self._materialized()[index]

    def __iter__(self):
        return iter(self._materialized())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _LazyPackets):
            other = other._materialized()
        if isinstance(other, list):
            return self._materialized() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "materialized" if self._items is not None else "lazy"
        return f"_LazyPackets(n={len(self)}, {state})"


class PlanStore:
    """Content-addressed on-disk tier for compiled routing plans.

    Parameters
    ----------
    path:
        Store directory; created (with its schema pin) when absent.  A
        directory pinned to a different schema version raises
        :class:`~repro.exceptions.ConfigurationError` — blobs of one schema
        must never be decoded as another.
    max_bytes:
        Optional standing byte budget: after every write the store GCs
        oldest-first back under the budget.  ``None`` (default) means
        unbounded; explicit :meth:`gc` calls still work.
    """

    def __init__(self, path: str | os.PathLike, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self._objects = self.path / "objects"
        self._quarantine = self.path / "quarantine"
        self._stats_dir = self.path / "stats"
        for directory in (self._objects, self._quarantine, self._stats_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self._pin_schema()
        # Per-instance counters (repro.obs metrics — the shared counting
        # model), mirrored to this instance's stats shard; the int-valued
        # properties below preserve the historical attribute reads.
        self._counters = {
            name: Counter(f"store_{name}")
            for name in ("disk_hits", "disk_misses", "writes", "quarantined")
        }
        self._shard_path = self._stats_dir / f"{os.getpid()}-{uuid.uuid4().hex}.json"

    @property
    def disk_hits(self) -> int:
        """Blobs this instance loaded successfully."""
        return self._counters["disk_hits"].value

    @property
    def disk_misses(self) -> int:
        """Probes this instance answered with a miss (absent or corrupt blob)."""
        return self._counters["disk_misses"].value

    @property
    def writes(self) -> int:
        """Blobs this instance persisted."""
        return self._counters["writes"].value

    @property
    def quarantined(self) -> int:
        """Corrupt blobs this instance moved to quarantine."""
        return self._counters["quarantined"].value

    # -- layout ------------------------------------------------------------

    def _pin_schema(self) -> None:
        pin = self.path / "store.json"
        try:
            recorded = json.loads(pin.read_text())
        except FileNotFoundError:
            self._atomic_write_text(
                pin, json.dumps({"schema": STORE_SCHEMA_VERSION}) + "\n"
            )
            return
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"unreadable plan-store schema pin {pin}: {exc}"
            ) from exc
        if recorded.get("schema") != STORE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"plan store at {self.path} has schema "
                f"{recorded.get('schema')!r}, this build speaks "
                f"{STORE_SCHEMA_VERSION}; point --plan-store at a fresh "
                "directory (CI keys its cache on the schema version for "
                "exactly this reason)"
            )

    def _blob_path(self, digest: str) -> Path:
        return self._objects / digest[:2] / f"{digest}.npz"

    def _atomic_write_text(self, target: Path, text: str) -> None:
        tmp = target.with_name(f".{target.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        tmp.write_text(text)
        os.replace(tmp, target)

    def _flush_counters(self) -> None:
        """Publish this instance's counters to its private stats shard.

        One shard per instance means concurrent processes never contend, so
        a plain overwrite suffices (this is the only writer of its shard and
        it sits on the disk-hit hot path); a reader catching the shard
        mid-write sees invalid JSON and skips it, the same as a shard that
        does not exist yet.  Summation happens at read time in :meth:`stats`.
        """
        payload = json.dumps(
            {
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "writes": self.writes,
                "quarantined": self.quarantined,
            }
        )
        try:
            self._shard_path.write_text(payload + "\n")
        except OSError:  # pragma: no cover - stats are best-effort
            pass

    # -- blob encoding ------------------------------------------------------

    def _pack(self, compiled: Any) -> dict[str, np.ndarray] | None:
        """Lower a compiled plan to the flat npz member mapping, or ``None``.

        ``None`` marks the object as not persistable: an unknown compiled
        type (plugin engines may cache their own artefacts in the same
        :class:`~repro.pops.engine.ScheduleCache`) or a packet universe
        carrying payloads.  The mapping holds five members — ``kind``,
        ``shape_meta``, ``header``, ``data``, ``checksum`` — with every
        field array concatenated into the single ``data`` buffer (see
        :func:`_pack_fields`); per-member zip overhead, not byte count, is
        what a disk hit pays for.
        """
        from repro.pops.engine import CompiledSchedule, CompiledScheduleBatch

        if isinstance(compiled, CompiledSchedule):
            if any(p.payload is not None for p in compiled.packets):
                return None
            fields: dict[str, np.ndarray] = {
                name: np.asarray(getattr(compiled, name))
                for name in _SCHEDULE_FIELDS
            }
            fields["pk_source"] = np.fromiter(
                (p.source for p in compiled.packets),
                dtype=np.int64,
                count=len(compiled.packets),
            )
            names = list(_SCHEDULE_FIELDS) + ["pk_source"]
            kind = "schedule"
            shape_meta = np.array(
                [compiled.network.d, compiled.network.g, compiled.n_slots, 0],
                dtype=np.int64,
            )
            bcast: list[str] = []
        elif isinstance(compiled, CompiledScheduleBatch):
            fields = {}
            bcast = []
            for name in _SCHEDULE_FIELDS:
                arr = np.asarray(getattr(compiled, name))
                if (
                    name in _BATCH_PLANE_FIELDS
                    and arr.ndim == 2
                    and arr.shape[0] == compiled.n_batch
                    and arr.strides[0] == 0
                ):
                    # Broadcast plane: one distinct row carries everything.
                    fields[name] = np.ascontiguousarray(arr[0])
                    bcast.append(name)
                else:
                    fields[name] = arr
            names = list(_SCHEDULE_FIELDS)
            kind = "batch"
            shape_meta = np.array(
                [
                    compiled.network.d,
                    compiled.network.g,
                    compiled.n_slots,
                    compiled.n_batch,
                ],
                dtype=np.int64,
            )
        else:
            return None
        header, buffer = _pack_fields(names, fields)
        return {
            "kind": np.array(kind),
            "shape_meta": shape_meta,
            "bcast": np.array(sorted(bcast)),
            "header": np.frombuffer(header, dtype=np.uint8),
            "data": buffer,
            "checksum": np.frombuffer(
                _content_checksum(kind, shape_meta, header, buffer), dtype=np.uint8
            ),
        }

    def _unpack(self, data: Any) -> Any:
        """Rebuild the compiled plan from a loaded npz mapping.

        Raises :class:`_CorruptBlob` on any structural or checksum mismatch.
        Field arrays are aligned views into the blob's single ``data``
        buffer — no per-field copies on the load path.
        """
        from repro.pops.engine import CompiledSchedule, CompiledScheduleBatch

        try:
            kind = str(data["kind"][()])
            shape_meta = data["shape_meta"]
            d, g, n_slots, n_batch = (int(v) for v in shape_meta)
            header_bytes = data["header"].tobytes()
            buffer = data["data"]
            recorded = bytes(data["checksum"])
        except Exception as exc:
            raise _CorruptBlob(str(exc)) from exc
        if kind == "schedule":
            names = list(_SCHEDULE_FIELDS) + ["pk_source"]
        elif kind == "batch":
            names = list(_SCHEDULE_FIELDS)
        else:
            raise _CorruptBlob(f"unknown blob kind {kind!r}")
        if _content_checksum(kind, shape_meta, header_bytes, buffer) != recorded:
            raise _CorruptBlob("checksum mismatch")
        try:
            header = json.loads(header_bytes)
            arrays = {}
            for name, dtype_str, shape, offset, nbytes in header:
                arrays[name] = (
                    buffer[offset : offset + nbytes].view(dtype_str).reshape(shape)
                )
        except Exception as exc:
            raise _CorruptBlob(f"bad header: {exc}") from exc
        if sorted(arrays) != sorted(names):
            raise _CorruptBlob(f"fields {sorted(arrays)} != expected {sorted(names)}")
        network = POPSNetwork(d, g)
        if kind == "schedule":
            return CompiledSchedule(
                network=network,
                packets=_LazyPackets(arrays["pk_source"], arrays["pk_destination"]),
                n_slots=n_slots,
                **{name: arrays[name] for name in _SCHEDULE_FIELDS},
            )
        bcast = {str(name) for name in data["bcast"]}
        fields = {}
        for name in _SCHEDULE_FIELDS:
            arr = arrays[name]
            if name in bcast:
                arr = np.broadcast_to(arr, (n_batch,) + arr.shape)
            fields[name] = arr
        return CompiledScheduleBatch(
            network=network, n_batch=n_batch, n_slots=n_slots, **fields
        )

    # -- store operations ---------------------------------------------------

    def get(self, key: Hashable) -> Any | None:
        """Load the plan stored under ``key``; ``None`` on any miss.

        A blob that exists but fails to open or checksum is quarantined and
        reported as a miss — the caller recompiles, the bad blob never
        crashes a run, and ``cache verify`` / the quarantine directory keep
        the evidence.
        """
        with get_tracer().span("store.probe") as probe:
            digest = plan_key_digest(key)
            if digest is None:
                return None
            blob = self._blob_path(digest)
            try:
                with np.load(blob, allow_pickle=False) as data:
                    compiled = self._unpack(data)
            except FileNotFoundError:
                self._counters["disk_misses"].inc()
                self._flush_counters()
                probe.annotate(hit=False)
                return None
            except (_CorruptBlob, OSError, ValueError, zipfile.BadZipFile, EOFError):
                self._quarantine_blob(blob)
                self._counters["disk_misses"].inc()
                self._flush_counters()
                probe.annotate(hit=False, quarantined=True)
                return None
            self._counters["disk_hits"].inc()
            self._flush_counters()
            probe.annotate(hit=True)
            return compiled

    def put(self, key: Hashable, compiled: Any) -> bool:
        """Persist ``compiled`` under ``key``; returns whether it was written.

        Not-persistable inputs (undigestible key, unknown compiled type,
        payload-carrying packets) are skipped silently — the memory tier
        still holds them, so behaviour without a store is preserved exactly.
        The write is atomic (temp file + ``os.replace``), making concurrent
        writers of one key last-writer-wins with no torn state.
        """
        digest = plan_key_digest(key)
        if digest is None:
            return False
        arrays = self._pack(compiled)
        if arrays is None:
            return False
        blob = self._blob_path(digest)
        blob.parent.mkdir(parents=True, exist_ok=True)
        tmp = blob.with_name(f".{blob.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        try:
            with open(tmp, "wb") as fh:
                # Uncompressed: load latency is the whole point of the store,
                # and integer plan arrays are small next to a route + lower.
                np.savez(fh, **arrays)
            os.replace(tmp, blob)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self._counters["writes"].inc()
        self._flush_counters()
        if self.max_bytes is not None:
            self.gc(self.max_bytes)
        return True

    def _quarantine_blob(self, blob: Path) -> None:
        target = self._quarantine / f"{blob.stem}.{uuid.uuid4().hex}.npz"
        try:
            os.replace(blob, target)
            self._counters["quarantined"].inc()
        except OSError:
            # Another process already moved or GC'd it; nothing to keep.
            pass

    def _iter_blobs(self) -> list[Path]:
        return [p for p in self._objects.glob("*/*.npz") if not p.name.startswith(".")]

    def gc(self, max_bytes: int) -> dict[str, int]:
        """Delete oldest blobs (by mtime) until the store fits ``max_bytes``.

        Concurrent readers are safe: deletion of an open-or-about-to-be-read
        blob surfaces to them as an ordinary miss (``FileNotFoundError`` is
        a miss path in :meth:`get`).  Returns ``{"removed", "freed_bytes",
        "kept", "kept_bytes"}``.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        for blob in self._iter_blobs():
            try:
                stat = blob.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, blob))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        removed = freed = 0
        for _, size, blob in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(blob)
            except OSError:
                continue
            total -= size
            removed += 1
            freed += size
        return {
            "removed": removed,
            "freed_bytes": freed,
            "kept": len(entries) - removed,
            "kept_bytes": total,
        }

    def verify(self) -> dict[str, int]:
        """Open and checksum every blob, quarantining the corrupt ones.

        Returns ``{"checked", "ok", "quarantined"}``.  A clean store is the
        postcondition: every surviving blob loaded and checksummed.
        """
        checked = ok = bad = 0
        for blob in self._iter_blobs():
            checked += 1
            try:
                with np.load(blob, allow_pickle=False) as data:
                    self._unpack(data)
            except FileNotFoundError:
                checked -= 1  # raced with GC; not this store's problem
            except (_CorruptBlob, OSError, ValueError, zipfile.BadZipFile, EOFError):
                self._quarantine_blob(blob)
                bad += 1
            else:
                ok += 1
        if bad:
            self._flush_counters()
        return {"checked": checked, "ok": ok, "quarantined": bad}

    def stats(self) -> dict[str, Any]:
        """Store-wide statistics: disk scan + counters summed over all shards.

        The counter section aggregates every process that ever touched this
        store directory (each wrote its own ``stats/`` shard), which is what
        lets a *later* ``pops-repro cache stats`` invocation observe the disk
        hits a sweep's pool workers recorded.
        """
        entries = 0
        total_bytes = 0
        for blob in self._iter_blobs():
            try:
                total_bytes += blob.stat().st_size
            except OSError:
                continue
            entries += 1
        counters = {"disk_hits": 0, "disk_misses": 0, "writes": 0, "quarantined": 0}
        for shard in self._stats_dir.glob("*.json"):
            try:
                recorded = json.loads(shard.read_text())
            except (OSError, ValueError):
                continue
            for name in counters:
                value = recorded.get(name, 0)
                if isinstance(value, int):
                    counters[name] += value
        return {
            "path": str(self.path),
            "schema": STORE_SCHEMA_VERSION,
            "entries": entries,
            "total_bytes": total_bytes,
            "quarantine_entries": sum(1 for _ in self._quarantine.glob("*.npz")),
            **counters,
        }
