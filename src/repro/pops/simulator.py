"""Slot-accurate execution of routing schedules on a POPS network.

The simulator is the substrate substituting for optical hardware: it executes
a :class:`~repro.pops.schedule.RoutingSchedule` one slot at a time, enforcing
the POPS communication model —

* a processor may only drive couplers fed by its own group and only with a
  packet currently in its buffer;
* at most one processor drives a given coupler per slot;
* a processor reads at most one of its receivers per slot, and only couplers
  that actually carry a packet;

— and it records a full trace.  After execution,
:meth:`SimulationResult.verify_permutation_delivery` checks that every packet
sits at its destination, which is how all routing tests and benchmarks in this
repository establish end-to-end correctness (not just slot counting).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.api.registry import SIM_ENGINES
from repro.exceptions import (
    ConfigurationError,
    CouplerConflictError,
    DeliveryError,
    ReceiverConflictError,
    SimulationError,
    TransmitterError,
    UnsupportedScheduleError,
)
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule, SlotProgram
from repro.pops.topology import Coupler, POPSNetwork
from repro.pops.trace import CompiledTrace, SimulationTrace, SlotTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pops.engine import ScheduleCache

__all__ = ["POPSSimulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of executing a schedule.

    Attributes
    ----------
    network:
        The simulated network.
    buffers:
        Final buffer contents, ``processor -> list of packets held``.
    trace:
        Per-slot record of coupler payloads and deliveries — a dict-based
        :class:`SimulationTrace` from the reference backend, or a
        :class:`~repro.pops.trace.CompiledTrace` (integer arrays end to end,
        statistics as numpy reductions) from the batched engine.  Both expose
        the same statistics API.
    """

    network: POPSNetwork
    buffers: dict[int, list[Packet]]
    trace: SimulationTrace | CompiledTrace = field(default_factory=SimulationTrace)

    @property
    def n_slots(self) -> int:
        """Number of slots the executed schedule used."""
        return self.trace.n_slots

    def holder_of(self, packet: Packet) -> list[int]:
        """Processors currently holding (a copy of) ``packet``."""
        return [proc for proc, held in self.buffers.items() if packet in held]

    def packets_at(self, processor: int) -> list[Packet]:
        """Packets buffered at ``processor`` after execution."""
        return list(self.buffers.get(processor, []))

    def verify_permutation_delivery(self, packets: list[Packet]) -> None:
        """Check that every packet in ``packets`` ended at its destination
        and that no processor holds more than one of them.

        Raises
        ------
        DeliveryError
            If a packet is missing from its destination, present elsewhere, or
            duplicated.
        """
        holders_of: dict[Packet, list[int]] = {}
        for processor, held in self.buffers.items():
            for packet in held:
                holders = holders_of.setdefault(packet, [])
                if not holders or holders[-1] != processor:
                    holders.append(processor)
        for packet in packets:
            holders = holders_of.get(packet, [])
            if holders != [packet.destination]:
                raise DeliveryError(
                    f"{packet!r} should end at processor {packet.destination}, "
                    f"found at {holders}"
                )
        expected_counts: dict[int, int] = {}
        for packet in packets:
            expected_counts[packet.destination] = (
                expected_counts.get(packet.destination, 0) + 1
            )
        packet_set = set(packets)
        for processor, held in self.buffers.items():
            routed_here = [p for p in held if p in packet_set]
            if len(routed_here) != expected_counts.get(processor, 0):
                raise DeliveryError(
                    f"processor {processor} holds {len(routed_here)} routed packets, "
                    f"expected {expected_counts.get(processor, 0)}"
                )


class POPSSimulator:
    """Executes routing schedules under the POPS slot model.

    Parameters
    ----------
    network:
        The POPS(d, g) network to simulate.
    strict_receptions:
        When ``True`` (default) a processor reading a coupler that carries no
        packet is treated as a schedule bug and raises
        :class:`SimulationError`; when ``False`` the read silently yields
        nothing (useful for hand-written experimental schedules).
    backend:
        Any engine registered in :data:`repro.api.registry.SIM_ENGINES`.
        The built-ins: ``"reference"`` (default) executes transmissions one
        Python object at a time with full dynamic checking; ``"batched"``
        lowers the schedule to integer arrays and executes each slot as
        vectorized numpy operations (see :mod:`repro.pops.engine`);
        ``"batched-collective"`` is the vectorized engine for
        packet-duplicating schedules — broadcast-style sends, multi-reader
        couplers — on a multi-location copy-count state (see
        :mod:`repro.pops.collective_engine`); ``"auto"`` picks
        batched → batched-collective → reference by schedule shape.  All
        backends produce equivalent results and traces; buffer ordering
        within a processor may differ.
    """

    #: The built-in engines.  The authoritative table is the SIM_ENGINES
    #: registry — engines registered there dispatch without touching this
    #: class.
    BACKENDS = ("reference", "batched", "batched-collective", "auto")

    def __init__(
        self,
        network: POPSNetwork,
        strict_receptions: bool = True,
        backend: str = "reference",
    ):
        if backend not in SIM_ENGINES:
            raise ConfigurationError(
                f"unknown simulator backend {backend!r}; "
                f"expected one of {tuple(SIM_ENGINES.names())}"
            )
        self.network = network
        self.strict_receptions = strict_receptions
        self.backend = backend

    # -- initial placement ------------------------------------------------------

    def initial_buffers(self, packets: list[Packet]) -> dict[int, list[Packet]]:
        """Place every packet at its source processor."""
        buffers: dict[int, list[Packet]] = {p: [] for p in self.network.processors()}
        for packet in packets:
            if not (0 <= packet.source < self.network.n):
                raise SimulationError(
                    f"{packet!r} has source outside the network of size {self.network.n}"
                )
            buffers[packet.source].append(packet)
        return buffers

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        initial_buffers: dict[int, list[Packet]] | None = None,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ) -> SimulationResult:
        """Execute ``schedule`` starting from ``packets`` at their sources.

        Dispatches to the engine registered under this simulator's backend
        name in :data:`repro.api.registry.SIM_ENGINES`.  ``cache_key`` opts
        compiled engines into the compiled-schedule cache (see
        :meth:`repro.pops.engine.BatchedSimulator.compile`) and ``cache``
        selects which cache to use (default: the process-wide one); the
        reference engine ignores both.
        """
        if schedule.network != self.network:
            raise SimulationError(
                f"schedule targets {schedule.network!r}, simulator holds {self.network!r}"
            )
        engine = SIM_ENGINES.get(self.backend)
        return engine(
            self, schedule, packets, initial_buffers, cache_key=cache_key, cache=cache
        )

    def run_reference(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        initial_buffers: dict[int, list[Packet]] | None = None,
        faults=None,
    ) -> SimulationResult:
        """The reference slot-by-slot execution path.

        Public so that fast-path engines registered in
        :data:`repro.api.registry.SIM_ENGINES` can fall back to it for
        schedules outside their model (as the batched engine does for
        packet-duplicating broadcasts).

        ``faults`` opts into fault injection: a
        :class:`~repro.faults.FaultSpec` checked at the start of every slot
        inside the fault window.  Touching failed hardware raises
        :class:`~repro.exceptions.CouplerFailedError` with the residual
        packet state, bit-identical (same slot, same residual) to
        :meth:`repro.pops.engine.BatchedSimulator.execute` under the same
        spec.
        """
        schedule.validate()
        if faults is not None and faults.is_empty:
            faults = None
        if faults is not None:
            failed_pairs = faults.failed_coupler_pairs(self.network.g)
            failed_procs = faults.failed_processor_set(self.network)
        buffers = (
            {proc: list(held) for proc, held in initial_buffers.items()}
            if initial_buffers is not None
            else self.initial_buffers(packets)
        )
        trace = SimulationTrace()
        for slot_index, slot in enumerate(schedule.slots):
            if faults is not None and faults.active_at(slot_index):
                self._check_slot_faults(
                    slot_index, slot, buffers, packets, failed_pairs, failed_procs
                )
            trace.slots.append(self._run_slot(slot_index, slot, buffers))
        return SimulationResult(network=self.network, buffers=buffers, trace=trace)

    def _check_slot_faults(
        self,
        slot_index: int,
        slot: SlotProgram,
        buffers: dict[int, list[Packet]],
        packets: list[Packet],
        failed_pairs: frozenset[tuple[int, int]],
        failed_procs: frozenset[int],
    ) -> None:
        """Raise :class:`CouplerFailedError` if ``slot`` touches failed hardware.

        Check order mirrors the batched engine's fault path — driven couplers
        first, then failed senders, then failed receivers of carrying
        couplers — and the residual is taken before the slot executes, so
        both engines raise bit-identically.
        """
        from repro.exceptions import CouplerFailedError

        coupler = None
        message = None
        for transmission in slot.transmissions:
            pair = (
                transmission.coupler.dest_group,
                transmission.coupler.source_group,
            )
            if pair in failed_pairs:
                coupler = transmission.coupler
                message = (
                    f"slot {slot_index}: {coupler!r} is failed under the "
                    "active fault spec"
                )
                break
        if message is None:
            for transmission in slot.transmissions:
                if transmission.sender in failed_procs:
                    message = (
                        f"slot {slot_index}: failed processor "
                        f"{transmission.sender} is scheduled to transmit"
                    )
                    break
        if message is None:
            driven = {t.coupler for t in slot.transmissions}
            for reception in slot.receptions:
                if reception.receiver in failed_procs and reception.coupler in driven:
                    message = (
                        f"slot {slot_index}: failed processor "
                        f"{reception.receiver} is scheduled to receive"
                    )
                    break
        if message is None:
            return
        holder_of: dict[Packet, int] = {}
        for proc, held in buffers.items():
            for packet in held:
                holder_of.setdefault(packet, proc)
        residual = {
            packet: holder_of[packet]
            for packet in packets
            if packet in holder_of and holder_of[packet] != packet.destination
        }
        raise CouplerFailedError(
            message, slot=slot_index, coupler=coupler, residual=residual
        )

    def _run_slot(
        self, slot_index: int, slot: SlotProgram, buffers: dict[int, list[Packet]]
    ) -> SlotTrace:
        """Execute one slot, mutating ``buffers`` in place."""
        # Phase 1: all sends happen simultaneously.  Determine coupler payloads.
        payloads: dict[Coupler, Packet] = {}
        senders: dict[Coupler, int] = {}
        consumed: list[tuple[int, Packet]] = []
        consumed_seen: set[tuple[int, int]] = set()
        # Schedules reference packets by identity (source, destination); index
        # each touched buffer once so resolving to the buffered instance (which
        # carries the payload) is O(1) per transmission instead of a list scan.
        buffer_index: dict[int, dict[Packet, Packet]] = {}
        for transmission in slot.transmissions:
            sender = transmission.sender
            coupler = transmission.coupler
            packet = transmission.packet
            if not self.network.can_transmit(sender, coupler):
                raise TransmitterError(
                    f"slot {slot_index}: processor {sender} cannot drive {coupler!r}"
                )
            if coupler in payloads and senders[coupler] != sender:
                raise CouplerConflictError(
                    f"slot {slot_index}: {coupler!r} driven by processors "
                    f"{senders[coupler]} and {sender}"
                )
            index = buffer_index.get(sender)
            if index is None:
                index = {}
                for held in buffers[sender]:
                    index.setdefault(held, held)
                buffer_index[sender] = index
            buffered = index.get(packet)
            if buffered is None:
                raise SimulationError(
                    f"slot {slot_index}: processor {sender} does not hold {packet!r}"
                )
            payloads[coupler] = buffered
            senders[coupler] = sender
            if transmission.consume and (sender, id(buffered)) not in consumed_seen:
                consumed_seen.add((sender, id(buffered)))
                consumed.append((sender, buffered))

        # Phase 2: all reads happen simultaneously.
        readers: set[int] = set()
        deliveries: list[tuple[int, Packet]] = []
        for reception in slot.receptions:
            receiver = reception.receiver
            coupler = reception.coupler
            if not self.network.can_receive(receiver, coupler):
                raise TransmitterError(
                    f"slot {slot_index}: processor {receiver} cannot read {coupler!r}"
                )
            if receiver in readers:
                raise ReceiverConflictError(
                    f"slot {slot_index}: processor {receiver} reads two couplers"
                )
            readers.add(receiver)
            if coupler not in payloads:
                if self.strict_receptions:
                    raise SimulationError(
                        f"slot {slot_index}: processor {receiver} reads idle {coupler!r}"
                    )
                continue
            deliveries.append((receiver, payloads[coupler]))

        # Phase 3: commit buffer changes (sends leave, reads arrive).
        for sender, packet in consumed:
            buffers[sender].remove(packet)
        for receiver, packet in deliveries:
            buffers[receiver].append(packet)

        return SlotTrace(
            slot_index=slot_index,
            coupler_payloads=payloads,
            deliveries=deliveries,
        )

    # -- convenience -------------------------------------------------------------------

    def route_and_verify(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ) -> SimulationResult:
        """Run ``schedule`` and assert every packet reached its destination."""
        result = self.run(schedule, packets, cache_key=cache_key, cache=cache)
        result.verify_permutation_delivery(packets)
        return result


# ---------------------------------------------------------------------------
# Built-in engine registrations
# ---------------------------------------------------------------------------
#
# An engine is a callable ``engine(simulator, schedule, packets,
# initial_buffers, *, cache_key, cache) -> SimulationResult``.  Registering a
# new name in SIM_ENGINES makes it dispatchable through
# ``POPSSimulator(backend=...)`` (and therefore through RunConfig/Session and
# the CLI) without touching this module.


@SIM_ENGINES.register("reference")
def _reference_engine(
    simulator: POPSSimulator,
    schedule: RoutingSchedule,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None = None,
    *,
    cache_key: Hashable | None = None,
    cache: ScheduleCache | None = None,
) -> SimulationResult:
    """Slot-by-slot Python execution with full dynamic checking."""
    return simulator.run_reference(schedule, packets, initial_buffers)


@SIM_ENGINES.register("batched")
def _batched_engine(
    simulator: POPSSimulator,
    schedule: RoutingSchedule,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None = None,
    *,
    cache_key: Hashable | None = None,
    cache: ScheduleCache | None = None,
) -> SimulationResult:
    """Vectorized consuming-model engine; schedules that duplicate packets
    (broadcast-style sends, multi-reader couplers) fall through to the
    vectorized collective engine, and only past *its* state budget to the
    reference path — pure broadcast/collective schedules never hit the slow
    simulator.  Obviously-duplicating shapes are detected by the cheap probe
    before compiling, so the fallback does not lower the schedule twice."""
    from repro.pops.engine import BatchedSimulator
    from repro.pops.lowering import classify_schedule

    if classify_schedule(schedule) == "consuming":
        try:
            return BatchedSimulator(
                simulator.network, simulator.strict_receptions
            ).run(
                schedule, packets, initial_buffers,
                cache_key=cache_key, cache=cache,
            )
        except UnsupportedScheduleError:
            pass
    return _collective_engine(
        simulator, schedule, packets, initial_buffers,
        cache_key=cache_key, cache=cache,
    )


@SIM_ENGINES.register("batched-collective")
def _collective_engine(
    simulator: POPSSimulator,
    schedule: RoutingSchedule,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None = None,
    *,
    cache_key: Hashable | None = None,
    cache: ScheduleCache | None = None,
) -> SimulationResult:
    """Vectorized multi-location engine for packet-duplicating schedules
    (see :mod:`repro.pops.collective_engine`).  Handles every schedule shape;
    the one fallback to the reference path is a copy-count state that would
    blow the engine's memory budget."""
    from repro.pops.collective_engine import CollectiveSimulator

    try:
        return CollectiveSimulator(
            simulator.network, simulator.strict_receptions
        ).run(
            schedule, packets, initial_buffers, cache_key=cache_key, cache=cache
        )
    except UnsupportedScheduleError:
        return simulator.run_reference(schedule, packets, initial_buffers)


@SIM_ENGINES.register("auto")
def _auto_engine(
    simulator: POPSSimulator,
    schedule: RoutingSchedule,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None = None,
    *,
    cache_key: Hashable | None = None,
    cache: ScheduleCache | None = None,
) -> SimulationResult:
    """Shape-dispatching engine: batched → batched-collective → reference.

    A cheap one-pass probe (:func:`repro.pops.lowering.classify_schedule`)
    routes consuming schedules to the flat-location batched engine and
    duplicating ones (broadcast-style sends, multi-reader couplers) straight
    to the collective engine, skipping the doomed batched compile.  The probe
    is a hint, not a guarantee — the batched compiler still rejects the rare
    consuming-shaped schedule that duplicates a packet, and the collective
    compiler rejects state past its memory budget — so each stage falls
    through on :class:`UnsupportedScheduleError`.  When a ``cache_key`` is
    given and an engine's compiled entry is already cached, the cached entry
    decides the engine directly and even the probe (a Python pass over the
    schedule objects) is skipped, so cache-served sweep iterations pay no
    per-call dispatch cost.
    """
    from repro.pops.engine import BatchedSimulator, schedule_cache
    from repro.pops.lowering import classify_schedule

    consuming = None
    if cache_key is not None and initial_buffers is None:
        store = cache if cache is not None else schedule_cache()
        if store.peek(cache_key) is not None:
            consuming = True
        elif store.peek(("batched-collective", cache_key)) is not None:
            consuming = False
    if consuming is None:
        consuming = classify_schedule(schedule) == "consuming"
    if consuming:
        try:
            return BatchedSimulator(
                simulator.network, simulator.strict_receptions
            ).run(
                schedule, packets, initial_buffers,
                cache_key=cache_key, cache=cache,
            )
        except UnsupportedScheduleError:
            pass
    return _collective_engine(
        simulator, schedule, packets, initial_buffers,
        cache_key=cache_key, cache=cache,
    )
