"""Static description of a POPS(d, g) network.

The topology object knows nothing about packets or time; it answers structural
questions only: which group a processor belongs to, which couplers exist, which
couplers a processor can transmit to or receive from, and the aggregate
properties the paper quotes (diameter 1, ``g^2`` couplers, per-slot bandwidth
of at most ``g^2`` packets).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["Coupler", "POPSNetwork"]


@dataclass(frozen=True, order=True)
class Coupler:
    """The optical passive star coupler ``c(dest_group, source_group)``.

    Following the paper's notation, ``c(b, a)`` has all processors of group
    ``a`` as sources and all processors of group ``b`` as destinations.
    """

    dest_group: int
    source_group: int

    def __repr__(self) -> str:
        return f"c({self.dest_group},{self.source_group})"


class POPSNetwork:
    """Structural model of a POPS(d, g) network.

    Parameters
    ----------
    d:
        Number of processors per group (also the coupler fan-in/fan-out).
    g:
        Number of groups.

    Notes
    -----
    Processor ``i`` belongs to group ``group(i) = i // d``; it owns ``g``
    transmitters, one to each coupler ``c(a, group(i))``, and ``g`` receivers,
    one from each coupler ``c(group(i), b)``.
    """

    __slots__ = ("_d", "_g", "__dict__")

    #: Fault specification masking this network, ``None`` for the clean
    #: topology.  Set (as an instance attribute) by
    #: :class:`repro.faults.DegradedNetwork`; it participates in
    #: equality/hashing so a degraded view never aliases the clean network
    #: in schedule caches or ``schedule.network == simulator.network`` checks.
    fault_spec = None

    def __init__(self, d: int, g: int):
        check_positive_int(d, "d")
        check_positive_int(g, "g")
        self._d = d
        self._g = g

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_processor_count(cls, n: int, g: int) -> "POPSNetwork":
        """Build a POPS(n/g, g) network; ``g`` must divide ``n``."""
        check_positive_int(n, "n")
        check_positive_int(g, "g")
        if n % g != 0:
            raise ConfigurationError(f"g={g} must divide n={n}")
        return cls(n // g, g)

    # -- scalar properties ----------------------------------------------------

    @property
    def d(self) -> int:
        """Processors per group."""
        return self._d

    @property
    def g(self) -> int:
        """Number of groups."""
        return self._g

    @property
    def n(self) -> int:
        """Total number of processors (``d * g``)."""
        return self._d * self._g

    @property
    def n_couplers(self) -> int:
        """Number of OPS couplers (``g^2``)."""
        return self._g * self._g

    @property
    def diameter(self) -> int:
        """Network diameter in slots (1 for every POPS network with g >= 1)."""
        return 1

    @property
    def max_packets_per_slot(self) -> int:
        """Upper bound on packets moved in one slot (one per coupler)."""
        return self.n_couplers

    @property
    def coupler_fanout(self) -> int:
        """Sources/destinations per coupler (each coupler is a d x d OPS)."""
        return self._d

    @cached_property
    def theorem2_slots(self) -> int:
        """Slots Theorem 2 guarantees for routing any permutation on this network."""
        if self._d == 1:
            return 1
        return 2 * ((self._d + self._g - 1) // self._g)

    # -- indexing ---------------------------------------------------------------

    def group_of(self, processor: int) -> int:
        """Group index of ``processor`` (``⌊processor / d⌋``)."""
        check_in_range(processor, 0, self.n, "processor")
        return processor // self._d

    def local_index(self, processor: int) -> int:
        """Index of ``processor`` within its group (``processor mod d``)."""
        check_in_range(processor, 0, self.n, "processor")
        return processor % self._d

    def processor(self, group: int, local_index: int) -> int:
        """Global index of the ``local_index``-th processor of ``group``."""
        check_in_range(group, 0, self._g, "group")
        check_in_range(local_index, 0, self._d, "local_index")
        return group * self._d + local_index

    def processors_in_group(self, group: int) -> range:
        """The processors of ``group`` as a range."""
        check_in_range(group, 0, self._g, "group")
        return range(group * self._d, (group + 1) * self._d)

    def groups(self) -> range:
        """All group indices."""
        return range(self._g)

    def processors(self) -> range:
        """All processor indices."""
        return range(self.n)

    # -- coupler wiring ------------------------------------------------------------

    def coupler(self, dest_group: int, source_group: int) -> Coupler:
        """The coupler ``c(dest_group, source_group)``."""
        check_in_range(dest_group, 0, self._g, "dest_group")
        check_in_range(source_group, 0, self._g, "source_group")
        return Coupler(dest_group, source_group)

    def couplers(self) -> list[Coupler]:
        """All ``g^2`` couplers, ordered by (dest_group, source_group)."""
        return [
            Coupler(dest, src) for dest in range(self._g) for src in range(self._g)
        ]

    def transmit_couplers(self, processor: int) -> list[Coupler]:
        """Couplers processor ``processor`` can drive (``c(a, group(processor))`` for all a)."""
        source_group = self.group_of(processor)
        return [Coupler(dest, source_group) for dest in range(self._g)]

    def receive_couplers(self, processor: int) -> list[Coupler]:
        """Couplers processor ``processor`` can read (``c(group(processor), b)`` for all b)."""
        dest_group = self.group_of(processor)
        return [Coupler(dest_group, src) for src in range(self._g)]

    def can_transmit(self, processor: int, coupler: Coupler) -> bool:
        """True iff ``processor`` owns a transmitter into ``coupler``."""
        return coupler.source_group == self.group_of(processor)

    def can_receive(self, processor: int, coupler: Coupler) -> bool:
        """True iff ``processor`` owns a receiver from ``coupler``."""
        return coupler.dest_group == self.group_of(processor)

    # -- fault masking -----------------------------------------------------------------

    def coupler_failed(self, coupler: Coupler) -> bool:
        """True iff ``coupler`` is masked by a fault spec (never, when clean)."""
        return False

    def processor_failed(self, processor: int) -> bool:
        """True iff ``processor`` is masked by a fault spec (never, when clean)."""
        return False

    def degrade(self, spec) -> "POPSNetwork":
        """A reduced-capacity view of this network under ``spec``.

        Returns a :class:`repro.faults.DegradedNetwork` — same ``(d, g)``
        shape, but couplers and processors named by the
        :class:`~repro.faults.FaultSpec` are masked out of the wiring
        predicates (``can_transmit``/``can_receive``/``couplers()``/...), so
        schedules validated against the view provably avoid the failed
        hardware.  The view compares unequal to the clean network.
        """
        from repro.faults import DegradedNetwork

        return DegradedNetwork(self, spec)

    # -- dunder ------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, POPSNetwork):
            return NotImplemented
        return (
            self._d == other._d
            and self._g == other._g
            and self.fault_spec == other.fault_spec
        )

    def __hash__(self) -> int:
        return hash((self._d, self._g, self.fault_spec))

    def __repr__(self) -> str:
        return f"POPSNetwork(d={self._d}, g={self._g})"
