"""Vectorized execution of packet-duplicating (collective) schedules.

The batched engine (:mod:`repro.pops.engine`) tracks one location per packet
and therefore rejects exactly the schedules the collective algorithms in
:mod:`repro.algorithms` are made of: non-consuming (broadcast-style) sends and
couplers read by many processors in one slot, both of which *duplicate*
packets.  Before this module, those schedules fell back to the slow reference
:class:`~repro.pops.simulator.POPSSimulator`, capping the network sizes every
collective experiment could explore.

:class:`CollectiveSimulator` closes that gap.  Packet state is a
*multi-location* ownership structure: a dense per-packet × per-processor
copy-count matrix ``count[k, p]`` — how many copies of packet ``k`` processor
``p`` currently buffers.  The schedule still lowers once through the shared
front end in :mod:`repro.pops.lowering` (flattening, vectorized static
validation, reception/payload join), and each slot then executes as a handful
of numpy operations:

* a gather ``count[tx_packet, tx_sender] > 0`` for the dynamic send check
  (membership test over the holder sets);
* a scatter-subtract for consuming sends (one copy leaves the sender per
  distinct ``(sender, packet)`` pair, matching the reference's
  de-duplication);
* a scatter-add for deliveries (every live reception lands a copy, so one
  coupler fans out to arbitrarily many receivers in one step).

Copy counts — not mere membership bits — are tracked because the reference
simulator's buffers are multisets: a processor that receives the same packet
twice holds two copies, and parity (identical final buffers) requires
reproducing that.

Error parity follows the same contract as the batched engine: static
violations raise before execution with ``schedule.validate()``'s exact
exception, and the two dynamic errors — a sender not holding its packet, a
strict read of an idle coupler — raise at the same slot, for the same
offender, with the same message as the reference.

The dense count matrix needs ``universe × n`` cells.  For the collective
workloads this engine targets (broadcast trees, reductions, multi-reader
fan-outs) the universe is small and the matrix is tiny, but a degenerate
schedule could make it huge, so :func:`compile_collective_schedule` refuses to
allocate beyond ``max_state_bytes`` with
:class:`~repro.exceptions.UnsupportedScheduleError` — the ``auto`` engine then
falls back to the reference simulator instead of exhausting memory.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError, UnsupportedScheduleError
from repro.pops.engine import ScheduleCache, schedule_cache
from repro.pops.lowering import group_firsts, lower_schedule
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import Coupler, POPSNetwork
from repro.pops.trace import CompiledTrace, SimulationTrace

__all__ = [
    "CollectiveCompiledSchedule",
    "CollectiveSimulator",
    "compile_collective_schedule",
    "DEFAULT_MAX_STATE_BYTES",
]

#: Refuse to allocate a copy-count matrix larger than this (256 MiB).  Dense
#: state is the right trade for collective universes (few packets, many
#: holders); schedules whose universe × n product explodes past this budget
#: fall back to the reference simulator via UnsupportedScheduleError.
DEFAULT_MAX_STATE_BYTES = 256 * 1024 * 1024


@dataclass
class CollectiveCompiledSchedule:
    """A duplicating schedule lowered to flat integer arrays.

    Layout mirrors :class:`~repro.pops.engine.CompiledSchedule` (CSR segments
    per slot over concatenated arrays) with two differences: consumed packets
    carry their sender (a copy leaves *that* processor, not "the" location),
    and the initial state is a copy-count matrix instead of a location array.

    Attributes
    ----------
    network / packets / n_slots:
        The target network, the packet universe the id arrays index into, and
        the slot count.
    tx_sender / tx_packet / tx_ptr:
        Per-slot transmissions, for the dynamic ownership check.
    pay_coupler / pay_packet / pay_ptr:
        Per-slot coupler payloads — the static part of the trace.
    del_receiver / del_packet / del_ptr:
        Per-slot deliveries in reception order (multi-reader couplers yield
        one delivery per reader).
    con_sender / con_packet / con_ptr:
        Per-slot consuming sends, de-duplicated per ``(sender, packet)``.
    idle_receiver / idle_coupler:
        Per slot, the first reception of an idle coupler (``-1`` when none).
    initial_count:
        ``(universe, n)`` int32 matrix of initial copies per processor.
    pk_destination:
        Destination of every universe packet.
    """

    network: POPSNetwork
    packets: list[Packet]
    n_slots: int
    tx_sender: np.ndarray
    tx_packet: np.ndarray
    tx_ptr: np.ndarray
    pay_coupler: np.ndarray
    pay_packet: np.ndarray
    pay_ptr: np.ndarray
    del_receiver: np.ndarray
    del_packet: np.ndarray
    del_ptr: np.ndarray
    con_sender: np.ndarray
    con_packet: np.ndarray
    con_ptr: np.ndarray
    idle_receiver: np.ndarray
    idle_coupler: np.ndarray
    initial_count: np.ndarray
    pk_destination: np.ndarray

    @property
    def n_transmissions(self) -> int:
        """Total transmissions across all slots."""
        return int(self.tx_sender.shape[0])

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the compiled arrays."""
        return sum(
            getattr(self, name).nbytes
            for name in (
                "tx_sender", "tx_packet", "tx_ptr",
                "pay_coupler", "pay_packet", "pay_ptr",
                "del_receiver", "del_packet", "del_ptr",
                "con_sender", "con_packet", "con_ptr",
                "idle_receiver", "idle_coupler",
                "initial_count", "pk_destination",
            )
        )


def compile_collective_schedule(
    network: POPSNetwork,
    schedule: RoutingSchedule,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None = None,
    max_state_bytes: int = DEFAULT_MAX_STATE_BYTES,
) -> CollectiveCompiledSchedule:
    """Lower a (possibly duplicating) schedule to integer arrays.

    Unlike :func:`repro.pops.engine.compile_schedule` this accepts every
    schedule shape the reference simulator accepts — non-consuming sends,
    multi-reader couplers, packets buffered at several processors — because
    the execution state is a copy-count matrix rather than a location array.

    Raises
    ------
    SimulationError
        (or a subclass) exactly as ``schedule.validate()`` would for static
        violations, at compile time rather than slot by slot.
    UnsupportedScheduleError
        If the copy-count matrix would exceed ``max_state_bytes`` — the one
        shape this engine refuses, so dispatchers can fall back.
    """
    lowered = lower_schedule(
        network, schedule, packets, initial_buffers, single_location=False
    )
    u_size = lowered.u_size
    n_slots = lowered.n_slots
    n = network.n

    state_bytes = u_size * n * np.dtype(np.int32).itemsize
    if state_bytes > max_state_bytes:
        raise UnsupportedScheduleError(
            f"copy-count state for {u_size} packets x {n} processors needs "
            f"{state_bytes} bytes (budget {max_state_bytes}); "
            "use the reference simulator"
        )

    # Consuming sends, de-duplicated per (slot, sender, packet): the reference
    # resolves each transmission to the sender's buffered instance and removes
    # it once per slot, however many couplers it was driven through.
    con_idx = np.flatnonzero(lowered.tx_consume)
    key = (
        lowered.tx_slot[con_idx] * n + lowered.tx_sender[con_idx]
    ) * max(u_size, 1) + lowered.tx_packet[con_idx]
    k_order, _, k_new = group_firsts(key)
    con_first = con_idx[np.sort(k_order[k_new])]
    con_sender = lowered.tx_sender[con_first]
    con_packet = lowered.tx_packet[con_first]
    con_counts = np.bincount(lowered.tx_slot[con_first], minlength=n_slots)

    initial_count = np.zeros((u_size, n), dtype=np.int32)
    np.add.at(
        initial_count, (lowered.initial_hold_packet, lowered.initial_hold_proc), 1
    )

    return CollectiveCompiledSchedule(
        network=network,
        packets=lowered.packets,
        n_slots=n_slots,
        tx_sender=lowered.tx_sender,
        tx_packet=lowered.tx_packet,
        tx_ptr=lowered.tx_ptr,
        pay_coupler=lowered.pay_coupler,
        pay_packet=lowered.pay_packet,
        pay_ptr=lowered.pay_ptr,
        del_receiver=lowered.del_receiver,
        del_packet=lowered.del_packet,
        del_ptr=lowered.del_ptr,
        con_sender=con_sender,
        con_packet=con_packet,
        con_ptr=np.concatenate(([0], np.cumsum(con_counts, dtype=np.int64))),
        idle_receiver=lowered.idle_receiver,
        idle_coupler=lowered.idle_coupler,
        initial_count=initial_count,
        pk_destination=lowered.pk_destination,
    )


class CollectiveSimulator:
    """Vectorized multi-location executor, trace-equivalent to the reference.

    Parameters
    ----------
    network:
        The POPS(d, g) network to simulate.
    strict_receptions:
        Same contract as :class:`~repro.pops.simulator.POPSSimulator`: a read
        of an idle coupler raises :class:`SimulationError` when ``True`` and
        silently yields nothing when ``False``.
    max_state_bytes:
        Budget for the copy-count matrix; compilation raises
        :class:`UnsupportedScheduleError` beyond it so dispatchers can fall
        back to the reference simulator.
    """

    def __init__(
        self,
        network: POPSNetwork,
        strict_receptions: bool = True,
        max_state_bytes: int = DEFAULT_MAX_STATE_BYTES,
    ):
        self.network = network
        self.strict_receptions = strict_receptions
        self.max_state_bytes = max_state_bytes

    def compile(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        initial_buffers: dict[int, list[Packet]] | None = None,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ) -> CollectiveCompiledSchedule:
        """Lower ``schedule`` once; the result can be executed repeatedly.

        ``cache_key``/``cache`` follow the contract of
        :meth:`repro.pops.engine.BatchedSimulator.compile`: the caller asserts
        the key fully determines ``(schedule, packets)`` including payloads,
        and runs with explicit ``initial_buffers`` never consult the cache.
        Keys are namespaced under ``"batched-collective"`` inside the shared
        :class:`~repro.pops.engine.ScheduleCache`, so a caller reusing one key
        across engines (as ``Session.route`` does) can never receive the
        other engine's compiled layout.
        """
        if cache_key is None or initial_buffers is not None:
            return compile_collective_schedule(
                self.network, schedule, packets, initial_buffers,
                max_state_bytes=self.max_state_bytes,
            )
        store = cache if cache is not None else schedule_cache()
        namespaced = ("batched-collective", cache_key)
        compiled = store.get(namespaced)
        if compiled is None:
            compiled = compile_collective_schedule(
                self.network, schedule, packets, None,
                max_state_bytes=self.max_state_bytes,
            )
            store.put(namespaced, compiled)
        return compiled

    def execute(self, compiled: CollectiveCompiledSchedule) -> np.ndarray:
        """Run a compiled schedule, returning the final copy-count matrix."""
        count = compiled.initial_count.copy()
        packets = compiled.packets
        tx_ptr, del_ptr, con_ptr = compiled.tx_ptr, compiled.del_ptr, compiled.con_ptr
        strict = self.strict_receptions
        for s in range(compiled.n_slots):
            senders = compiled.tx_sender[tx_ptr[s]:tx_ptr[s + 1]]
            sent = compiled.tx_packet[tx_ptr[s]:tx_ptr[s + 1]]
            held = count[sent, senders] > 0
            if not held.all():
                i = int(np.argmin(held))
                raise SimulationError(
                    f"slot {s}: processor {senders[i]} does not hold "
                    f"{packets[sent[i]]!r}"
                )
            if strict and compiled.idle_receiver[s] >= 0:
                cid = int(compiled.idle_coupler[s])
                coupler = Coupler(cid // self.network.g, cid % self.network.g)
                raise SimulationError(
                    f"slot {s}: processor {compiled.idle_receiver[s]} reads "
                    f"idle {coupler!r}"
                )
            # Within a slot both index sets are duplicate-free ((sender,
            # packet) pairs de-duplicated at compile; receivers read at most
            # one coupler), so plain fancy-indexed updates are exact.
            count[
                compiled.con_packet[con_ptr[s]:con_ptr[s + 1]],
                compiled.con_sender[con_ptr[s]:con_ptr[s + 1]],
            ] -= 1
            count[
                compiled.del_packet[del_ptr[s]:del_ptr[s + 1]],
                compiled.del_receiver[del_ptr[s]:del_ptr[s + 1]],
            ] += 1
        return count

    def verify_full_coverage(
        self,
        compiled: CollectiveCompiledSchedule,
        count: np.ndarray,
        packets: list[Packet] | None = None,
    ) -> None:
        """Vectorized broadcast-delivery check: every processor holds a copy.

        The collective analogue of
        :meth:`repro.pops.engine.BatchedSimulator.verify_locations` — the
        delivery criterion for broadcast-style collectives is "every
        processor buffers at least one copy of every broadcast packet", and
        the copy-count matrix answers that as one reduction instead of a
        Python scan over all buffers.  ``packets`` restricts the check to a
        subset of the universe (default: all of it).

        Raises
        ------
        DeliveryError
            Naming the first packet/processor pair missing a copy.
        """
        from repro.exceptions import DeliveryError

        if packets is None:
            rows = count
            universe = compiled.packets
        else:
            index_of = {p: i for i, p in enumerate(compiled.packets)}
            rows = count[[index_of[p] for p in packets]]
            universe = packets
        missing = rows <= 0
        if bool(missing.any()):
            k, proc = (int(x[0]) for x in np.nonzero(missing))
            raise DeliveryError(
                f"{universe[k]!r} was not delivered to processor {proc}"
            )

    def buffers_from_counts(
        self, compiled: CollectiveCompiledSchedule, count: np.ndarray
    ) -> dict[int, list[Packet]]:
        """Reconstruct ``processor -> packets held`` from a copy-count matrix.

        Within a buffer, packets appear in universe order with their copy
        multiplicity (the reference simulator preserves arrival order instead;
        compare as multisets).
        """
        n = self.network.n
        buffers: dict[int, list[Packet]] = {p: [] for p in range(n)}
        # nonzero over the transpose walks processor-major (packets ascending
        # within each processor), so the buffers come out grouped without a
        # sort; the packet references are materialised in one C-level pass
        # through an object array instead of a Python append per copy.
        held_proc, held_packet = np.nonzero(count.T)
        copies = count[held_packet, held_proc]
        if bool((copies > 1).any()):
            held_packet = np.repeat(held_packet, copies)
            held_proc = np.repeat(held_proc, copies)
        pobj = np.empty(len(compiled.packets), dtype=object)
        pobj[:] = compiled.packets
        refs = pobj[held_packet].tolist()
        bounds = np.searchsorted(held_proc, np.arange(n + 1)).tolist()
        for proc in range(n):
            lo, hi = bounds[proc], bounds[proc + 1]
            if lo < hi:
                buffers[proc] = refs[lo:hi]
        return buffers

    def compiled_trace(self, compiled: CollectiveCompiledSchedule) -> CompiledTrace:
        """The (static) trace of a compiled schedule as a zero-copy array view."""
        return CompiledTrace(
            g=self.network.g,
            packets=compiled.packets,
            pay_coupler=compiled.pay_coupler,
            pay_packet=compiled.pay_packet,
            pay_ptr=compiled.pay_ptr,
            del_receiver=compiled.del_receiver,
            del_packet=compiled.del_packet,
            del_ptr=compiled.del_ptr,
        )

    def run(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        initial_buffers: dict[int, list[Packet]] | None = None,
        collect_trace: bool = True,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ):
        """Compile and execute ``schedule``, packaging a ``SimulationResult``.

        Mirrors :meth:`repro.pops.engine.BatchedSimulator.run`: the result's
        trace is a :class:`~repro.pops.trace.CompiledTrace` (statistics as
        numpy reductions, per-slot dicts only on ``materialize()``), and
        ``cache_key``/``cache`` are forwarded to :meth:`compile`.
        """
        from repro.pops.simulator import SimulationResult

        compiled = self.compile(
            schedule, packets, initial_buffers, cache_key=cache_key, cache=cache
        )
        count = self.execute(compiled)
        trace = (
            self.compiled_trace(compiled) if collect_trace else SimulationTrace()
        )
        return SimulationResult(
            network=self.network,
            buffers=self.buffers_from_counts(compiled, count),
            trace=trace,
        )

    def route_and_verify(
        self,
        schedule: RoutingSchedule,
        packets: list[Packet],
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ):
        """Run ``schedule`` and assert every packet reached its destination."""
        result = self.run(schedule, packets, cache_key=cache_key, cache=cache)
        result.verify_permutation_delivery(packets)
        return result
