"""Rendering and export of routing schedules.

Schedules are easiest to debug (and to compare with the paper's Figure 3
narrative) when laid out slot by slot: which coupler carries which packet, and
who reads it.  This module renders a :class:`~repro.pops.schedule.RoutingSchedule`
as plain text and exports it as plain dictionaries suitable for JSON dumping
or external analysis, without requiring any third-party dependency.
"""

from __future__ import annotations

from typing import Any

from repro.pops.schedule import RoutingSchedule, SlotProgram
from repro.pops.topology import POPSNetwork

__all__ = ["render_schedule", "render_slot", "schedule_to_dict", "coupler_usage_grid"]


def render_slot(network: POPSNetwork, slot: SlotProgram, slot_index: int) -> str:
    """Render one slot: every driven coupler with its sender, packet and readers."""
    readers_by_coupler: dict[Any, list[int]] = {}
    for reception in slot.receptions:
        readers_by_coupler.setdefault(reception.coupler, []).append(reception.receiver)

    lines = [f"slot {slot_index}: {slot.n_packets_moved} packet(s) moved"]
    for transmission in sorted(
        slot.transmissions, key=lambda t: (t.coupler.dest_group, t.coupler.source_group)
    ):
        readers = sorted(readers_by_coupler.get(transmission.coupler, []))
        reader_text = ", ".join(str(r) for r in readers) if readers else "-"
        lines.append(
            f"  {transmission.coupler!r}: processor {transmission.sender} sends "
            f"{transmission.packet!r} -> read by {reader_text}"
        )
    if not slot.transmissions:
        lines.append("  (idle slot)")
    return "\n".join(lines)


def render_schedule(schedule: RoutingSchedule) -> str:
    """Render a whole schedule slot by slot."""
    header = (
        f"schedule on POPS(d={schedule.network.d}, g={schedule.network.g})"
        f" — {schedule.n_slots} slot(s)"
    )
    if schedule.description:
        header += f" [{schedule.description}]"
    parts = [header]
    for index, slot in enumerate(schedule.slots):
        parts.append(render_slot(schedule.network, slot, index))
    return "\n".join(parts)


def schedule_to_dict(schedule: RoutingSchedule) -> dict[str, Any]:
    """Export a schedule as plain dictionaries/lists (JSON-serialisable).

    The structure is stable and documented: ``network`` holds ``d``/``g``,
    ``slots`` is a list of slots, each with ``transmissions`` and
    ``receptions`` lists whose entries use integer processor/group indices
    only (payloads are not exported).
    """
    return {
        "network": {"d": schedule.network.d, "g": schedule.network.g},
        "description": schedule.description,
        "n_slots": schedule.n_slots,
        "slots": [
            {
                "transmissions": [
                    {
                        "sender": t.sender,
                        "coupler": {
                            "dest_group": t.coupler.dest_group,
                            "source_group": t.coupler.source_group,
                        },
                        "packet": {
                            "source": t.packet.source,
                            "destination": t.packet.destination,
                        },
                        "consume": t.consume,
                    }
                    for t in slot.transmissions
                ],
                "receptions": [
                    {
                        "receiver": r.receiver,
                        "coupler": {
                            "dest_group": r.coupler.dest_group,
                            "source_group": r.coupler.source_group,
                        },
                    }
                    for r in slot.receptions
                ],
            }
            for slot in schedule.slots
        ],
    }


def coupler_usage_grid(schedule: RoutingSchedule) -> str:
    """Render a g x g grid per slot marking which couplers are busy.

    Rows are destination groups, columns are source groups; ``#`` marks a busy
    coupler and ``.`` an idle one.  Useful to eyeball utilisation (Theorem 2's
    first slot on a square network fills the whole grid).
    """
    network = schedule.network
    blocks: list[str] = []
    for index, slot in enumerate(schedule.slots):
        busy = {(c.dest_group, c.source_group) for c in slot.couplers_used()}
        lines = [f"slot {index} ({len(busy)}/{network.n_couplers} couplers busy)"]
        for dest in range(network.g):
            row = "".join(
                "#" if (dest, src) in busy else "." for src in range(network.g)
            )
            lines.append(f"  {row}")
        blocks.append("\n".join(lines))
    return "\n".join(blocks)
