"""Shared schedule-lowering helpers for the compiled simulation engines.

Both compiled engines — the consuming-model :class:`~repro.pops.engine.
BatchedSimulator` and the duplicating-model :class:`~repro.pops.
collective_engine.CollectiveSimulator` — start from the same observation: the
*dataflow* of a POPS schedule is static.  Which coupler carries which packet,
which reception resolves to which delivery, and which sends are legal wiring
are all functions of the schedule alone.  This module owns that shared front
end:

* :func:`lower_schedule` flattens a :class:`~repro.pops.schedule.
  RoutingSchedule` into CSR-style integer arrays (one segment per slot),
  performs every static check vectorized (wiring, coupler conflicts, receiver
  conflicts — reproducing ``schedule.validate()``'s exact exception on the
  slow path), and joins receptions against coupler payloads to produce the
  per-slot delivery and idle-read arrays.
* :func:`classify_schedule` is the cheap shape probe behind the ``auto``
  engine: it reports whether a schedule stays in the consuming
  one-location-per-packet model or duplicates packets (non-consuming sends,
  multi-reader couplers).

What the engines layer on top differs: the batched engine collapses the
holder state to a flat ``loc[packet]`` array (and therefore rejects
duplication), while the collective engine keeps a per-packet/per-processor
copy-count matrix.  Everything up to that choice lives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from operator import attrgetter

import numpy as np

from repro.exceptions import SimulationError, UnsupportedScheduleError
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork

__all__ = [
    "LoweredSchedule",
    "lower_schedule",
    "classify_schedule",
    "group_firsts",
    "assemble_compiled_plan",
    "assemble_compiled_plan_batch",
]


@dataclass
class LoweredSchedule:
    """A schedule flattened to integer arrays with its static dataflow solved.

    All arrays are concatenated over slots; ``*_ptr`` arrays hold the slot
    boundaries (``xs[ptr[s]:ptr[s + 1]]`` is slot ``s``'s segment).  Packet
    entries index into ``packets``; coupler ids encode
    ``Coupler(cid // g, cid % g)``.

    Attributes
    ----------
    network / packets / n_slots:
        The target network, the packet universe (initial packets plus any
        transmitted packet unknown to it, registered with no holder so the
        dynamic ownership check fails with the reference error), and the slot
        count.
    tx_sender / tx_packet / tx_consume / tx_slot / tx_ptr:
        Per-slot transmissions in schedule order, for the dynamic ownership
        check and the engines' consumed-packet derivations.
    pay_coupler / pay_packet / pay_ptr:
        Per-slot coupler payloads (first transmission per driven coupler, in
        schedule order) — the static part of the trace.
    del_receiver / del_packet / del_slot / del_ptr:
        Per-slot deliveries (receptions joined with payloads, idle reads
        dropped) in reception order.
    idle_receiver / idle_coupler:
        Per slot, the first reception of an idle coupler (``-1`` when none);
        strict runs abort there.
    initial_hold_packet / initial_hold_proc:
        Initial placement as parallel ``(packet index, processor)`` arrays,
        one entry per buffered copy.  Engines fold these into their own state
        representation (flat location array or copy-count matrix).
    pk_destination:
        Destination of every universe packet, for vectorized delivery checks.
    """

    network: POPSNetwork
    packets: list[Packet]
    n_slots: int
    tx_sender: np.ndarray
    tx_packet: np.ndarray
    tx_consume: np.ndarray
    tx_slot: np.ndarray
    tx_ptr: np.ndarray
    pay_coupler: np.ndarray
    pay_packet: np.ndarray
    pay_ptr: np.ndarray
    del_receiver: np.ndarray
    del_packet: np.ndarray
    del_slot: np.ndarray
    del_ptr: np.ndarray
    idle_receiver: np.ndarray
    idle_coupler: np.ndarray
    initial_hold_packet: np.ndarray
    initial_hold_proc: np.ndarray
    pk_destination: np.ndarray

    @property
    def u_size(self) -> int:
        """Size of the packet universe."""
        return len(self.packets)


def classify_schedule(schedule: RoutingSchedule) -> str:
    """Cheap shape probe: ``"consuming"`` or ``"duplicating"``.

    A schedule is *duplicating* when it contains a non-consuming
    (broadcast-style) transmission or reads one coupler with several
    processors in the same slot — the shapes the flat-location batched engine
    cannot express.  The probe is one pass over the schedule objects and
    intentionally over-approximates "consuming": the rare consuming schedule
    that still duplicates a packet (one sender driving several couplers with
    the same packet, each read once) is only detected by the batched
    compiler's exact check, so ``auto`` dispatch treats the probe as a hint
    and falls through on :class:`~repro.exceptions.UnsupportedScheduleError`.
    """
    for slot in schedule.slots:
        for transmission in slot.transmissions:
            if not transmission.consume:
                return "duplicating"
        seen = set()
        for reception in slot.receptions:
            if reception.coupler in seen:
                return "duplicating"
            seen.add(reception.coupler)
    return "consuming"


def _int_fields(objs: list, attr: str, count: int) -> np.ndarray:
    """Extract an int attribute (dotted paths allowed) from every object.

    ``map(attrgetter(...))`` + ``np.fromiter`` keeps the whole extraction in
    C; on large schedules this flattening is the engine's dominant fixed
    cost, so it matters that no per-object Python bytecode runs here.
    """
    return np.fromiter(map(attrgetter(attr), objs), dtype=np.int64, count=count)


def group_firsts(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable group-by on integer keys.

    Returns ``(order, same, new_group)`` where ``order`` sorts ``keys``
    stably, ``same[i]`` marks ``keys[order][i + 1] == keys[order][i]``, and
    ``new_group`` flags the first (earliest, thanks to stability) element of
    each key group within the sorted view.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    same = sorted_keys[1:] == sorted_keys[:-1]
    new_group = np.empty(keys.size, dtype=bool)
    if keys.size:
        new_group[0] = True
        new_group[1:] = ~same
    return order, same, new_group


def assemble_compiled_plan(
    network: POPSNetwork,
    packets: list[Packet],
    tx_sender: np.ndarray,
    tx_packet: np.ndarray,
    tx_coupler: np.ndarray,
    tx_counts: list[int],
    del_receiver: np.ndarray,
    del_packet: np.ndarray,
    del_counts: list[int],
    initial_loc: np.ndarray,
    pk_destination: np.ndarray,
):
    """Ingest a pre-compiled *conflict-free* routing plan as a
    :class:`~repro.pops.engine.CompiledSchedule`.

    The array-native router front end builds its per-slot transmission and
    delivery arrays directly from the permutation; for such plans the full
    lowering join is redundant structure-recovery: every driven coupler
    carries exactly one consuming transmission (payloads *are* the
    transmissions), every sent packet leaves its sender (consumed *are* the
    sent packets), and every reception reads a driven coupler (no idle
    reads).  This helper packages those arrays in the exact layout
    :func:`lower_schedule` + :func:`repro.pops.engine.compile_schedule`
    produce, so a plan compiled here is bit-identical to lowering the
    equivalent object schedule.

    ``tx_counts`` / ``del_counts`` give the per-slot segment lengths of the
    concatenated arrays.
    """
    from repro.pops.engine import CompiledSchedule

    n_slots = len(tx_counts)
    tx_ptr = np.concatenate(
        ([0], np.cumsum(np.asarray(tx_counts, dtype=np.int64)))
    )
    del_ptr = np.concatenate(
        ([0], np.cumsum(np.asarray(del_counts, dtype=np.int64)))
    )
    no_idle = np.full(n_slots, -1, dtype=np.int64)
    return CompiledSchedule(
        network=network,
        packets=packets,
        n_slots=n_slots,
        tx_sender=tx_sender,
        tx_packet=tx_packet,
        tx_ptr=tx_ptr,
        pay_coupler=tx_coupler,
        pay_packet=tx_packet,
        pay_ptr=tx_ptr,
        del_receiver=del_receiver,
        del_packet=del_packet,
        del_ptr=del_ptr,
        con_packet=tx_packet,
        con_ptr=tx_ptr,
        idle_receiver=no_idle,
        idle_coupler=no_idle.copy(),
        initial_loc=initial_loc,
        pk_destination=pk_destination,
    )


def _batch_plane(values: np.ndarray, n_batch: int, length: int) -> np.ndarray:
    """Normalise a plan array to a ``(B, L)`` int64 plane.

    Accepts a shared ``(L,)`` array (broadcast, zero-copy) or a per-batch
    ``(B, L)`` plane; either way the engine reads it row-wise.
    """
    values = np.asarray(values, dtype=np.int64)
    return np.broadcast_to(values, (n_batch, length))


def assemble_compiled_plan_batch(
    network: POPSNetwork,
    n_batch: int,
    tx_sender: np.ndarray,
    tx_packet: np.ndarray,
    tx_coupler: np.ndarray,
    tx_counts: list[int],
    del_receiver: np.ndarray,
    del_packet: np.ndarray,
    del_counts: list[int],
    initial_loc: np.ndarray,
    pk_destination: np.ndarray,
):
    """Batched :func:`assemble_compiled_plan`: one
    :class:`~repro.pops.engine.CompiledScheduleBatch` for ``B`` conflict-free
    plans sharing their CSR slot structure.

    The key invariant of Theorem 2 plans makes this exact, not approximate:
    for fixed ``(d, g)`` the slot segmentation (``tx_counts`` /
    ``del_counts`` and hence every ``*_ptr`` array) is identical across
    permutations — only the per-slot *contents* differ.  Each plan array may
    therefore be passed as a shared ``(L,)`` array (broadcast across the
    batch) or a per-batch ``(B, L)`` plane; ``element(b)`` of the result is
    bit-identical to :func:`assemble_compiled_plan` on row ``b``.
    """
    from repro.pops.engine import CompiledScheduleBatch

    n_slots = len(tx_counts)
    tx_ptr = np.concatenate(
        ([0], np.cumsum(np.asarray(tx_counts, dtype=np.int64)))
    )
    del_ptr = np.concatenate(
        ([0], np.cumsum(np.asarray(del_counts, dtype=np.int64)))
    )
    no_idle = np.full(n_slots, -1, dtype=np.int64)
    n_tx = int(tx_ptr[-1])
    n_del = int(del_ptr[-1])
    universe = int(np.asarray(pk_destination).shape[-1])
    tx_sender = _batch_plane(tx_sender, n_batch, n_tx)
    tx_packet = _batch_plane(tx_packet, n_batch, n_tx)
    tx_coupler = _batch_plane(tx_coupler, n_batch, n_tx)
    return CompiledScheduleBatch(
        network=network,
        n_batch=n_batch,
        n_slots=n_slots,
        tx_sender=tx_sender,
        tx_packet=tx_packet,
        tx_ptr=tx_ptr,
        pay_coupler=tx_coupler,
        pay_packet=tx_packet,
        pay_ptr=tx_ptr,
        del_receiver=_batch_plane(del_receiver, n_batch, n_del),
        del_packet=_batch_plane(del_packet, n_batch, n_del),
        del_ptr=del_ptr,
        con_packet=tx_packet,
        con_ptr=tx_ptr,
        idle_receiver=no_idle,
        idle_coupler=no_idle.copy(),
        initial_loc=_batch_plane(initial_loc, n_batch, universe),
        pk_destination=_batch_plane(pk_destination, n_batch, universe),
    )


def _same_payload(existing: Packet, packet: Packet) -> bool:
    """True iff two value-equal packets indisputably carry the same payload.

    ``Packet`` equality excludes payloads, so collapsing value-equal copies
    into one universe entry is only sound when their payloads agree — the
    engine delivers the universe instance, and a collapsed distinct payload
    would silently vanish.  Payloads are arbitrary objects (possibly
    unhashable, possibly with array-valued ``==``), so anything that is not
    provably equal counts as different and the caller falls back.
    """
    if existing.payload is packet.payload:
        return True
    try:
        return bool(existing.payload == packet.payload)
    except Exception:
        return False


def _packet_universe(
    network: POPSNetwork,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None,
    single_location: bool,
) -> tuple[list[Packet], np.ndarray, np.ndarray]:
    """The indexable packet list and the initial ``(packet, processor)`` pairs.

    With ``single_location`` (the batched engine's model) a packet value may
    be buffered at most once; violating that raises
    :class:`UnsupportedScheduleError` so the caller can fall back.  Without it
    (the collective engine) duplicate copies — several processors holding the
    same packet, or one processor holding it several times — produce several
    pairs, provided the copies carry the same payload: copies of one value
    with *different* payloads cannot share a universe entry, so they raise
    :class:`UnsupportedScheduleError` and the schedule runs on the reference
    simulator, which tracks every buffered instance individually.
    """
    if initial_buffers is not None:
        universe: list[Packet] = []
        index_of: dict[Packet, int] = {}
        hold_packet: list[int] = []
        hold_proc: list[int] = []
        for processor in sorted(initial_buffers):
            for packet in initial_buffers[processor]:
                idx = index_of.get(packet)
                if idx is None:
                    idx = len(universe)
                    index_of[packet] = idx
                    universe.append(packet)
                elif single_location:
                    raise UnsupportedScheduleError(
                        f"{packet!r} appears in more than one initial buffer; "
                        "the batched engine tracks a single location per packet"
                    )
                elif not _same_payload(universe[idx], packet):
                    raise UnsupportedScheduleError(
                        f"value-equal copies of {packet!r} carry different "
                        "payloads; use the reference simulator"
                    )
                hold_packet.append(idx)
                hold_proc.append(processor)
        return (
            universe,
            np.array(hold_packet, dtype=np.int64),
            np.array(hold_proc, dtype=np.int64),
        )

    sources = _int_fields(packets, "source", len(packets))
    bad = np.flatnonzero((sources < 0) | (sources >= network.n))
    if bad.size:
        raise SimulationError(
            f"{packets[int(bad[0])]!r} has source outside the network of size "
            f"{network.n}"
        )
    if single_location:
        # The batched engine keeps value-equal duplicates as distinct universe
        # entries (its location array has one row per instance).
        return (
            list(packets),
            np.arange(len(packets), dtype=np.int64),
            sources,
        )
    universe = []
    index_of = {}
    hold_packet = []
    for packet in packets:
        idx = index_of.get(packet)
        if idx is None:
            idx = len(universe)
            index_of[packet] = idx
            universe.append(packet)
        elif not _same_payload(universe[idx], packet):
            raise UnsupportedScheduleError(
                f"value-equal copies of {packet!r} carry different "
                "payloads; use the reference simulator"
            )
        hold_packet.append(idx)
    return universe, np.array(hold_packet, dtype=np.int64), sources


def _resolve_packet_indices(
    network: POPSNetwork,
    universe: list[Packet],
    pk_destination: np.ndarray,
    schedule_packets: list[Packet],
) -> tuple[np.ndarray, list[Packet], np.ndarray, np.ndarray]:
    """Map every transmitted packet to its universe index by value.

    The fast path indexes the universe by packet *source* — valid whenever
    sources are unique, which covers every permutation-routing workload — and
    never hashes a ``Packet``.  Duplicated sources, or schedule packets absent
    from the universe, fall back to a dict keyed by packet value; unknown
    packets are registered with no holder so the dynamic ownership check
    fails at the right slot with the reference error message.

    Returns the index array plus the (possibly extended) universe, the count
    of appended packets, and the extended destination array.
    """
    n_tx = len(schedule_packets)
    u_size = len(universe)
    pk_source = _int_fields(universe, "source", u_size)
    sources_unique = bool(((pk_source >= 0) & (pk_source < network.n)).all())
    if sources_unique:
        src_to_idx = np.full(network.n, -1, dtype=np.int64)
        src_to_idx[pk_source] = np.arange(u_size, dtype=np.int64)
        # Scatter-then-gather equals arange iff no source was written twice.
        sources_unique = bool(
            (src_to_idx[pk_source] == np.arange(u_size, dtype=np.int64)).all()
        )
    if sources_unique and n_tx and u_size:
        t_src = _int_fields(schedule_packets, "source", n_tx)
        t_dst = _int_fields(schedule_packets, "destination", n_tx)
        in_range = (t_src >= 0) & (t_src < network.n)
        idx = np.where(in_range, src_to_idx[np.clip(t_src, 0, network.n - 1)], -1)
        known = (idx >= 0) & (pk_destination[np.maximum(idx, 0)] == t_dst)
        if known.all():
            return idx, universe, 0, pk_destination
    else:
        known = np.zeros(n_tx, dtype=bool)
        idx = np.full(n_tx, -1, dtype=np.int64)

    # Slow path: hash-based resolution (duplicate sources / unknown packets).
    index_of: dict[Packet, int] = {}
    for i, packet in enumerate(universe):
        index_of.setdefault(packet, i)
    for i in np.flatnonzero(~known):
        packet = schedule_packets[i]
        j = index_of.get(packet)
        if j is None:
            j = len(universe)
            index_of[packet] = j
            universe.append(packet)
        idx[i] = j
    n_extra = len(universe) - u_size
    if n_extra:
        pk_destination = np.concatenate(
            (
                pk_destination,
                np.array(
                    [p.destination for p in universe[u_size:]], dtype=np.int64
                ),
            )
        )
    return idx, universe, n_extra, pk_destination


def lower_schedule(
    network: POPSNetwork,
    schedule: RoutingSchedule,
    packets: list[Packet],
    initial_buffers: dict[int, list[Packet]] | None = None,
    *,
    single_location: bool = True,
) -> LoweredSchedule:
    """Flatten ``schedule``, validate it statically, and solve its dataflow.

    ``single_location`` selects the batched engine's one-location-per-packet
    universe (duplicate initial placement raises
    :class:`UnsupportedScheduleError`); the collective engine passes ``False``
    and receives one initial-holder pair per buffered copy instead.

    Raises
    ------
    SimulationError
        (or a subclass) exactly as ``schedule.validate()`` would for static
        violations, at compile time rather than slot by slot.
    """
    if schedule.network != network:
        raise SimulationError(
            f"schedule targets {schedule.network!r}, simulator holds {network!r}"
        )
    g = network.g
    g2 = g * g
    universe, hold_packet, hold_proc = _packet_universe(
        network, packets, initial_buffers, single_location
    )
    pk_destination = _int_fields(universe, "destination", len(universe))

    # -- flatten to integer arrays (C-level attrgetter/fromiter extraction) ----
    all_tx = list(chain.from_iterable(slot.transmissions for slot in schedule.slots))
    all_rx = list(chain.from_iterable(slot.receptions for slot in schedule.slots))
    tx_counts = [len(slot.transmissions) for slot in schedule.slots]
    rx_counts = [len(slot.receptions) for slot in schedule.slots]
    tx_packet, universe, _, pk_destination = _resolve_packet_indices(
        network, universe, pk_destination, list(map(attrgetter("packet"), all_tx))
    )

    n_tx, n_rx = len(all_tx), len(all_rx)
    n_slots = len(schedule.slots)
    tx_sender = _int_fields(all_tx, "sender", n_tx)
    tx_consume = np.fromiter(
        map(attrgetter("consume"), all_tx), dtype=bool, count=n_tx
    )
    tx_dest = _int_fields(all_tx, "coupler.dest_group", n_tx)
    tx_src = _int_fields(all_tx, "coupler.source_group", n_tx)
    tx_ptr = np.concatenate(([0], np.cumsum(tx_counts, dtype=np.int64)))
    rx_receiver = _int_fields(all_rx, "receiver", n_rx)
    rx_dest = _int_fields(all_rx, "coupler.dest_group", n_rx)
    rx_src = _int_fields(all_rx, "coupler.source_group", n_rx)
    tx_slot = np.repeat(np.arange(n_slots, dtype=np.int64), tx_counts)
    rx_slot = np.repeat(np.arange(n_slots, dtype=np.int64), rx_counts)

    tx_coupler = tx_dest * g + tx_src
    rx_coupler = rx_dest * g + rx_src

    # One shared stable group-by over (slot, coupler): it powers both the
    # coupler-conflict checks and the payload dedup below.
    tx_key = tx_slot * g2 + tx_coupler
    c_order, c_same, c_new = group_firsts(tx_key)

    # -- static validation (vectorized; slow path reproduces the exact error) --
    n, d = network.n, network.d
    static_bad = False
    if n_tx:
        static_bad = (
            bool(((tx_sender < 0) | (tx_sender >= n)).any())
            or bool(
                ((tx_dest < 0) | (tx_dest >= g) | (tx_src < 0) | (tx_src >= g)).any()
            )
            or bool((tx_sender // d != tx_src).any())
            # Same coupler driven twice in a slot: sender and packet must agree.
            or bool((c_same & (tx_sender[c_order][1:] != tx_sender[c_order][:-1])).any())
            or bool((c_same & (tx_packet[c_order][1:] != tx_packet[c_order][:-1])).any())
        )
        if not static_bad:
            # One packet per sender per slot (broadcasting one packet through
            # several transmitters is legal, two different packets is not).
            s_order, s_same, _ = group_firsts(tx_slot * n + tx_sender)
            static_bad = bool(
                (s_same & (tx_packet[s_order][1:] != tx_packet[s_order][:-1])).any()
            )
    if not static_bad and n_rx:
        receiver_key = np.sort(rx_slot * n + rx_receiver)
        static_bad = (
            bool(((rx_receiver < 0) | (rx_receiver >= n)).any())
            or bool(
                ((rx_dest < 0) | (rx_dest >= g) | (rx_src < 0) | (rx_src >= g)).any()
            )
            or bool((rx_receiver // d != rx_dest).any())
            or bool((receiver_key[1:] == receiver_key[:-1]).any())
        )
    if static_bad:
        schedule.validate()  # raises the same exception the reference would
        raise SimulationError(
            "compiled lowering rejected the schedule but schedule.validate() "
            "accepted it; please report this divergence"
        )

    # -- static dataflow, fully vectorized across slots ------------------------
    # Payloads: first transmission per (slot, coupler), in schedule order.
    first_by_key = c_order[c_new]
    uniq_key = tx_key[c_order][c_new]
    first = np.sort(first_by_key)
    pay_coupler = tx_coupler[first]
    pay_packet = tx_packet[first]
    pay_counts = np.bincount(tx_slot[first], minlength=n_slots)

    # Deliveries: join receptions against payloads on the (slot, coupler) key.
    rx_key = rx_slot * g2 + rx_coupler
    pos = np.searchsorted(uniq_key, rx_key)
    live = np.zeros(n_rx, dtype=bool)
    in_bounds = pos < uniq_key.size
    live[in_bounds] = uniq_key[pos[in_bounds]] == rx_key[in_bounds]
    live_idx = np.flatnonzero(live)
    del_receiver = rx_receiver[live_idx]
    del_packet = tx_packet[first_by_key][pos[live_idx]]
    del_slot = rx_slot[live_idx]
    del_counts = np.bincount(del_slot, minlength=n_slots)

    # Idle reads: first reception of an undriven coupler per slot.
    idle_receiver = np.full(n_slots, -1, dtype=np.int64)
    idle_coupler = np.full(n_slots, -1, dtype=np.int64)
    idle_idx = np.flatnonzero(~live)
    if idle_idx.size:
        idle_slots, idle_first = np.unique(rx_slot[idle_idx], return_index=True)
        idle_receiver[idle_slots] = rx_receiver[idle_idx[idle_first]]
        idle_coupler[idle_slots] = rx_coupler[idle_idx[idle_first]]

    return LoweredSchedule(
        network=network,
        packets=universe,
        n_slots=n_slots,
        tx_sender=tx_sender,
        tx_packet=tx_packet,
        tx_consume=tx_consume,
        tx_slot=tx_slot,
        tx_ptr=tx_ptr,
        pay_coupler=pay_coupler,
        pay_packet=pay_packet,
        pay_ptr=np.concatenate(([0], np.cumsum(pay_counts, dtype=np.int64))),
        del_receiver=del_receiver,
        del_packet=del_packet,
        del_slot=del_slot,
        del_ptr=np.concatenate(([0], np.cumsum(del_counts, dtype=np.int64))),
        idle_receiver=idle_receiver,
        idle_coupler=idle_coupler,
        initial_hold_packet=hold_packet,
        initial_hold_proc=hold_proc,
        pk_destination=pk_destination,
    )
