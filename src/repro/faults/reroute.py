"""Online rerouting of residual traffic over surviving couplers.

When fault-aware execution trips (:class:`~repro.exceptions.CouplerFailedError`),
the error carries the residual packet state — every undelivered packet and the
processor currently holding it.  That residual is an h-relation-shaped traffic
pattern (each processor holds at most a few packets, each destination expects
at most one), and this module re-solves it *online* over the surviving
couplers:

* a packet whose direct coupler ``c(dest_group, holder_group)`` survives is
  delivered in one hop;
* a packet whose direct coupler failed takes a two-hop detour through an
  intermediate group ``m`` with ``c(m, a)`` and ``c(b, m)`` both alive;
* moves are packed greedily into slots under the POPS per-slot rules (one
  packet per coupler, one send and one read per processor).

The resulting :class:`~repro.pops.schedule.RoutingSchedule` is built against
the :class:`~repro.faults.spec.DegradedNetwork` view, so static validation
proves no failed hardware is touched, and the reference simulator then
verifies every residual packet reaches its destination.
:func:`route_with_recovery` packages the whole story — clean route, injected
execution, recovery, verification — into one :class:`FaultRecoveryReport`
comparing total slots against the clean ``2⌈d/g⌉`` bound.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.exceptions import CouplerFailedError, RoutingError
from repro.obs import get_tracer
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import Coupler, POPSNetwork
from repro.faults.spec import FaultSpec

__all__ = [
    "ReroutePlan",
    "FaultRecoveryReport",
    "route_on_survivors",
    "reroute_residual",
    "full_reroute",
    "route_with_recovery",
]


def route_on_survivors(
    network: POPSNetwork,
    packets: Sequence[Packet],
    *,
    description: str = "greedy reroute over surviving couplers",
) -> RoutingSchedule:
    """Greedily schedule ``packets`` (source → destination) on ``network``.

    ``network`` is typically a :class:`~repro.faults.spec.DegradedNetwork`;
    the clean network works too (every coupler alive).  Each packet moves
    directly when its coupler survives, else through one intermediate group
    whose two legs both survive.  Slots are packed first-come-first-served
    under the POPS rules.  Raises :class:`RoutingError` when the faults
    disconnect some required group pair (no surviving path can make
    progress), or when a packet sits on / is destined for a failed
    processor.
    """
    pending: list[list[Any]] = []
    for pk in packets:
        if network.processor_failed(pk.source):
            raise RoutingError(
                f"{pk!r} is held by failed processor {pk.source}; "
                "its data is lost and cannot be rerouted"
            )
        if network.processor_failed(pk.destination):
            raise RoutingError(
                f"{pk!r} is destined for failed processor {pk.destination}"
            )
        if pk.source != pk.destination:
            pending.append([pk, pk.source])

    schedule = RoutingSchedule(network=network, description=description)
    g = network.g
    max_slots = 2 * len(pending) + 2
    while pending:
        if schedule.n_slots >= max_slots:  # pragma: no cover - safety net
            raise RoutingError(
                f"reroute made no net progress after {schedule.n_slots} slots; "
                f"{len(pending)} packets still pending"
            )
        used: set[Coupler] = set()
        senders: set[int] = set()
        receivers: set[int] = set()
        moves: list[tuple[list[Any], Coupler, int]] = []
        for entry in pending:
            pk, cur = entry
            if cur in senders:
                continue
            a = network.group_of(cur)
            b = network.group_of(pk.destination)
            direct = Coupler(b, a)
            if not network.coupler_failed(direct):
                if direct in used or pk.destination in receivers:
                    continue  # contended this slot; try again next slot
                moves.append((entry, direct, pk.destination))
                used.add(direct)
                senders.add(cur)
                receivers.add(pk.destination)
                continue
            # Direct coupler failed: two-hop detour through a healthy group.
            for m in range(g):
                first = Coupler(m, a)
                second = Coupler(b, m)
                if network.coupler_failed(first) or network.coupler_failed(second):
                    continue
                if first in used:
                    continue
                via = next(
                    (
                        p
                        for p in network.processors_in_group(m)
                        if p not in receivers and not network.processor_failed(p)
                    ),
                    None,
                )
                if via is None:
                    continue
                moves.append((entry, first, via))
                used.add(first)
                senders.add(cur)
                receivers.add(via)
                break
        if not moves:
            raise RoutingError(
                "fault spec leaves residual traffic unroutable: no surviving "
                f"path makes progress for {len(pending)} pending packets"
            )
        slot = schedule.new_slot()
        for entry, coupler, receiver in moves:
            pk, cur = entry
            slot.add_transmission(cur, coupler, pk)
            slot.add_reception(receiver, coupler)
            entry[1] = receiver
        pending = [entry for entry in pending if entry[1] != entry[0].destination]
    return schedule


@dataclass(frozen=True)
class ReroutePlan:
    """A verified-shape reroute: residual moves and their survivor schedule.

    ``network`` is the degraded view the schedule validates against;
    ``packets`` are the residual moves (``source`` = holder at fault time,
    ``destination`` = the original destination); ``clean_bound`` is the
    clean network's Theorem 2 slot guarantee, the yardstick
    :attr:`overhead_ratio` divides by.
    """

    network: POPSNetwork
    packets: tuple[Packet, ...]
    schedule: RoutingSchedule
    clean_bound: int

    @property
    def n_slots(self) -> int:
        """Slots the reroute schedule occupies."""
        return self.schedule.n_slots

    @property
    def overhead_ratio(self) -> float:
        """Reroute slots over the clean Theorem 2 bound."""
        return self.n_slots / self.clean_bound


def reroute_residual(
    degraded: POPSNetwork,
    residual: Mapping[Packet, int],
    *,
    description: str = "online reroute of residual traffic",
) -> ReroutePlan:
    """Re-solve ``residual`` (``{packet: current holder}``) on ``degraded``.

    Emits a ``route.reroute`` span covering the solve.  The returned plan's
    schedule is statically validated against the degraded view (so it
    provably avoids failed hardware); executing it with the reference
    simulator and verifying delivery is the caller's half of the contract
    (:func:`route_with_recovery` does both).
    """
    from repro.routing.permutation_router import theorem2_slot_bound

    moves = tuple(
        Packet(holder, pk.destination)
        for pk, holder in residual.items()
        if holder != pk.destination
    )
    clean_bound = theorem2_slot_bound(degraded.d, degraded.g)
    with get_tracer().span(
        "route.reroute", d=degraded.d, g=degraded.g, residual=len(moves)
    ):
        schedule = route_on_survivors(degraded, moves, description=description)
        schedule.validate()
    return ReroutePlan(
        network=degraded,
        packets=moves,
        schedule=schedule,
        clean_bound=clean_bound,
    )


def full_reroute(
    network: POPSNetwork, pi: Sequence[int], spec: FaultSpec
) -> ReroutePlan:
    """Re-route the *whole* permutation from scratch on the degraded view.

    The control arm for E11: discard all partial progress and solve every
    packet from its original source over the surviving couplers.  Online
    recovery (:func:`reroute_residual` from the fault's residual state)
    should never cost more slots than this.
    """
    degraded = network.degrade(spec) if network.fault_spec is None else network
    packets = {
        Packet(i, int(pi[i])): i for i in range(network.n) if int(pi[i]) != i
    }
    return reroute_residual(
        degraded, packets, description="full re-route from original sources"
    )


@dataclass(frozen=True)
class FaultRecoveryReport:
    """End-to-end account of one fault-aware routing with online recovery."""

    d: int
    g: int
    n: int
    onset_slot: int
    fault_triggered: bool
    failed_couplers: int
    failed_processors: int
    clean_slots: int
    theorem2_bound: int
    executed_slots: int
    residual_packets: int
    reroute_slots: int
    total_slots: int
    packets_moved: int
    delivered: bool

    @property
    def overhead_ratio(self) -> float:
        """Total slots over the clean Theorem 2 bound (1.0 = no degradation)."""
        return self.total_slots / self.theorem2_bound

    def to_dict(self) -> dict:
        """JSON-ready representation (all fields plus the derived ratio)."""
        return {
            "d": self.d,
            "g": self.g,
            "n": self.n,
            "onset_slot": self.onset_slot,
            "fault_triggered": self.fault_triggered,
            "failed_couplers": self.failed_couplers,
            "failed_processors": self.failed_processors,
            "clean_slots": self.clean_slots,
            "theorem2_bound": self.theorem2_bound,
            "executed_slots": self.executed_slots,
            "residual_packets": self.residual_packets,
            "reroute_slots": self.reroute_slots,
            "total_slots": self.total_slots,
            "packets_moved": self.packets_moved,
            "delivered": self.delivered,
            "overhead_ratio": self.overhead_ratio,
        }


def route_with_recovery(
    network: POPSNetwork,
    pi: Sequence[int],
    spec: FaultSpec,
    *,
    router_backend: str = "konig",
) -> FaultRecoveryReport:
    """Route ``pi`` clean, execute under ``spec``, recover online, verify.

    The full fault-tolerance pipeline: the universal router plans the clean
    Theorem 2 schedule; the batched engine executes it with fault injection
    (a ``fault.inject`` span covers the injected execution); if a failed
    coupler is driven inside the fault window, the residual traffic is
    re-solved over the surviving couplers (``route.reroute`` span) and the
    reference simulator re-executes and verifies delivery on the degraded
    topology.  The report compares total slots (executed before the fault +
    reroute) against the clean ``2⌈d/g⌉`` bound.
    """
    from repro.pops.engine import BatchedSimulator
    from repro.pops.simulator import POPSSimulator
    from repro.routing.permutation_router import (
        PermutationRouter,
        theorem2_slot_bound,
    )

    spec.validate_for(network)
    tracer = get_tracer()
    router = PermutationRouter(network, backend=router_backend)
    plan = router.route(pi)
    engine = BatchedSimulator(network)
    compiled = engine.compile(plan.schedule, plan.packets)
    bound = theorem2_slot_bound(network.d, network.g)
    fault: CouplerFailedError | None = None
    with tracer.span(
        "fault.inject",
        d=network.d,
        g=network.g,
        onset=spec.onset_slot,
        failed_couplers=len(spec.failed_coupler_pairs(network.g)),
    ):
        try:
            locations = engine.execute(compiled, faults=spec)
        except CouplerFailedError as exc:
            fault = exc
    if fault is None:
        engine.verify_locations(compiled, locations)
        moved = int(compiled.pay_ptr[-1])
        return FaultRecoveryReport(
            d=network.d,
            g=network.g,
            n=network.n,
            onset_slot=spec.onset_slot,
            fault_triggered=False,
            failed_couplers=len(spec.failed_coupler_pairs(network.g)),
            failed_processors=len(spec.failed_processor_set(network)),
            clean_slots=compiled.n_slots,
            theorem2_bound=bound,
            executed_slots=compiled.n_slots,
            residual_packets=0,
            reroute_slots=0,
            total_slots=compiled.n_slots,
            packets_moved=moved,
            delivered=True,
        )

    degraded = network.degrade(spec)
    reroute = reroute_residual(degraded, fault.residual)
    simulator = POPSSimulator(degraded, backend="reference")
    result = simulator.run_reference(reroute.schedule, list(reroute.packets))
    result.verify_permutation_delivery(list(reroute.packets))
    moved = int(compiled.pay_ptr[fault.slot]) + sum(
        len(slot.transmissions) for slot in reroute.schedule.slots
    )
    return FaultRecoveryReport(
        d=network.d,
        g=network.g,
        n=network.n,
        onset_slot=spec.onset_slot,
        fault_triggered=True,
        failed_couplers=len(spec.failed_coupler_pairs(network.g)),
        failed_processors=len(spec.failed_processor_set(network)),
        clean_slots=compiled.n_slots,
        theorem2_bound=bound,
        executed_slots=int(fault.slot),
        residual_packets=len(reroute.packets),
        reroute_slots=reroute.n_slots,
        total_slots=int(fault.slot) + reroute.n_slots,
        packets_moved=moved,
        delivered=True,
    )
