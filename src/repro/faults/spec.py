"""Fault specifications and the degraded-topology view they induce.

A :class:`FaultSpec` names the hardware that fails — couplers by
``(dest_group, source_group)`` pair, processors by index, whole groups by
index — and *when*: a deterministic ``onset_slot`` plus an optional
``transient_slots`` window (``None`` means the fault is permanent).  Specs
are frozen and hashable, so they can participate in network equality and
cache keys, and can be drawn seed-deterministically with
:meth:`FaultSpec.random` or parsed from the CLI's compact ``--faults``
grammar with :meth:`FaultSpec.parse`.

:class:`DegradedNetwork` is the reduced-capacity view
:meth:`repro.pops.topology.POPSNetwork.degrade` returns: the same ``(d, g)``
shape, but every wiring predicate (``can_transmit``/``can_receive``/
``couplers()``/...) masks out the failed hardware, so schedules validated
against the view provably avoid it.  The view compares unequal to the clean
network (the spec participates in ``__eq__``/``__hash__``), which keeps
degraded plans out of clean cache entries and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.pops.topology import Coupler, POPSNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["FaultSpec", "DegradedNetwork"]


@dataclass(frozen=True)
class FaultSpec:
    """A frozen description of failed POPS hardware and its onset.

    Attributes
    ----------
    failed_couplers:
        ``(dest_group, source_group)`` pairs of failed couplers.
    failed_processors:
        Indices of failed processors (they can neither send nor receive).
    failed_groups:
        Indices of failed groups: all their processors fail, and every
        coupler feeding or fed by the group is masked too.
    onset_slot:
        First schedule slot at which the faults are active (0 = from the
        start).
    transient_slots:
        Width of the fault window in slots; ``None`` means permanent.  A
        transient spec only affects *when* execution trips — the degraded
        routing view conservatively treats its hardware as failed.
    """

    failed_couplers: tuple[tuple[int, int], ...] = ()
    failed_processors: tuple[int, ...] = ()
    failed_groups: tuple[int, ...] = ()
    onset_slot: int = 0
    transient_slots: int | None = field(default=None)

    def __post_init__(self):
        object.__setattr__(
            self,
            "failed_couplers",
            tuple(sorted({(int(b), int(a)) for b, a in self.failed_couplers})),
        )
        object.__setattr__(
            self,
            "failed_processors",
            tuple(sorted({int(p) for p in self.failed_processors})),
        )
        object.__setattr__(
            self,
            "failed_groups",
            tuple(sorted({int(h) for h in self.failed_groups})),
        )
        if int(self.onset_slot) < 0:
            raise ConfigurationError(
                f"onset_slot must be >= 0, got {self.onset_slot}"
            )
        object.__setattr__(self, "onset_slot", int(self.onset_slot))
        if self.transient_slots is not None:
            if int(self.transient_slots) <= 0:
                raise ConfigurationError(
                    f"transient_slots must be positive or None, "
                    f"got {self.transient_slots}"
                )
            object.__setattr__(self, "transient_slots", int(self.transient_slots))

    # -- predicates ---------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the spec names no failed hardware at all."""
        return not (
            self.failed_couplers or self.failed_processors or self.failed_groups
        )

    @property
    def permanent(self) -> bool:
        """True when the fault never clears once it strikes."""
        return self.transient_slots is None

    def active_at(self, slot: int) -> bool:
        """True when the fault window covers schedule slot ``slot``."""
        if slot < self.onset_slot:
            return False
        if self.transient_slots is None:
            return True
        return slot < self.onset_slot + self.transient_slots

    # -- expansion ----------------------------------------------------------

    def failed_coupler_pairs(self, g: int) -> frozenset[tuple[int, int]]:
        """All failed ``(dest_group, source_group)`` pairs, groups expanded.

        A failed group ``h`` masks every coupler it touches: ``c(x, h)``
        (nothing in ``h`` can transmit) and ``c(h, x)`` (nothing in ``h``
        can receive).
        """
        pairs = set(self.failed_couplers)
        for h in self.failed_groups:
            for x in range(g):
                pairs.add((x, h))
                pairs.add((h, x))
        return frozenset(pairs)

    def failed_coupler_ids(self, g: int) -> frozenset[int]:
        """The failed couplers as engine coupler ids (``dest * g + source``)."""
        return frozenset(b * g + a for b, a in self.failed_coupler_pairs(g))

    def failed_processor_set(self, network: POPSNetwork) -> frozenset[int]:
        """All failed processors, failed groups expanded to their members."""
        procs = set(self.failed_processors)
        for h in self.failed_groups:
            procs.update(network.processors_in_group(h))
        return frozenset(procs)

    def validate_for(self, network: POPSNetwork) -> None:
        """Raise :class:`ConfigurationError` if the spec names absent hardware."""
        g, n = network.g, network.n
        for b, a in self.failed_couplers:
            if not (0 <= b < g and 0 <= a < g):
                raise ConfigurationError(
                    f"failed coupler c({b},{a}) does not exist in {network!r}"
                )
        for p in self.failed_processors:
            if not (0 <= p < n):
                raise ConfigurationError(
                    f"failed processor {p} does not exist in {network!r}"
                )
        for h in self.failed_groups:
            if not (0 <= h < g):
                raise ConfigurationError(
                    f"failed group {h} does not exist in {network!r}"
                )

    # -- construction -------------------------------------------------------

    @classmethod
    def random(
        cls,
        network: POPSNetwork,
        *,
        coupler_fraction: float = 0.0,
        n_couplers: int | None = None,
        n_processors: int = 0,
        seed: int = 0,
        onset_slot: int = 0,
        transient_slots: int | None = None,
    ) -> FaultSpec:
        """Draw a seed-deterministic spec for ``network``.

        ``coupler_fraction`` of the ``g^2`` couplers fail (rounded to the
        nearest count; ``n_couplers`` overrides the fraction with an exact
        count), plus ``n_processors`` uniformly drawn processors.  The draw
        never touches couplers feeding or fed by group 0 (the "hub"): with
        ``c(x, 0)`` and ``c(0, x)`` all alive, every ordered group pair keeps
        a two-hop path through the hub, so random specs are always
        reroutable by :func:`repro.faults.reroute.route_on_survivors`
        (the draw is therefore capped at ``(g-1)^2`` candidates).
        """
        rng = np.random.default_rng(seed)
        g = network.g
        total = g * g
        count = (
            int(n_couplers)
            if n_couplers is not None
            else int(round(coupler_fraction * total))
        )
        candidates = [(b, a) for b in range(1, g) for a in range(1, g)]
        count = max(0, min(count, len(candidates)))
        couplers: tuple[tuple[int, int], ...] = ()
        if count:
            chosen = rng.choice(len(candidates), size=count, replace=False)
            couplers = tuple(candidates[int(i)] for i in chosen)
        processors: tuple[int, ...] = ()
        if n_processors:
            drawn = rng.choice(
                network.n, size=min(int(n_processors), network.n), replace=False
            )
            processors = tuple(int(p) for p in drawn)
        return cls(
            failed_couplers=couplers,
            failed_processors=processors,
            onset_slot=onset_slot,
            transient_slots=transient_slots,
        )

    @classmethod
    def parse(cls, text: str) -> FaultSpec:
        """Parse the CLI's compact ``--faults`` grammar.

        Comma-separated tokens: ``cB.A`` (coupler ``c(B, A)``), ``pN``
        (processor ``N``), ``gN`` (group ``N``), ``onset=K``,
        ``transient=K``.  Example: ``"c1.0,c2.1,p5,onset=1"``.
        """
        couplers: list[tuple[int, int]] = []
        processors: list[int] = []
        groups: list[int] = []
        onset = 0
        transient: int | None = None
        for raw in text.split(","):
            token = raw.strip()
            if not token:
                continue
            try:
                if token.startswith("onset="):
                    onset = int(token[len("onset="):])
                elif token.startswith("transient="):
                    transient = int(token[len("transient="):])
                elif token[0] == "c":
                    dest, _, src = token[1:].partition(".")
                    if not _:
                        raise ValueError(token)
                    couplers.append((int(dest), int(src)))
                elif token[0] == "p":
                    processors.append(int(token[1:]))
                elif token[0] == "g":
                    groups.append(int(token[1:]))
                else:
                    raise ValueError(token)
            except ValueError:
                raise ConfigurationError(
                    f"cannot parse fault token {token!r}; expected cB.A / pN / "
                    f"gN / onset=K / transient=K"
                ) from None
        return cls(
            failed_couplers=tuple(couplers),
            failed_processors=tuple(processors),
            failed_groups=tuple(groups),
            onset_slot=onset,
            transient_slots=transient,
        )

    # -- reporting ----------------------------------------------------------

    def describe(self) -> str:
        """Short human-readable summary (used in spans and health payloads)."""
        parts = []
        if self.failed_couplers:
            parts.append(
                "couplers " + ",".join(f"c({b},{a})" for b, a in self.failed_couplers)
            )
        if self.failed_processors:
            parts.append(
                "processors " + ",".join(str(p) for p in self.failed_processors)
            )
        if self.failed_groups:
            parts.append("groups " + ",".join(str(h) for h in self.failed_groups))
        if not parts:
            parts.append("no faults")
        window = (
            "permanent"
            if self.transient_slots is None
            else f"transient {self.transient_slots} slots"
        )
        return f"{'; '.join(parts)} @ slot {self.onset_slot} ({window})"

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "failed_couplers": [list(pair) for pair in self.failed_couplers],
            "failed_processors": list(self.failed_processors),
            "failed_groups": list(self.failed_groups),
            "onset_slot": self.onset_slot,
            "transient_slots": self.transient_slots,
        }


class DegradedNetwork(POPSNetwork):
    """A POPS network with a :class:`FaultSpec` masked out of its wiring.

    Same ``(d, g)`` shape as the base network (the clean Theorem 2 bound
    ``theorem2_slots`` is deliberately unchanged — it is the yardstick the
    degradation is measured against), but the failed couplers and processors
    disappear from every wiring predicate, so a schedule that validates
    against this view provably avoids them.
    """

    def __init__(self, base: POPSNetwork, spec: FaultSpec):
        if base.fault_spec is not None:
            raise ConfigurationError(
                "cannot degrade an already-degraded network; build one "
                "FaultSpec covering all faults instead"
            )
        if not isinstance(spec, FaultSpec):
            raise ConfigurationError(
                f"degrade() takes a FaultSpec, got {type(spec).__name__}"
            )
        spec.validate_for(base)
        super().__init__(base.d, base.g)
        self.fault_spec = spec
        self._failed_pairs = spec.failed_coupler_pairs(base.g)
        self._failed_processors = spec.failed_processor_set(base)

    # -- fault predicates ---------------------------------------------------

    def coupler_failed(self, coupler: Coupler) -> bool:
        """True iff ``coupler`` is masked by the fault spec."""
        return (coupler.dest_group, coupler.source_group) in self._failed_pairs

    def processor_failed(self, processor: int) -> bool:
        """True iff ``processor`` is masked by the fault spec."""
        return processor in self._failed_processors

    @property
    def n_failed_couplers(self) -> int:
        """Number of couplers the spec masks (groups expanded)."""
        return len(self._failed_pairs)

    @property
    def n_failed_processors(self) -> int:
        """Number of processors the spec masks (groups expanded)."""
        return len(self._failed_processors)

    # -- masked wiring ------------------------------------------------------

    def couplers(self) -> list[Coupler]:
        """The *surviving* couplers, ordered by (dest_group, source_group)."""
        return [c for c in super().couplers() if not self.coupler_failed(c)]

    def transmit_couplers(self, processor: int) -> list[Coupler]:
        """Surviving couplers ``processor`` can drive ([] when it failed)."""
        if self.processor_failed(processor):
            return []
        return [
            c
            for c in super().transmit_couplers(processor)
            if not self.coupler_failed(c)
        ]

    def receive_couplers(self, processor: int) -> list[Coupler]:
        """Surviving couplers ``processor`` can read ([] when it failed)."""
        if self.processor_failed(processor):
            return []
        return [
            c
            for c in super().receive_couplers(processor)
            if not self.coupler_failed(c)
        ]

    def can_transmit(self, processor: int, coupler: Coupler) -> bool:
        return (
            super().can_transmit(processor, coupler)
            and not self.coupler_failed(coupler)
            and not self.processor_failed(processor)
        )

    def can_receive(self, processor: int, coupler: Coupler) -> bool:
        return (
            super().can_receive(processor, coupler)
            and not self.coupler_failed(coupler)
            and not self.processor_failed(processor)
        )

    def __repr__(self) -> str:
        return (
            f"DegradedNetwork(d={self.d}, g={self.g}, "
            f"failed_couplers={len(self._failed_pairs)}, "
            f"failed_processors={len(self._failed_processors)})"
        )
