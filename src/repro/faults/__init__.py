"""Fault injection and online recovery for POPS routing.

The subsystem has three pieces, threaded through every layer of the
pipeline:

* :class:`FaultSpec` — a frozen, hashable description of failed couplers,
  processors and groups, with a deterministic onset slot and an optional
  transient window.  :meth:`repro.pops.topology.POPSNetwork.degrade` turns a
  spec into a :class:`DegradedNetwork`, a reduced-capacity view whose wiring
  predicates mask the failed hardware.

* Fault-aware execution — :meth:`repro.pops.engine.BatchedSimulator.execute`
  and :meth:`repro.pops.simulator.POPSSimulator.run_reference` accept a
  ``faults=`` spec and raise :class:`repro.exceptions.CouplerFailedError`
  when an active slot drives failed hardware.  The error carries the slot,
  the coupler and the residual packet state (``{packet: holder}``), and the
  two engines raise bit-identically (same slot, same residual).

* Online rerouting — :func:`reroute_residual` re-solves the residual traffic
  as an h-relation-style greedy schedule over the *surviving* couplers
  (direct hop when the coupler is alive, a two-hop detour through a healthy
  intermediate group otherwise) and :func:`route_with_recovery` stitches the
  whole story together: route clean → execute under injection → recover →
  verify every packet delivered on the degraded topology → report total
  slots vs the clean ``2⌈d/g⌉`` bound.
"""

from repro.faults.reroute import (
    FaultRecoveryReport,
    ReroutePlan,
    full_reroute,
    reroute_residual,
    route_on_survivors,
    route_with_recovery,
)
from repro.faults.spec import DegradedNetwork, FaultSpec

__all__ = [
    "FaultSpec",
    "DegradedNetwork",
    "ReroutePlan",
    "FaultRecoveryReport",
    "reroute_residual",
    "route_on_survivors",
    "full_reroute",
    "route_with_recovery",
]
