"""Trace exporters: JSONL span logs and Chrome ``chrome://tracing`` JSON.

The JSONL format (written by ``--trace-out``) is the durable one: a header
line carrying the schema version, then exactly one JSON object per finished
span, in the record schema of :mod:`repro.obs.tracer`.  Line-oriented so
multi-gigabyte traces stream through ``grep``/``jq`` without loading, and
schema-versioned so downstream tooling can refuse traces it does not
understand.  :func:`read_jsonl` / :func:`validate_jsonl` are the matching
reader and CI's schema gate.

:func:`chrome_trace` converts span records to the Chrome Trace Event format
(complete ``"ph": "X"`` events, microsecond timestamps) for interactive
inspection in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import os
from typing import Any

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "write_jsonl",
    "read_jsonl",
    "validate_jsonl",
    "chrome_trace",
    "write_chrome",
]

#: Bump when the span record schema changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Keys every span record line must carry (the tracer's record schema).
_SPAN_KEYS = ("name", "span_id", "parent_id", "tid", "ts_ns", "dur_ns", "attrs")


def write_jsonl(spans: list[dict[str, Any]], path: str) -> int:
    """Write ``spans`` to ``path`` as header + one event per line.

    Returns the number of span events written.  The header is
    ``{"schema": TRACE_SCHEMA_VERSION, "kind": "pops-trace", "events": N}``.
    """
    with open(path, "w") as fh:
        fh.write(json.dumps({
            "schema": TRACE_SCHEMA_VERSION,
            "kind": "pops-trace",
            "events": len(spans),
        }) + "\n")
        for span in spans:
            fh.write(json.dumps(span, sort_keys=False) + "\n")
    return len(spans)


def read_jsonl(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a JSONL trace back to ``(header, spans)``.

    Raises ``ValueError`` on a missing/incompatible header; span lines are
    returned as parsed but otherwise unchecked dicts (use
    :func:`validate_jsonl` for the full schema gate).
    """
    with open(path) as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(first)
        if not isinstance(header, dict) or header.get("kind") != "pops-trace":
            raise ValueError(f"{path}: missing pops-trace header line")
        if header.get("schema") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: trace schema {header.get('schema')!r}, "
                f"expected {TRACE_SCHEMA_VERSION}"
            )
        spans = [json.loads(line) for line in fh if line.strip()]
    return header, spans


def validate_jsonl(path: str) -> list[str]:
    """All schema violations in one trace file (empty list = clean)."""
    try:
        header, spans = read_jsonl(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    problems: list[str] = []
    declared = header.get("events")
    if declared != len(spans):
        problems.append(
            f"header declares {declared!r} events, file has {len(spans)}"
        )
    for i, span in enumerate(spans):
        if not isinstance(span, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [key for key in _SPAN_KEYS if key not in span]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        if not isinstance(span["name"], str) or not span["name"]:
            problems.append(f"event {i}: name must be a non-empty string")
        for key in ("span_id", "tid", "ts_ns", "dur_ns"):
            if not isinstance(span[key], int) or isinstance(span[key], bool):
                problems.append(f"event {i}: {key} must be an integer")
        if span["parent_id"] is not None and not isinstance(span["parent_id"], int):
            problems.append(f"event {i}: parent_id must be an integer or null")
        if not isinstance(span["attrs"], dict):
            problems.append(f"event {i}: attrs must be an object")
    return problems


def chrome_trace(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """Span records as a Chrome Trace Event document (``traceEvents``).

    Complete events (``ph: "X"``), microsecond timestamps rebased to the
    earliest span so the viewer opens at t=0.  Span attributes land in
    ``args`` along with the span/parent ids, so the tree is recoverable in
    the viewer's detail pane.
    """
    t0 = min((span["ts_ns"] for span in spans), default=0)
    pid = os.getpid()
    events = [
        {
            "name": span["name"],
            "ph": "X",
            "ts": (span["ts_ns"] - t0) / 1e3,
            "dur": span["dur_ns"] / 1e3,
            "pid": pid,
            "tid": span["tid"],
            "args": {
                "span_id": span["span_id"],
                "parent_id": span["parent_id"],
                **span["attrs"],
            },
        }
        for span in spans
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(spans: list[dict[str, Any]], path: str) -> int:
    """Write the Chrome Trace Event conversion of ``spans`` to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(spans), fh)
    return len(spans)
