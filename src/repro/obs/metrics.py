"""Process-wide metrics: named counters, gauges and histograms.

One model for every counting surface of the pipeline: the schedule cache's
hit/miss counters, the plan store's per-process shard counters and the serve
daemon's telemetry are all built from the metric classes here, and anything
registered in a :class:`MetricsRegistry` can be snapshotted as JSON or
rendered as Prometheus-style text exposition (the serve daemon's ``metrics``
op and ``pops-repro stats``).

Metrics are cheap and thread-safe: counters/gauges guard a scalar with one
lock acquisition per update; histograms delegate their bounded sample
reservoir to :class:`repro.obs.stats.StreamingStats` (GIL-atomic appends)
and reduce through the shared percentile implementation.  Metrics work both
standalone (a :class:`ScheduleCache` owns its counters directly — many
caches per process, no global names) and registered (a registry key is the
metric name plus its sorted label set, Prometheus-style, so
``counter("serve_errors", code="bad-request")`` and ``code="queue-full"``
are distinct series of one family).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.stats import StreamingStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "IntHistogram",
    "MetricsRegistry",
    "registry",
]


class Counter:
    """Monotonic counter (resettable only explicitly, for lifecycle resets)."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, **labels: Any):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value (queue depth, bytes cached, uptime)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, **labels: Any):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Duration/size samples reduced to the standard percentile summary.

    Bounded by the :class:`~repro.obs.stats.StreamingStats` reservoir;
    ``summary_ms()`` is the exact shape ``ServeTelemetry`` reports per
    stage.  ``total`` counts every observation ever made (the reservoir
    keeps only the most recent window).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "_stats")

    def __init__(self, name: str, maxlen: int = 100_000, **labels: Any):
        self.name = name
        self.labels = labels
        self._stats = StreamingStats(maxlen=maxlen)

    def observe(self, value: float) -> None:
        self._stats.add(value)

    @property
    def total(self) -> int:
        return self._stats.total

    def __len__(self) -> int:
        return len(self._stats)

    def summary_ms(self) -> dict[str, Any]:
        return self._stats.summary_ms()

    def values(self):
        return self._stats.values()

    def clear(self) -> None:
        self._stats.clear()


class IntHistogram:
    """Exact-value integer histogram (the batch-size histogram's model)."""

    kind = "int_histogram"
    __slots__ = ("name", "labels", "_counts", "_lock")

    def __init__(self, name: str, **labels: Any):
        self.name = name
        self.labels = labels
        self._counts: dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: int, count: int = 1) -> None:
        with self._lock:
            self._counts[value] = self._counts.get(value, 0) + count

    def counts(self) -> dict[int, int]:
        """``value -> count``, sorted by value."""
        with self._lock:
            return dict(sorted(self._counts.items()))


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "int_histogram": IntHistogram,
}


def _series_key(name: str, labels: dict[str, Any]) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Get-or-create registry of named metric series.

    The same ``(name, labels)`` always resolves to the same metric object
    (create-once under a lock, so concurrent first access from the serve
    daemon's handler threads is safe); asking for an existing series with a
    different kind is a bug and raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple, Any] = {}

    def _get_or_create(self, kind: str, name: str, labels: dict[str, Any], **kwargs):
        key = _series_key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = _KINDS[kind](name, **kwargs, **labels)
                self._metrics[key] = metric
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} {labels!r} already registered as "
                    f"{metric.kind}, requested {kind}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create("gauge", name, labels)

    def histogram(self, name: str, maxlen: int = 100_000, **labels: Any) -> Histogram:
        return self._get_or_create("histogram", name, labels, maxlen=maxlen)

    def int_histogram(self, name: str, **labels: Any) -> IntHistogram:
        return self._get_or_create("int_histogram", name, labels)

    def collect(self) -> list[Any]:
        """All registered metric objects, in registration order."""
        with self._lock:
            return list(self._metrics.values())

    def series(self, name: str) -> list[Any]:
        """Every registered series of the family ``name``."""
        with self._lock:
            return [m for (n, _), m in self._metrics.items() if n == name]

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-ready dump: one entry per series with kind, labels, value(s)."""
        out = []
        for metric in self.collect():
            entry: dict[str, Any] = {
                "name": metric.name, "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if metric.kind in ("counter", "gauge"):
                entry["value"] = metric.value
            elif metric.kind == "histogram":
                entry["total"] = metric.total
                entry["summary"] = metric.summary_ms()
            else:
                entry["counts"] = {str(k): v for k, v in metric.counts().items()}
            out.append(entry)
        return out

    def render_prometheus(self, prefix: str = "pops_") -> str:
        """Prometheus text exposition of every registered series.

        Counters/gauges render as single samples; histograms as
        summary-style quantile series plus ``_count``; exact-value integer
        histograms as one sample per bucket value.  ``prefix`` namespaces
        the metric names.
        """
        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, mtype: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {mtype}")

        for metric in self.collect():
            name = prefix + metric.name
            if metric.kind == "counter":
                type_line(name, "counter")
                lines.append(f"{name}{render_labels(metric.labels)} {metric.value}")
            elif metric.kind == "gauge":
                type_line(name, "gauge")
                lines.append(f"{name}{render_labels(metric.labels)} {_number(metric.value)}")
            elif metric.kind == "histogram":
                type_line(name, "summary")
                summary = metric.summary_ms()
                for pct, key in ((0.5, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms")):
                    labels = {**metric.labels, "quantile": _number(pct)}
                    lines.append(
                        f"{name}{render_labels(labels)} {_number(summary[key] / 1e3)}"
                    )
                lines.append(
                    f"{name}_count{render_labels(metric.labels)} {metric.total}"
                )
            else:  # int_histogram: one sample per exact bucket value
                type_line(name, "gauge")
                for value, count in metric.counts().items():
                    labels = {**metric.labels, "value": value}
                    lines.append(f"{name}{render_labels(labels)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")


def render_labels(labels: dict[str, Any]) -> str:
    """``{k="v", ...}`` in sorted key order; empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _number(value: float) -> str:
    """Prometheus-friendly number formatting (ints without trailing .0)."""
    as_float = float(value)
    if as_float == int(as_float):
        return str(int(as_float))
    return repr(as_float)


#: The process-wide registry (sessions, caches and stores that want global
#: visibility register here; per-instance surfaces own private registries).
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY
