"""Nested, thread-aware span tracing for the routing pipeline.

A *span* is one timed region of the pipeline — ``session.route``,
``route.compile``, ``engine.execute`` — recorded with nanosecond
``perf_counter_ns`` timestamps, the recording thread, and its parent span,
so a trace reconstructs the full call tree of where time went.  The hot
pipeline is instrumented unconditionally::

    with get_tracer().span("engine.execute", n=1024):
        ...

and costs nothing when tracing is off: the module-level default tracer is
the :data:`NULL_TRACER` singleton, whose ``span`` returns one shared no-op
context object — no span ids, no timestamps, no allocations that grow with
use.  Enabling tracing is swapping in a real :class:`Tracer` via
:func:`set_tracer` (the CLI's ``--profile`` / ``--trace-out`` flags do).

Thread model: span nesting is tracked per thread (a span opened on the
batcher thread is never parented under a handler thread's span), finished
spans land in one shared list (list appends are atomic under the GIL), and
span ids come from one atomic counter — so daemon handler threads, the
batcher worker and sweep shards can all record into the same tracer.

Span record schema (one plain dict per finished span; the contract of
:mod:`repro.obs.export`):

``name``
    Dotted stage name, e.g. ``"route.compile"``.
``span_id`` / ``parent_id``
    Process-unique int id and the enclosing span's id (``None`` at a root).
``tid``
    Recording thread's ``threading.get_ident()``.
``ts_ns`` / ``dur_ns``
    Start instant (``perf_counter_ns``, process-relative origin) and
    duration, both integer nanoseconds.
``attrs``
    Caller-supplied key/value annotations (``d``, ``g``, ``n``, hit/miss
    flags, ...), JSON-scalar values.
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter_ns
from typing import Any

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "get_tracer", "set_tracer"]


class _SpanContext:
    """One open span; a context manager recording on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_parent_id", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = next(tracer._ids)
        stack.append(self._span_id)
        self._t0 = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = perf_counter_ns()
        tracer = self._tracer
        tracer._stack().pop()
        tracer._spans.append({
            "name": self._name,
            "span_id": self._span_id,
            "parent_id": self._parent_id,
            "tid": threading.get_ident(),
            "ts_ns": self._t0,
            "dur_ns": t1 - self._t0,
            "attrs": self._attrs,
        })
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. cache hit/miss)."""
        self._attrs.update(attrs)


class Tracer:
    """Collects spans; one instance per traced run (or per daemon process).

    Recording is designed for the hot path: opening a span takes one id from
    an atomic counter and one ``perf_counter_ns`` read; closing appends one
    dict to a shared list.  No locks are held while user code runs inside
    the span.
    """

    enabled = True

    def __init__(self):
        self._spans: list[dict[str, Any]] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span named ``name``; use as a context manager."""
        return _SpanContext(self, name, attrs)

    def emit(
        self, name: str, ts_ns: int, dur_ns: int, *, parent_id: int | None = None,
        **attrs: Any,
    ) -> int:
        """Record a span retroactively from externally measured timings.

        For stages timed by existing machinery (the serve daemon's
        queue-wait / batch-assembly / route / respond stage clocks) that
        should appear in the trace without re-timing them.  The span is a
        root unless ``parent_id`` says otherwise; returns the new span's id
        so follow-up emits can parent under it.
        """
        span_id = next(self._ids)
        self._spans.append({
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
            "tid": threading.get_ident(),
            "ts_ns": int(ts_ns),
            "dur_ns": int(dur_ns),
            "attrs": attrs,
        })
        return span_id

    def finished(self) -> list[dict[str, Any]]:
        """Snapshot of all finished span records (chronological by finish)."""
        return list(self._spans)

    def clear(self) -> None:
        """Drop recorded spans (open spans keep their ids and still record)."""
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


class _NullSpanContext:
    """The shared no-op span: enter/exit do nothing, annotate discards."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The disabled path: every operation is a no-op returning shared objects.

    ``span`` hands back the one module-level :class:`_NullSpanContext`
    instance regardless of arguments, so an instrumented hot loop running
    with tracing disabled allocates nothing that accumulates and touches no
    clocks.  There is exactly one instance, :data:`NULL_TRACER` (identity is
    part of the contract — pinned in ``tests/test_obs.py``).
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def emit(self, name, ts_ns, dur_ns, *, parent_id=None, **attrs) -> int:
        return 0

    def finished(self) -> list[dict[str, Any]]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The process-wide no-op tracer; the default target of :func:`get_tracer`.
NULL_TRACER = NullTracer()

_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (the :data:`NULL_TRACER` singleton unless enabled)."""
    return _tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer; ``None`` disables tracing.

    Returns the previously active tracer so callers can restore it.
    """
    global _tracer
    previous = _tracer
    _tracer = NULL_TRACER if tracer is None else tracer
    return previous
