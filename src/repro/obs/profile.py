"""Aggregate finished spans into a per-stage time/percentage tree.

This is what ``--profile`` prints: spans are grouped by their *name path*
(the chain of span names from a root down), durations and counts are summed
per path, and the tree is rendered with each stage's share of the total
traced wall time.  A warm ``n = 1024`` route renders as e.g.::

    session.route                      4.62 ms  100.0%  x1
      route.setup                      0.03 ms    0.6%  x1
      route.compile                    0.09 ms    2.0%  x1
        cache.probe                    0.01 ms    0.2%  x1
      engine.execute                   1.95 ms   42.2%  x1
      engine.verify                    0.52 ms   11.3%  x1
      engine.trace                     0.71 ms   15.4%  x1
      metrics.bounds                   1.21 ms   26.2%  x1
      metrics.summarise                0.08 ms    1.7%  x1
    stage coverage: 99.5% of traced wall time

``coverage_pct`` — the share of root wall time accounted for by the roots'
direct children — is the honesty metric: it is asserted >= 95% on the warm
route in ``benchmarks/bench_obs.py``, so the instrumentation cannot silently
rot into untimed gaps.
"""

from __future__ import annotations

from typing import Any

__all__ = ["profile_dict", "render_profile"]


def _name_paths(spans: list[dict[str, Any]]) -> dict[int, tuple[str, ...]]:
    """Map each span id to its root-to-span chain of names.

    A span whose parent is unknown (cleared, or recorded by another process)
    is treated as a root.
    """
    by_id = {span["span_id"]: span for span in spans}
    paths: dict[int, tuple[str, ...]] = {}

    def path_of(span_id: int) -> tuple[str, ...]:
        cached = paths.get(span_id)
        if cached is not None:
            return cached
        span = by_id[span_id]
        parent_id = span["parent_id"]
        if parent_id is None or parent_id not in by_id:
            result: tuple[str, ...] = (span["name"],)
        else:
            result = path_of(parent_id) + (span["name"],)
        paths[span_id] = result
        return result

    for span in spans:
        path_of(span["span_id"])
    return paths


def profile_dict(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate spans into the JSON-ready profile tree.

    Returns ``{"wall_ms", "coverage_pct", "stages": [...]}`` where each
    stage node is ``{"name", "count", "total_ms", "pct", "children"}``;
    ``pct`` is relative to the total root wall time, ``coverage_pct`` is the
    roots' direct-children share of it (100.0 when there are no roots to
    cover).  Sibling order is by first appearance in the span stream, so the
    tree reads in pipeline order.
    """
    paths = _name_paths(spans)
    totals: dict[tuple[str, ...], list[int]] = {}
    order: dict[tuple[str, ...], int] = {}
    for span in spans:
        path = paths[span["span_id"]]
        if path not in totals:
            totals[path] = [0, 0]
            order[path] = len(order)
        totals[path][0] += span["dur_ns"]
        totals[path][1] += 1

    wall_ns = sum(ns for path, (ns, _) in totals.items() if len(path) == 1)

    def children_of(prefix: tuple[str, ...]) -> list[dict[str, Any]]:
        depth = len(prefix) + 1
        child_paths = sorted(
            (p for p in totals if len(p) == depth and p[:-1] == prefix),
            key=order.__getitem__,
        )
        nodes = []
        for path in child_paths:
            ns, count = totals[path]
            nodes.append({
                "name": path[-1],
                "count": count,
                "total_ms": ns / 1e6,
                "pct": (100.0 * ns / wall_ns) if wall_ns else 0.0,
                "children": children_of(path),
            })
        return nodes

    stages = children_of(())
    covered_ns = sum(
        ns for path, (ns, _) in totals.items() if len(path) == 2
    )
    coverage = (100.0 * covered_ns / wall_ns) if wall_ns else 100.0
    return {
        "wall_ms": wall_ns / 1e6,
        "coverage_pct": coverage,
        "stages": stages,
    }


def _render_node(node: dict[str, Any], depth: int, lines: list[str]) -> None:
    label = "  " * depth + node["name"]
    lines.append(
        f"{label:<34} {node['total_ms']:>9.2f} ms {node['pct']:>6.1f}%  "
        f"x{node['count']}"
    )
    for child in node["children"]:
        _render_node(child, depth + 1, lines)


def render_profile(profile: dict[str, Any]) -> str:
    """The text rendering of :func:`profile_dict`'s tree."""
    lines: list[str] = []
    for stage in profile["stages"]:
        _render_node(stage, 0, lines)
    if not lines:
        return "no spans recorded"
    lines.append(
        f"stage coverage: {profile['coverage_pct']:.1f}% of traced wall time "
        f"({profile['wall_ms']:.2f} ms)"
    )
    return "\n".join(lines)
