"""Shared streaming-percentile and timing statistics.

Before the observability layer, three corners of the codebase each carried
their own percentile reduction — ``ServeTelemetry.snapshot`` (per-stage
latency percentiles), ``run_poisson_load`` (client-side latency report) and
the benchmark timing helpers.  They all reduce the same way (``p50/p95/p99``
over float samples via ``numpy.percentile``), so this module is now the one
implementation all of them import; parity with the historical outputs is
pinned in ``tests/test_obs.py``.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

import numpy as np

__all__ = [
    "DEFAULT_PERCENTILES",
    "percentiles",
    "summarize_ms",
    "StreamingStats",
    "best_of",
    "interleaved_minima",
]

#: The percentiles every latency surface reports.
DEFAULT_PERCENTILES: tuple[int, ...] = (50, 95, 99)


def percentiles(
    values, pcts: tuple[int, ...] = DEFAULT_PERCENTILES
) -> tuple[float, ...]:
    """``numpy.percentile`` over ``values``, as plain floats; zeros if empty.

    The single percentile reduction of the codebase: ``ServeTelemetry``,
    ``LoadReport`` and the metrics registry's histograms all call this.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return tuple(0.0 for _ in pcts)
    return tuple(float(p) for p in np.percentile(array, pcts))


def summarize_ms(samples) -> dict[str, Any]:
    """Reduce duration samples (seconds) to the standard latency summary.

    Returns ``{"count", "p50_ms", "p95_ms", "p99_ms", "mean_ms"}`` — the
    exact per-stage shape ``ServeTelemetry.snapshot`` has always reported,
    zeros when there are no samples yet.
    """
    array = np.asarray(
        samples if not isinstance(samples, deque) else list(samples),
        dtype=np.float64,
    )
    if array.size == 0:
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
    p50, p95, p99 = percentiles(array)
    return {
        "count": int(array.size),
        "p50_ms": p50 * 1e3,
        "p95_ms": p95 * 1e3,
        "p99_ms": p99 * 1e3,
        "mean_ms": float(array.mean()) * 1e3,
    }


class StreamingStats:
    """Bounded sample reservoir with the standard percentile summary.

    Keeps the ``maxlen`` most recent observations (the ``ServeTelemetry``
    bounding policy: a long-lived process's telemetry cannot grow without
    bound) plus cumulative count; :meth:`summary_ms` reduces through
    :func:`summarize_ms`.  Appends are GIL-atomic, so recording from
    multiple threads needs no caller-side lock.
    """

    __slots__ = ("_samples", "total")

    def __init__(self, maxlen: int = 100_000):
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.total = 0

    def add(self, value: float) -> None:
        self._samples.append(value)
        self.total += 1

    def __len__(self) -> int:
        return len(self._samples)

    def values(self) -> np.ndarray:
        samples = self._samples
        return np.fromiter(samples, dtype=np.float64, count=len(samples))

    def summary_ms(self) -> dict[str, Any]:
        """The standard ``count``/``p50_ms``/``p95_ms``/``p99_ms``/``mean_ms`` dict."""
        return summarize_ms(self.values())

    def clear(self) -> None:
        self._samples.clear()
        self.total = 0


def best_of(fn, repeats: int = 15) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``.

    The benchmark harness's standard timing loop (minimum over repeats is
    the classic noise-robust estimator for CPU-bound kernels).
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def interleaved_minima(
    loop_fn, batch_fn, *, rounds: int = 8, batch_reps: int = 5
) -> tuple[float, float]:
    """Best-of timings for two competing pipelines, sampled interleaved.

    Alternating one ``loop_fn`` pass with a burst of ``batch_fn`` passes
    exposes both sides to the same machine-wide contention profile, so a
    background hiccup skews the two minima together instead of landing on
    only one of them.  The batch side gets more passes per round because its
    per-pass variance is larger (a single stray scheduler tick is a bigger
    fraction of a short pass than of a long one).
    """
    t_loop = float("inf")
    t_batch = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        loop_fn()
        t_loop = min(t_loop, time.perf_counter() - start)
        for _ in range(batch_reps):
            start = time.perf_counter()
            batch_fn()
            t_batch = min(t_batch, time.perf_counter() - start)
    return t_loop, t_batch
