"""Unified observability: span tracing, metrics, exporters, profiling.

The one instrumentation layer of the reproduction.  Four pieces:

* :mod:`repro.obs.tracer` — nested, thread-aware ``perf_counter_ns`` span
  tracing with a zero-overhead disabled path (:data:`NULL_TRACER`);
* :mod:`repro.obs.metrics` — named counters/gauges/histograms and the
  :class:`MetricsRegistry` with Prometheus text exposition;
* :mod:`repro.obs.stats` — the single streaming-percentile / timing-helper
  implementation every latency surface reduces through;
* :mod:`repro.obs.export` / :mod:`repro.obs.profile` — JSONL and Chrome
  trace exporters and the ``--profile`` per-stage time tree.

Hot-path usage (costs one shared no-op object when tracing is disabled)::

    from repro.obs import get_tracer

    with get_tracer().span("engine.execute", n=network.n):
        ...
"""

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    read_jsonl,
    validate_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    IntHistogram,
    MetricsRegistry,
    registry,
)
from repro.obs.profile import profile_dict, render_profile
from repro.obs.stats import (
    StreamingStats,
    best_of,
    interleaved_minima,
    percentiles,
    summarize_ms,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, get_tracer, set_tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "IntHistogram",
    "MetricsRegistry",
    "registry",
    "StreamingStats",
    "percentiles",
    "summarize_ms",
    "best_of",
    "interleaved_minima",
    "TRACE_SCHEMA_VERSION",
    "write_jsonl",
    "read_jsonl",
    "validate_jsonl",
    "chrome_trace",
    "write_chrome",
    "profile_dict",
    "render_profile",
]
