"""Single-slot routability (Fact 1 / Gravenstreter–Melhem).

A set of packets, one per source processor and with pairwise distinct
destinations, can be routed in a single slot iff no two packets that originate
in the same group are headed for the same destination group: that is exactly
the condition under which every packet can be assigned its own coupler
``c(dest_group, source_group)`` with no conflicts (the paper's *fair
distribution* of packets already sitting at their sources).

For full permutations this is a very small class — whenever two packets of one
group target the same group, a second slot is unavoidable (the paper's Figure 3
discussion) — but the class matters both as the paper's Fact 1 building block
(the second slot of every round is exactly such a routing) and as the
characterisation of [Gravenstreter & Melhem 1998].
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import NotRoutableInOneSlotError
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork
from repro.utils.validation import check_permutation

__all__ = ["is_one_slot_routable", "one_slot_schedule", "OneSlotRouter"]


def is_one_slot_routable(network: POPSNetwork, pi: Sequence[int]) -> bool:
    """True iff permutation ``pi`` can be routed on ``network`` in a single slot.

    The criterion is the Gravenstreter–Melhem condition: no two packets with
    the same source group share a destination group.
    """
    images = check_permutation(pi, network.n)
    used: set[tuple[int, int]] = set()
    for source, destination in enumerate(images):
        if source == destination:
            # A packet already at its destination needs no coupler at all.
            continue
        key = (network.group_of(source), network.group_of(destination))
        if key in used:
            return False
        used.add(key)
    return True


def one_slot_schedule(
    network: POPSNetwork, packets: list[Packet], description: str = "one-slot direct"
) -> RoutingSchedule:
    """Build the single-slot schedule for a fairly distributed packet set.

    ``packets`` must satisfy: at most one packet per source processor, pairwise
    distinct destinations, and no two packets with equal source and destination
    groups.  Each packet is sent through ``c(group(dest), group(src))`` and read
    by its destination processor.

    Raises
    ------
    NotRoutableInOneSlotError
        If two packets would collide on a coupler or a destination processor.
    """
    schedule = RoutingSchedule(network=network, description=description)
    slot = schedule.new_slot()
    couplers_used: set[tuple[int, int]] = set()
    sources_used: set[int] = set()
    destinations_used: set[int] = set()
    for packet in packets:
        if packet.source == packet.destination:
            # Stationary packets stay in their processor's memory.
            continue
        source_group = network.group_of(packet.source)
        dest_group = network.group_of(packet.destination)
        if packet.source in sources_used:
            raise NotRoutableInOneSlotError(
                f"processor {packet.source} would have to send two packets"
            )
        if packet.destination in destinations_used:
            raise NotRoutableInOneSlotError(
                f"processor {packet.destination} would have to receive two packets"
            )
        if (dest_group, source_group) in couplers_used:
            raise NotRoutableInOneSlotError(
                f"coupler c({dest_group},{source_group}) needed by two packets; "
                "the packet set is not fairly distributed"
            )
        sources_used.add(packet.source)
        destinations_used.add(packet.destination)
        couplers_used.add((dest_group, source_group))
        coupler = network.coupler(dest_group, source_group)
        slot.add_transmission(packet.source, coupler, packet)
        slot.add_reception(packet.destination, coupler)
    return schedule


class OneSlotRouter:
    """Router restricted to single-slot routable permutations.

    Useful as the optimal baseline on the (small) class it covers and as the
    delivery step used by the universal router's second slots.
    """

    def __init__(self, network: POPSNetwork):
        self.network = network

    def can_route(self, pi: Sequence[int]) -> bool:
        """True iff ``pi`` is single-slot routable on this network."""
        return is_one_slot_routable(self.network, pi)

    def route(self, pi: Sequence[int]) -> RoutingSchedule:
        """Return a one-slot schedule for ``pi``.

        Raises
        ------
        NotRoutableInOneSlotError
            If ``pi`` does not satisfy the Gravenstreter–Melhem condition.
        """
        images = check_permutation(pi, self.network.n)
        if not is_one_slot_routable(self.network, images):
            raise NotRoutableInOneSlotError(
                "permutation has two same-group packets with a common destination group"
            )
        packets = [Packet(source=i, destination=images[i]) for i in range(self.network.n)]
        return one_slot_schedule(self.network, packets, description="one-slot permutation")

    def route_compiled(self, pi: Sequence[int]):
        """Compile the one-slot schedule for ``pi`` straight to schedule arrays.

        Array-native twin of :meth:`route` + lowering: the routability check is
        a vectorized duplicate scan over the (source group, destination group)
        pairs of the moving packets, and the single slot's transmission and
        delivery arrays are emitted directly.  Bit-identical to
        ``compile_schedule(network, self.route(pi), packets)``.

        Raises
        ------
        NotRoutableInOneSlotError
            If ``pi`` does not satisfy the Gravenstreter–Melhem condition.
        """
        from repro.pops.lowering import assemble_compiled_plan
        from repro.utils.validation import check_permutation_array

        network = self.network
        d, g = network.d, network.g
        images = check_permutation_array(pi, network.n)
        src = np.arange(network.n, dtype=np.int64)
        moving = np.flatnonzero(images != src)
        key = np.sort(moving // d * g + images[moving] // d)
        if (key[1:] == key[:-1]).any():
            raise NotRoutableInOneSlotError(
                "permutation has two same-group packets with a common destination group"
            )
        packets = list(map(Packet, range(network.n), images.tolist()))
        count = [int(moving.size)]
        return assemble_compiled_plan(
            network,
            packets,
            tx_sender=moving,
            tx_packet=moving,
            tx_coupler=images[moving] // d * g + moving // d,
            tx_counts=count,
            del_receiver=images[moving],
            del_packet=moving,
            del_counts=count,
            initial_loc=src,
            pk_destination=images,
        )
