"""Fair distributions (Theorem 1).

Given a proper list system ``(S, T, L)``, a *fair distribution* is an
assignment ``f : S × N_Δ1 -> T`` such that

1. for every source ``s`` the ``Δ1`` values ``f(s, ·)`` are all distinct;
2. every target ``t`` is assigned to exactly ``Δ2 = n1 Δ1 / n2`` pairs;
3. pairs whose list entries coincide (``L(s1, i1) = L(s2, i2)``) receive
   distinct targets.

Theorem 1 proves every proper list system admits one, constructively: build
the bipartite multigraph ``G = (S, S'; E)`` with ``l(s, s')`` parallel edges,
pad it to an ``n2``-regular multigraph with the biregular graphs ``H1``/``H2``
of the proof, 1-factorise the padded graph with König's theorem, and read the
colour of each core edge back as the assigned target.  This module implements
exactly that pipeline on top of :mod:`repro.graph`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EdgeColoringError, FairnessViolationError, GraphError
from repro.graph.array_multigraph import ArrayMultigraph
from repro.graph.edge_coloring import edge_color, verify_edge_coloring
from repro.graph.regularize import (
    biregular_pad_arrays,
    pad_to_regular,
    pad_to_regular_arrays,
)
from repro.routing.list_system import (
    ListSystem,
    check_proper_lists_array,
    check_proper_lists_stack,
)
from repro.utils.arrayops import shrink_sort_key

__all__ = [
    "FairDistribution",
    "FairDistributionSolver",
    "verify_fair_distribution",
    "verify_fair_distribution_arrays",
    "verify_fair_distribution_stack",
]


@dataclass(frozen=True)
class FairDistribution:
    """A fair distribution ``f`` for a list system.

    ``assignment[s][i]`` is the target ``f(s, i)`` assigned to the ``i``-th
    entry of source ``s``'s list.
    """

    system: ListSystem
    assignment: tuple[tuple[int, ...], ...]

    def __call__(self, source: int, index: int) -> int:
        """Return ``f(source, index)``."""
        return self.assignment[source][index]

    def targets_of_source(self, source: int) -> tuple[int, ...]:
        """All targets assigned to ``source``'s list entries, in list order."""
        return self.assignment[source]

    def pairs_of_target(self, target: int) -> list[tuple[int, int]]:
        """All pairs ``(source, index)`` assigned to ``target``."""
        return [
            (source, index)
            for source, row in enumerate(self.assignment)
            for index, value in enumerate(row)
            if value == target
        ]

    def verify(self) -> None:
        """Check conditions (1)–(3) of the definition; raise on violation."""
        verify_fair_distribution(self.system, self.assignment)


def verify_fair_distribution(
    system: ListSystem, assignment: tuple[tuple[int, ...], ...] | list[list[int]]
) -> None:
    """Verify that ``assignment`` is a fair distribution for ``system``.

    Raises
    ------
    FairnessViolationError
        If any of the three defining conditions fails.
    """
    delta1 = system.delta1
    delta2 = system.delta2
    if len(assignment) != system.n_sources:
        raise FairnessViolationError(
            f"assignment has {len(assignment)} rows, expected {system.n_sources}"
        )

    target_load: dict[int, int] = {t: 0 for t in range(system.n_targets)}
    targets_by_list_value: dict[int, set[int]] = {}

    for source, row in enumerate(assignment):
        if len(row) != delta1:
            raise FairnessViolationError(
                f"source {source} has {len(row)} assigned targets, expected Δ1={delta1}"
            )
        values = list(row)
        for target in values:
            if not (0 <= target < system.n_targets):
                raise FairnessViolationError(
                    f"target {target} of source {source} outside T = [0, {system.n_targets})"
                )
            target_load[target] += 1
        # Condition (1): all Δ1 targets of a source are distinct.
        if len(set(values)) != delta1:
            raise FairnessViolationError(
                f"source {source} reuses a target: {values}"
            )
        # Condition (3): pairs sharing the same list VALUE get distinct targets.
        for index, target in enumerate(values):
            entry_value = system.lists[source][index]
            seen = targets_by_list_value.setdefault(entry_value, set())
            if target in seen:
                raise FairnessViolationError(
                    f"two pairs with list value {entry_value} share target {target}"
                )
            seen.add(target)

    # Condition (2): every target carries exactly Δ2 pairs.
    for target, load in target_load.items():
        if load != delta2:
            raise FairnessViolationError(
                f"target {target} is assigned {load} pairs, expected Δ2={delta2}"
            )


def verify_fair_distribution_arrays(
    lists: np.ndarray, assignment: np.ndarray, n_targets: int
) -> None:
    """Vectorized fair-distribution check for the array solving path.

    ``lists`` and ``assignment`` are the ``(n1, Δ1)`` list and target arrays;
    conditions (1)–(3) are verified with sorted-key passes and ``bincount``.

    Raises
    ------
    FairnessViolationError
        On the first violation, mirroring :func:`verify_fair_distribution`'s
        messages.
    """
    n_sources, delta1 = lists.shape
    delta2 = (n_sources * delta1) // n_targets
    if assignment.shape != lists.shape:
        raise FairnessViolationError(
            f"assignment has shape {assignment.shape}, expected {lists.shape}"
        )
    if assignment.size and (
        assignment.min() < 0 or assignment.max() >= n_targets
    ):
        bad = np.flatnonzero((assignment < 0) | (assignment >= n_targets))[0]
        raise FairnessViolationError(
            f"target {int(assignment.ravel()[bad])} of source "
            f"{int(bad) // delta1} outside T = [0, {n_targets})"
        )
    # Condition (1): all Δ1 targets of a source are distinct.
    row_sorted = np.sort(assignment, axis=1)
    repeats = (row_sorted[:, 1:] == row_sorted[:, :-1]).any(axis=1)
    if repeats.any():
        source = int(np.flatnonzero(repeats)[0])
        raise FairnessViolationError(
            f"source {source} reuses a target: {assignment[source].tolist()}"
        )
    # Condition (3): pairs sharing the same list value get distinct targets.
    pair_key = np.sort(lists.ravel() * np.int64(n_targets) + assignment.ravel())
    clash = np.flatnonzero(pair_key[1:] == pair_key[:-1])
    if clash.size:
        key = int(pair_key[clash[0]])
        raise FairnessViolationError(
            f"two pairs with list value {key // n_targets} share target "
            f"{key % n_targets}"
        )
    # Condition (2): every target carries exactly Δ2 pairs.
    load = np.bincount(assignment.ravel(), minlength=n_targets)
    unbalanced = np.flatnonzero(load != delta2)
    if unbalanced.size:
        target = int(unbalanced[0])
        raise FairnessViolationError(
            f"target {target} is assigned {int(load[target])} pairs, "
            f"expected Δ2={delta2}"
        )


def verify_fair_distribution_stack(
    lists: np.ndarray, assignment: np.ndarray, n_targets: int
) -> None:
    """Batched :func:`verify_fair_distribution_arrays` over ``(B, n1, Δ1)``.

    ``lists`` may be a single shared ``(B, n1, Δ1)`` stack or broadcastable
    to ``assignment``'s shape.  Violations raise with the single-system
    message for the row-major first offender.
    """
    batch, n_sources, delta1 = assignment.shape
    delta2 = (n_sources * delta1) // n_targets
    if lists.shape != assignment.shape:
        raise FairnessViolationError(
            f"assignment has shape {assignment.shape}, expected {lists.shape}"
        )
    out_of_range = (assignment < 0) | (assignment >= n_targets)
    if out_of_range.any():
        flat = out_of_range.reshape(batch, n_sources * delta1)
        b, bad = np.unravel_index(int(np.argmax(flat)), flat.shape)
        raise FairnessViolationError(
            f"target {int(assignment.reshape(batch, -1)[b, bad])} of source "
            f"{int(bad) // delta1} outside T = [0, {n_targets})"
        )
    # Condition (1): all Δ1 targets of a source are distinct.
    row_sorted = np.sort(shrink_sort_key(assignment, n_targets - 1), axis=2)
    repeats = (row_sorted[:, :, 1:] == row_sorted[:, :, :-1]).any(axis=2)
    if repeats.any():
        b, source = np.unravel_index(int(np.argmax(repeats)), repeats.shape)
        raise FairnessViolationError(
            f"source {int(source)} reuses a target: "
            f"{assignment[b, source].tolist()}"
        )
    # Condition (3): pairs sharing the same list value get distinct targets.
    pair_key = np.sort(
        shrink_sort_key(
            lists.reshape(batch, -1) * np.int64(n_targets)
            + assignment.reshape(batch, -1),
            n_targets * n_targets - 1,
        ),
        axis=1,
    )
    clash = pair_key[:, 1:] == pair_key[:, :-1]
    if clash.any():
        b, i = np.unravel_index(int(np.argmax(clash)), clash.shape)
        key = int(pair_key[b, i])
        raise FairnessViolationError(
            f"two pairs with list value {key // n_targets} share target "
            f"{key % n_targets}"
        )
    # Condition (2): every target carries exactly Δ2 pairs.
    load = np.bincount(
        (
            assignment.reshape(batch, -1)
            + np.arange(batch, dtype=np.int64)[:, None] * n_targets
        ).ravel(),
        minlength=batch * n_targets,
    ).reshape(batch, n_targets)
    unbalanced = load != delta2
    if unbalanced.any():
        b, target = np.unravel_index(int(np.argmax(unbalanced)), unbalanced.shape)
        raise FairnessViolationError(
            f"target {int(target)} is assigned {int(load[b, target])} pairs, "
            f"expected Δ2={delta2}"
        )


class FairDistributionSolver:
    """Computes fair distributions by the constructive proof of Theorem 1.

    Parameters
    ----------
    backend:
        Edge-colouring backend, ``"konig"`` (default) or ``"euler"``; see
        :mod:`repro.graph.edge_coloring`.
    verify:
        When ``True`` (default) both the intermediate edge colouring and the
        final assignment are checked against their definitions.  Disable only
        in tight benchmarking loops.
    """

    def __init__(self, backend: str = "konig", verify: bool = True):
        self.backend = backend
        self.verify = verify

    def solve(self, system: ListSystem) -> FairDistribution:
        """Compute a fair distribution for ``system``.

        Raises
        ------
        ImproperListSystemError
            If the list system is not proper.
        FairnessViolationError
            If verification is enabled and the produced assignment is not fair
            (this indicates an internal bug and should never happen).
        """
        system.check_proper()
        n2 = system.n_targets

        core = system.to_multigraph()
        padded = pad_to_regular(core, n2)
        coloring = edge_color(padded.graph, backend=self.backend)
        if self.verify:
            verify_edge_coloring(padded.graph, coloring)

        # Read back: for each core edge copy, its colour is the assigned target.
        # Parallel copies of the same (s, s') edge are distributed over the list
        # positions holding that value in ascending position order.
        colors_of_edge: dict[tuple[int, int], list[int]] = {}
        for color, edges in enumerate(coloring.classes):
            for left, right in edges:
                if padded.is_core_edge(left, right):
                    colors_of_edge.setdefault((left, right), []).append(color)

        assignment: list[list[int]] = []
        for source, row in enumerate(system.lists):
            row_assignment = [-1] * len(row)
            cursor: dict[int, int] = {}
            for index, value in enumerate(row):
                colors = colors_of_edge.get((source, value), [])
                position = cursor.get(value, 0)
                if position >= len(colors):
                    raise FairnessViolationError(
                        "internal error: fewer coloured copies of edge "
                        f"({source}, {value}) than list occurrences"
                    )
                row_assignment[index] = colors[position]
                cursor[value] = position + 1
            assignment.append(row_assignment)

        distribution = FairDistribution(
            system=system,
            assignment=tuple(tuple(row) for row in assignment),
        )
        if self.verify:
            distribution.verify()
        return distribution

    def solve_array(self, lists: np.ndarray, n_targets: int) -> np.ndarray:
        """Array-native fair distribution: ``(n1, Δ1)`` lists in, targets out.

        The whole Theorem 1 pipeline without Python object structures: the
        list-system multigraph is scatter-built
        (:meth:`~repro.graph.array_multigraph.ArrayMultigraph.from_instances`),
        padded with :func:`~repro.graph.regularize.pad_to_regular_arrays`,
        coloured by the backend's array kernel, and the colours are read back
        into the ``(n1, Δ1)`` assignment with two sorts.  For a given array
        backend the result is *identical* to :meth:`solve` on the equivalent
        :class:`~repro.routing.list_system.ListSystem` — both pipelines hand
        the same canonical arrays to the same deterministic kernel and read
        colours back per edge in ascending order.

        B=1 front of :meth:`solve_array_batch`, which is bit-identical per
        batch row.

        Raises
        ------
        EdgeColoringError
            If the configured backend has no array kernel (only
            ``"konig-array"`` / ``"euler-array"`` qualify).
        ImproperListSystemError / FairnessViolationError
            As :meth:`solve`.
        """
        lists = np.asarray(lists, dtype=np.int64)
        return self.solve_array_batch(lists[None, ...], n_targets)[0]

    def solve_array_batch(self, lists: np.ndarray, n_targets: int) -> np.ndarray:
        """Batched :meth:`solve_array`: ``(B, n1, Δ1)`` lists in, targets out.

        One Theorem 1 pipeline call for the whole batch.  The padding
        construction is permutation-independent, so ``H1``/``H2`` are built
        once and broadcast; the canonical instance stacks are produced by a
        single row-wise sort of composite ``left·nv + right`` keys (the sort
        *is* :meth:`~repro.graph.array_multigraph.ArrayMultigraph.
        from_instances`'s canonical expansion); colouring runs through the
        backend's stack kernel; and the readback is the same two sorts as
        :meth:`solve_array`, row-wise.  Row ``b`` of the result is
        bit-identical to ``solve_array(lists[b], n_targets)``.
        """
        from repro.graph.array_coloring import (
            ARRAY_COLORING_KERNELS,
            ARRAY_COLORING_STACK_KERNELS,
            verify_instance_coloring_stack,
        )

        kernel = ARRAY_COLORING_STACK_KERNELS.get(self.backend)
        if kernel is None:
            raise EdgeColoringError(
                f"backend {self.backend!r} has no array colouring kernel; "
                f"available: {sorted(ARRAY_COLORING_KERNELS)}"
            )
        lists = np.asarray(lists, dtype=np.int64)
        batch, n_sources, delta1 = lists.shape
        check_proper_lists_stack(lists, n_targets)

        # Padding parameters and the H1/H2 biregular graphs depend only on
        # (n1, Δ1, n2) — shared across the batch.  Validation mirrors
        # pad_to_regular_arrays message for message.
        n1, n2 = n_sources, n_targets
        if n2 < delta1:
            raise GraphError(
                f"target degree {n2} is smaller than the core degree {delta1}"
            )
        if (n1 * delta1) % n2 != 0:
            raise GraphError(
                f"target degree {n2} does not divide n1*Δ1 = {n1 * delta1}; "
                "the list system is not proper"
            )
        delta2 = (n1 * delta1) // n2
        n_pad = n1 - delta2
        pad_degree = n2 - delta1
        m_core = n1 * delta1
        core_left = np.repeat(np.arange(n1, dtype=np.int64), delta1)
        core_right = lists.reshape(batch, m_core)

        if n_pad == 0 or pad_degree == 0:
            if delta1 != n2:
                raise GraphError(
                    "inconsistent padding parameters: no padding vertices "
                    f"required but core degree {delta1} != target {n2}"
                )
            nv = n1
            key = core_left[None, :] * np.int64(nv) + core_right
        else:
            pad_left, pad_right = biregular_pad_arrays(n_pad, n1, n2, pad_degree)
            nv = n1 + n_pad
            pad_key = np.concatenate(
                (
                    (n1 + pad_left) * np.int64(nv) + pad_right,
                    pad_right * np.int64(nv) + (n1 + pad_left),
                )
            )
            key = np.concatenate(
                (
                    core_left[None, :] * np.int64(nv) + core_right,
                    np.broadcast_to(pad_key, (batch, pad_key.size)),
                ),
                axis=1,
            )
        # Row-wise canonicalization: sorting the composite keys IS the
        # canonical instance expansion of ArrayMultigraph.from_instances.
        sorted_key = np.sort(shrink_sort_key(key, nv * nv - 1), axis=1)
        instance_left = sorted_key // nv
        instance_right = sorted_key % nv
        left_degrees = np.bincount(
            (instance_left + np.arange(batch, dtype=np.int64)[:, None] * nv).ravel(),
            minlength=batch * nv,
        )
        right_degrees = np.bincount(
            (instance_right + np.arange(batch, dtype=np.int64)[:, None] * nv).ravel(),
            minlength=batch * nv,
        )
        if not ((left_degrees == n2).all() and (right_degrees == n2).all()):
            raise GraphError("padding failed to produce an n2-regular multigraph")

        colors = kernel(instance_left, instance_right, nv, nv, n2)
        if self.verify:
            verify_instance_coloring_stack(
                instance_left, instance_right, nv, nv, colors
            )

        # Read back, row-wise: core instances carry the assigned targets;
        # the (source, value, ascending colour) / (source, value, ascending
        # position) pairing of solve_array, with the sorts along axis 1.
        core_mask = (instance_left < n1) & (instance_right < n1)
        core_key = (
            instance_left[core_mask] * np.int64(n1) + instance_right[core_mask]
        ).reshape(batch, m_core)
        core_colors = colors[core_mask].reshape(batch, m_core)
        instance_order = np.lexsort(
            (
                shrink_sort_key(core_colors, n2 - 1),
                shrink_sort_key(core_key, n1 * n1 - 1),
            ),
            axis=-1,
        )
        position_key = core_left * np.int64(n1)
        position_key = position_key[None, :] + core_right
        position_order = np.argsort(
            shrink_sort_key(position_key, (n1 - 1) * n1 + n2 - 1),
            axis=1,
            kind="stable",
        )
        assignment = np.empty((batch, m_core), dtype=np.int64)
        np.put_along_axis(
            assignment,
            position_order,
            np.take_along_axis(core_colors, instance_order, axis=1),
            axis=1,
        )
        assignment = assignment.reshape(batch, n_sources, delta1)
        if self.verify:
            verify_fair_distribution_stack(lists, assignment, n_targets)
        return assignment
