"""List systems (Section 3.1 of the paper).

A *list system* is a triple ``(S, T, L)`` where ``S`` is a set of ``n1`` source
nodes, ``T`` a set of ``n2`` target nodes, and ``L`` assigns to every source a
list of ``Δ1 <= n2`` (not necessarily distinct) elements of ``S``.  It is
*proper* when ``n2`` divides ``n1 * Δ1`` and every element of ``S`` appears
exactly ``Δ1`` times across all lists.

For permutation routing on POPS(d, g) the list system is built from the
permutation ``π``: sources are the ``g`` groups, the list of group ``h``
contains the destination groups of the ``d`` packets originating in group
``h`` (``L(h, i) = group(π(i + h·d))``), and the target set is ``N_g`` when
``d <= g`` and ``N_d`` when ``d > g``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ImproperListSystemError, ValidationError
from repro.graph.array_multigraph import ArrayMultigraph
from repro.graph.multigraph import BipartiteMultigraph
from repro.utils.validation import check_permutation, check_positive_int

__all__ = [
    "ListSystem",
    "destination_group_lists",
    "destination_group_lists_stack",
    "check_proper_lists_array",
    "check_proper_lists_stack",
]


def destination_group_lists(images: np.ndarray, d: int, g: int) -> np.ndarray:
    """The Theorem 2 list system of a permutation, as a ``(g, d)`` array.

    Row ``h`` holds ``L(h, i) = group(π(i + h·d))`` — exactly the lists of
    :meth:`ListSystem.from_permutation`, without per-entry Python objects.
    ``images`` must already be a validated length-``d·g`` permutation array.
    """
    return images.reshape(g, d) // d


def destination_group_lists_stack(images: np.ndarray, d: int, g: int) -> np.ndarray:
    """Batched :func:`destination_group_lists`: ``(B, d·g)`` → ``(B, g, d)``.

    ``images`` must already be a validated ``(B, d·g)`` permutation stack.
    """
    return images.reshape(-1, g, d) // d


def check_proper_lists_array(lists: np.ndarray, n_targets: int) -> None:
    """Vectorized twin of :meth:`ListSystem.check_proper` for list arrays.

    ``lists`` is the ``(n_sources, Δ1)`` list array whose entries are source
    indices; raises :class:`ImproperListSystemError` with the object-path
    messages on the first violation.
    """
    n_sources, delta1 = lists.shape
    if (n_sources * delta1) % n_targets != 0:
        raise ImproperListSystemError(
            f"n2={n_targets} does not divide n1*Δ1={n_sources * delta1}"
        )
    occurrences = np.bincount(lists.ravel(), minlength=n_sources)
    bad = np.flatnonzero(occurrences != delta1)
    if bad.size:
        element = int(bad[0])
        raise ImproperListSystemError(
            f"element {element} appears {int(occurrences[element])} times "
            f"across all lists, expected Δ1={delta1}"
        )


def check_proper_lists_stack(lists: np.ndarray, n_targets: int) -> None:
    """Batched :func:`check_proper_lists_array` over a ``(B, n1, Δ1)`` stack.

    Raises with the single-system message for the row-major first violation.
    """
    batch, n_sources, delta1 = lists.shape
    if (n_sources * delta1) % n_targets != 0:
        raise ImproperListSystemError(
            f"n2={n_targets} does not divide n1*Δ1={n_sources * delta1}"
        )
    flat = lists.reshape(batch, n_sources * delta1)
    occurrences = np.bincount(
        (flat + np.arange(batch, dtype=np.int64)[:, None] * n_sources).ravel(),
        minlength=batch * n_sources,
    ).reshape(batch, n_sources)
    bad = occurrences != delta1
    if bad.any():
        b, element = np.unravel_index(int(np.argmax(bad)), bad.shape)
        raise ImproperListSystemError(
            f"element {int(element)} appears {int(occurrences[b, element])} times "
            f"across all lists, expected Δ1={delta1}"
        )


@dataclass(frozen=True)
class ListSystem:
    """A list system ``(S, T, L)`` with ``S = {0..n_sources-1}``,
    ``T = {0..n_targets-1}`` and ``L`` given row-wise.

    Attributes
    ----------
    n_sources:
        ``n1 = |S|``.
    n_targets:
        ``n2 = |T|``.
    lists:
        ``lists[s]`` is the list ``L_s`` of length ``Δ1`` whose entries are
        elements of ``S`` (NOT of ``T`` — see the paper's definition).
    """

    n_sources: int
    n_targets: int
    lists: tuple[tuple[int, ...], ...]

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_lists(
        cls, n_sources: int, n_targets: int, lists: Sequence[Sequence[int]]
    ) -> "ListSystem":
        """Build and validate a list system from per-source lists."""
        check_positive_int(n_sources, "n_sources")
        check_positive_int(n_targets, "n_targets")
        if len(lists) != n_sources:
            raise ValidationError(
                f"expected {n_sources} lists, got {len(lists)}"
            )
        lengths = {len(row) for row in lists}
        if len(lengths) != 1:
            raise ValidationError(f"all lists must have the same length, got {lengths}")
        (delta1,) = lengths
        if delta1 == 0:
            raise ValidationError("lists must be non-empty")
        if delta1 > n_targets:
            raise ValidationError(
                f"list length Δ1={delta1} exceeds the number of targets n2={n_targets}"
            )
        frozen = []
        for source, row in enumerate(lists):
            entries = []
            for value in row:
                if not (0 <= int(value) < n_sources):
                    raise ValidationError(
                        f"list entry {value} of source {source} is not in S = [0, {n_sources})"
                    )
                entries.append(int(value))
            frozen.append(tuple(entries))
        return cls(n_sources=n_sources, n_targets=n_targets, lists=tuple(frozen))

    @classmethod
    def from_permutation(cls, pi: Sequence[int], d: int, g: int) -> "ListSystem":
        """Build the list system of Theorem 2 for permutation ``pi`` on POPS(d, g).

        ``L(h, i) = group(π(i + h·d))`` for ``h ∈ N_g`` and ``i ∈ N_d``; the
        target set is ``N_g`` when ``d <= g`` (two-slot case) and ``N_d`` when
        ``d > g`` (``2⌈d/g⌉``-slot case), exactly as the proof of Theorem 2
        chooses it.
        """
        check_positive_int(d, "d")
        check_positive_int(g, "g")
        images = check_permutation(pi, d * g)
        lists = [
            [images[i + h * d] // d for i in range(d)] for h in range(g)
        ]
        n_targets = g if d <= g else d
        return cls.from_lists(n_sources=g, n_targets=n_targets, lists=lists)

    # -- scalar properties --------------------------------------------------------

    @property
    def delta1(self) -> int:
        """Common list length ``Δ1``."""
        return len(self.lists[0])

    @property
    def delta2(self) -> int:
        """``Δ2 = n1 Δ1 / n2`` (only meaningful for proper list systems)."""
        return (self.n_sources * self.delta1) // self.n_targets

    def occurrence_count(self, element: int) -> int:
        """Total number of occurrences of ``element`` across every list
        (the paper's ``Σ_s l(s, element)``)."""
        return sum(row.count(element) for row in self.lists)

    def multiplicity(self, source: int, element: int) -> int:
        """``l(source, element)``: occurrences of ``element`` in list ``L_source``."""
        return self.lists[source].count(element)

    # -- properness -----------------------------------------------------------------

    def is_proper(self) -> bool:
        """True iff the list system is proper (Theorem 1's hypothesis)."""
        if (self.n_sources * self.delta1) % self.n_targets != 0:
            return False
        return all(
            self.occurrence_count(element) == self.delta1
            for element in range(self.n_sources)
        )

    def check_proper(self) -> None:
        """Raise :class:`ImproperListSystemError` unless the system is proper."""
        if (self.n_sources * self.delta1) % self.n_targets != 0:
            raise ImproperListSystemError(
                f"n2={self.n_targets} does not divide n1*Δ1={self.n_sources * self.delta1}"
            )
        for element in range(self.n_sources):
            occurrences = self.occurrence_count(element)
            if occurrences != self.delta1:
                raise ImproperListSystemError(
                    f"element {element} appears {occurrences} times across all lists, "
                    f"expected Δ1={self.delta1}"
                )

    # -- graph view -------------------------------------------------------------------

    def to_multigraph(self) -> BipartiteMultigraph:
        """The bipartite multigraph ``G = (S, S'; E)`` of Theorem 1's proof:
        ``l(s, s')`` parallel edges between left vertex ``s`` and right vertex ``s'``."""
        graph = BipartiteMultigraph(self.n_sources, self.n_sources)
        for source, row in enumerate(self.lists):
            for element in row:
                graph.add_edge(source, element)
        return graph

    def lists_array(self) -> np.ndarray:
        """The lists as an ``(n_sources, Δ1)`` int64 array."""
        return np.array(self.lists, dtype=np.int64)

    def to_array_multigraph(self) -> ArrayMultigraph:
        """Canonical array twin of :meth:`to_multigraph` (same edge multiset)."""
        lists = self.lists_array()
        return ArrayMultigraph.from_instances(
            self.n_sources,
            self.n_sources,
            np.repeat(np.arange(self.n_sources, dtype=np.int64), self.delta1),
            lists.ravel(),
        )

    def __repr__(self) -> str:
        return (
            f"ListSystem(n1={self.n_sources}, n2={self.n_targets}, Δ1={self.delta1})"
        )
