"""Specialised router for group-blocked permutations (Sahni-style baseline).

A permutation is *group-blocked* when all processors of a group map into a
single destination group (so the induced map on groups is itself a
permutation).  Vector reversal, the hypercube dimension-exchange patterns of
[Sahni 2000b] (for ``2^b >= d``), and the mesh row/column shifts are all of
this form, and the prior literature routes each of them in ``2⌈d/g⌉`` slots
with a hand-crafted schedule.

For this class no edge colouring is needed: the closed formula

* ``f(h, i) = (h + i) mod g``  when ``d <= g``,
* ``f(h, i) = (h + i) mod d``  when ``d > g``

is already a fair distribution.  Condition (1) holds because ``f(h, ·)`` is
injective, condition (2) because each value is hit exactly once per source
group, and condition (3) because packets with equal destination group all come
from the same source group (the induced group map is a bijection) and hence
receive distinct values by condition (1).  Feeding the formula to the shared
two-hop builder reproduces the specialised ``2⌈d/g⌉``-slot routings without
any general machinery — this is the baseline benchmark E5/E6 compares the
universal router against.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import RoutingError
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork
from repro.routing.lower_bounds import is_group_blocked
from repro.routing.two_hop import build_theorem2_schedule
from repro.utils.validation import check_permutation

__all__ = ["BlockedPermutationRouter", "blocked_fair_values"]


def blocked_fair_values(network: POPSNetwork, h: int, i: int) -> int:
    """The closed-formula fair distribution for group-blocked permutations."""
    modulus = network.g if network.d <= network.g else network.d
    return (h + i) % modulus


class BlockedPermutationRouter:
    """Routes group-blocked permutations in ``2⌈d/g⌉`` slots without edge colouring."""

    def __init__(self, network: POPSNetwork):
        self.network = network

    def can_route(self, pi: Sequence[int]) -> bool:
        """True iff ``pi`` is group-blocked on this network."""
        return is_group_blocked(self.network, pi)

    def slots_required(self) -> int:
        """Slot count used for every routable permutation (1 when d == 1)."""
        d, g = self.network.d, self.network.g
        if d == 1:
            return 1
        return 2 * ((d + g - 1) // g)

    def route(self, pi: Sequence[int]) -> RoutingSchedule:
        """Build the specialised schedule for a group-blocked permutation.

        Raises
        ------
        RoutingError
            If ``pi`` is not group-blocked.
        """
        network = self.network
        images = check_permutation(pi, network.n)
        if not is_group_blocked(network, images):
            raise RoutingError(
                "BlockedPermutationRouter requires a group-blocked permutation; "
                "use PermutationRouter for arbitrary permutations"
            )
        packets = [Packet(source=i, destination=images[i]) for i in range(network.n)]

        if network.d == 1:
            # Single-slot direct routing: a group-blocked permutation on d = 1
            # moves the unique packet of each group to its (unique) target group.
            schedule = RoutingSchedule(
                network=network, description="blocked baseline (d=1 direct)"
            )
            slot = schedule.new_slot()
            for packet in packets:
                coupler = network.coupler(
                    network.group_of(packet.destination),
                    network.group_of(packet.source),
                )
                slot.add_transmission(packet.source, coupler, packet)
                slot.add_reception(packet.destination, coupler)
            return schedule

        schedule, _ = build_theorem2_schedule(
            network,
            packets,
            lambda h, i: blocked_fair_values(network, h, i),
            description="blocked-permutation specialised baseline",
        )
        return schedule

    def route_compiled(self, pi: Sequence[int]):
        """Compile the specialised schedule for ``pi`` straight to arrays.

        Array-native twin of :meth:`route` + lowering, bit-identical to
        ``compile_schedule(network, self.route(pi), packets)``: the
        closed-formula fair-value plane is fed to the shared Theorem 2 batch
        plan builders at batch size one — no edge colouring, no object
        schedule.

        Raises
        ------
        RoutingError
            If ``pi`` is not group-blocked.
        """
        from repro.routing.permutation_router import (
            _compile_d1_plan_batch,
            _compile_round_plan_batch,
            _compile_two_slot_plan_batch,
        )
        from repro.utils.validation import check_permutation_array

        network = self.network
        d, g = network.d, network.g
        images = check_permutation_array(pi, network.n)
        if not is_group_blocked(network, images.tolist()):
            raise RoutingError(
                "BlockedPermutationRouter requires a group-blocked permutation; "
                "use PermutationRouter for arbitrary permutations"
            )
        stack = images[None, :]
        if d == 1:
            return _compile_d1_plan_batch(network, stack).element(0)
        src = np.arange(network.n, dtype=np.int64)
        fair_value = ((src // d + src % d) % (g if d <= g else d))[None, :]
        if d <= g:
            return _compile_two_slot_plan_batch(network, stack, fair_value).element(0)
        return _compile_round_plan_batch(network, stack, fair_value).element(0)
