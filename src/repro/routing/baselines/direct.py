"""Single-hop ("direct") permutation routing baseline.

Every packet is sent straight from its source group ``a`` to its destination
group ``b`` through coupler ``c(b, a)``; since a coupler carries one packet per
slot, packets sharing a group pair are serialised.  The number of slots is
therefore the maximum, over ordered group pairs, of the number of packets
travelling between that pair — which is also optimal among *all* single-hop
schedules (a coupler is the only path between its two groups).

The baseline serves two purposes in the benchmarks:

* it is the natural strategy the paper's two-hop algorithm is implicitly
  compared against: on group-blocked traffic it needs ``d`` slots versus the
  universal router's ``2⌈d/g⌉``;
* on traffic that is already balanced over group pairs it is optimal — for the
  matrix transpose it achieves the ``⌈d/g⌉`` slots that [Sahni 2000a] proves
  optimal, which benchmark E5 checks.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork
from repro.utils.validation import check_permutation

__all__ = ["DirectRouter", "direct_slots_required", "group_traffic_matrix"]


def group_traffic_matrix(network: POPSNetwork, pi: Sequence[int]) -> list[list[int]]:
    """Return ``traffic[a][b]``: packets going from group ``a`` to group ``b`` under ``pi``."""
    images = check_permutation(pi, network.n)
    traffic = [[0] * network.g for _ in range(network.g)]
    for source, destination in enumerate(images):
        traffic[network.group_of(source)][network.group_of(destination)] += 1
    return traffic


def direct_slots_required(network: POPSNetwork, pi: Sequence[int]) -> int:
    """Slots any single-hop schedule needs for ``pi``: the max group-pair traffic.

    Packets already at their destination (``pi[i] == i``) never need a coupler
    and are excluded from the count, so the identity permutation needs 0 slots.
    """
    images = check_permutation(pi, network.n)
    counts: dict[tuple[int, int], int] = {}
    for source, destination in enumerate(images):
        if source == destination:
            continue
        pair = (network.group_of(source), network.group_of(destination))
        counts[pair] = counts.get(pair, 0) + 1
    return max(counts.values(), default=0)


class DirectRouter:
    """Routes permutations with single-hop transfers only."""

    def __init__(self, network: POPSNetwork):
        self.network = network

    def slots_required(self, pi: Sequence[int]) -> int:
        """Number of slots the direct schedule for ``pi`` will use."""
        return direct_slots_required(self.network, pi)

    def route(self, pi: Sequence[int]) -> RoutingSchedule:
        """Build the direct schedule: packets of each group pair are spread
        round-robin over the slots, one per coupler per slot."""
        network = self.network
        images = check_permutation(pi, network.n)
        packets = [Packet(source=i, destination=images[i]) for i in range(network.n)]
        n_slots = direct_slots_required(network, images)
        schedule = RoutingSchedule(
            network=network, description="direct single-hop baseline"
        )
        slots = [schedule.new_slot() for _ in range(n_slots)]

        # Assign each packet the next free slot of its (source group, dest group) pair.
        next_slot: dict[tuple[int, int], int] = {}
        for packet in packets:
            if packet.source == packet.destination:
                # A packet already at its destination never needs a coupler.
                continue
            pair = (
                network.group_of(packet.source),
                network.group_of(packet.destination),
            )
            index = next_slot.get(pair, 0)
            next_slot[pair] = index + 1
            coupler = network.coupler(pair[1], pair[0])
            slots[index].add_transmission(packet.source, coupler, packet)
            slots[index].add_reception(packet.destination, coupler)
        return schedule

    def route_compiled(self, pi: Sequence[int]):
        """Compile the direct schedule for ``pi`` straight to schedule arrays.

        Array-native twin of :meth:`route` + lowering, bit-identical to
        ``compile_schedule(network, self.route(pi), packets)``.  The
        round-robin slot of each moving packet is its rank among the packets
        of its (source group, destination group) pair in source order,
        computed with a sorted-run scan; the identity permutation compiles to
        zero slots.
        """
        from repro.pops.lowering import assemble_compiled_plan
        from repro.utils.validation import check_permutation_array

        network = self.network
        d, g = network.d, network.g
        images = check_permutation_array(pi, network.n)
        src = np.arange(network.n, dtype=np.int64)
        moving = np.flatnonzero(images != src)
        packets = list(map(Packet, range(network.n), images.tolist()))
        m = moving.size
        source_group = moving // d
        dest_group = images[moving] // d
        pair = source_group * g + dest_group
        order = np.argsort(pair, kind="stable")
        sorted_pair = pair[order]
        is_start = np.empty(m, dtype=bool)
        if m:
            is_start[0] = True
            is_start[1:] = sorted_pair[1:] != sorted_pair[:-1]
        idx = np.arange(m, dtype=np.int64)
        run_start = np.maximum.accumulate(np.where(is_start, idx, 0))
        slot_of = np.empty(m, dtype=np.int64)
        slot_of[order] = idx - run_start
        n_slots = int(slot_of.max()) + 1 if m else 0
        order2 = np.argsort(slot_of, kind="stable")
        senders = moving[order2]
        counts = np.bincount(slot_of, minlength=n_slots).tolist()
        return assemble_compiled_plan(
            network,
            packets,
            tx_sender=senders,
            tx_packet=senders,
            tx_coupler=dest_group[order2] * g + source_group[order2],
            tx_counts=counts,
            del_receiver=images[senders],
            del_packet=senders,
            del_counts=counts,
            initial_loc=src,
            pk_destination=images,
        )

    def route_packets(self, packets: list[Packet]) -> RoutingSchedule:
        """Direct-route an arbitrary packet set (at most one packet per source,
        distinct destinations); used by collectives and tests."""
        network = self.network
        counts: dict[tuple[int, int], int] = {}
        for packet in packets:
            if packet.source == packet.destination:
                continue
            pair = (
                network.group_of(packet.source),
                network.group_of(packet.destination),
            )
            counts[pair] = counts.get(pair, 0) + 1
        n_slots = max(counts.values(), default=0)
        schedule = RoutingSchedule(
            network=network, description="direct single-hop baseline (packet set)"
        )
        slots = [schedule.new_slot() for _ in range(n_slots)]
        next_slot: dict[tuple[int, int], int] = {}
        for packet in packets:
            if packet.source == packet.destination:
                continue
            pair = (
                network.group_of(packet.source),
                network.group_of(packet.destination),
            )
            index = next_slot.get(pair, 0)
            next_slot[pair] = index + 1
            coupler = network.coupler(pair[1], pair[0])
            slots[index].add_transmission(packet.source, coupler, packet)
            slots[index].add_reception(packet.destination, coupler)
        return schedule
