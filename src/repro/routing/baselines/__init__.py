"""Baseline routers the paper's algorithm is compared against.

* :mod:`~repro.routing.baselines.direct` — single-hop scheduling: every packet
  travels straight from its source group to its destination group and packets
  competing for a coupler are serialised over slots.  Optimal for traffic that
  is already balanced across group pairs (e.g. matrix transpose, where it
  achieves Sahni's ``⌈d/g⌉`` bound) but degenerates to ``d`` slots on
  group-blocked traffic.
* :mod:`~repro.routing.baselines.blocked` — the Sahni-style specialised
  two-hop router for group-blocked permutations (vector reversal, hypercube
  dimension exchanges, mesh row/column shifts, …): the fair distribution is
  given by a closed formula instead of an edge colouring, yet the slot count
  matches Theorem 2.
"""

from repro.routing.baselines.direct import DirectRouter, direct_slots_required
from repro.routing.baselines.blocked import (
    BlockedPermutationRouter,
    blocked_fair_values,
)

__all__ = [
    "DirectRouter",
    "direct_slots_required",
    "BlockedPermutationRouter",
    "blocked_fair_values",
]
