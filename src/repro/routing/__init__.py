"""Routing layer: the paper's contribution and the baselines it is compared to.

* :mod:`~repro.routing.list_system` / :mod:`~repro.routing.fair_distribution`
  implement Theorem 1 (every proper list system admits a fair distribution,
  computed by edge-colouring a regular bipartite multigraph).
* :mod:`~repro.routing.permutation_router` implements Theorem 2 (any
  permutation routes in 1 slot when ``d = 1`` and ``2⌈d/g⌉`` slots otherwise).
* :mod:`~repro.routing.one_slot` implements the Gravenstreter–Melhem
  characterisation of single-slot routability.
* :mod:`~repro.routing.lower_bounds` implements Propositions 1–3.
* :mod:`~repro.routing.baselines` contains the specialised and greedy routers
  used as comparison points in the benchmarks.
"""

from repro.routing.list_system import ListSystem
from repro.routing.fair_distribution import (
    FairDistribution,
    FairDistributionSolver,
    verify_fair_distribution,
)
from repro.routing.permutation_router import PermutationRouter, RoutingPlan
from repro.routing.one_slot import (
    is_one_slot_routable,
    one_slot_schedule,
    OneSlotRouter,
)
from repro.routing.lower_bounds import (
    is_group_blocked,
    is_group_moving,
    proposition1_lower_bound,
    proposition2_lower_bound,
    proposition3_lower_bound,
    best_known_lower_bound,
)
from repro.routing.relation import HRelation, HRelationRouter, h_relation_slot_bound

__all__ = [
    "HRelation",
    "HRelationRouter",
    "h_relation_slot_bound",
    "ListSystem",
    "FairDistribution",
    "FairDistributionSolver",
    "verify_fair_distribution",
    "PermutationRouter",
    "RoutingPlan",
    "is_one_slot_routable",
    "one_slot_schedule",
    "OneSlotRouter",
    "is_group_blocked",
    "is_group_moving",
    "proposition1_lower_bound",
    "proposition2_lower_bound",
    "proposition3_lower_bound",
    "best_known_lower_bound",
]
