"""The universal permutation router (Theorem 2).

Given a POPS(d, g) network and a permutation ``π`` of its ``n = d·g``
processors, :class:`PermutationRouter` produces a
:class:`~repro.pops.schedule.RoutingSchedule` that delivers every packet using

* ``1`` slot when ``d = 1``;
* ``2`` slots when ``1 < d <= g``;
* ``2·⌈d/g⌉`` slots when ``d > g``

— exactly the bounds of Theorem 2.  The construction follows the paper's
proof: a proper list system is built from ``π`` (``L(h, i)`` is the destination
group of the ``i``-th packet of group ``h``), Theorem 1 yields a fair
distribution ``f`` (computed by edge-colouring a regular bipartite multigraph,
see :mod:`repro.routing.fair_distribution`), and the schedule scatters packets
to the intermediate groups dictated by ``f`` before delivering them directly in
a conflict-free slot (Fact 1).  The schedule construction itself is shared with
the specialised routers and lives in :mod:`repro.routing.two_hop`.

Implementation note (``d > g`` case).  The paper indexes each round's packets
by their position inside the source group (``i ∈ [k·g, (k+1)·g)``), while this
implementation routes in round ``k`` the packets whose *fair-distribution
value* lies in ``[k·g, (k+1)·g)`` and uses intermediate group
``f(h, i) - k·g``.  Because ``f(h, ·)`` is injective (condition 1) the two
indexings differ only by a per-group reordering of rounds; the value-window
form makes every claimed property immediate: per round and per source group
the intermediate groups are distinct (no transmit conflicts), per round each
intermediate group receives at most ``g`` packets on distinct couplers
(conditions 1–2), and two packets sharing a destination group never share an
intermediate group within a round (condition 3), so the delivery slot is
conflict-free.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import RoutingError
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork
from repro.routing.fair_distribution import FairDistribution, FairDistributionSolver
from repro.routing.list_system import ListSystem, destination_group_lists
from repro.routing.two_hop import build_theorem2_schedule
from repro.utils.validation import check_permutation, check_permutation_array

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pops.engine import CompiledSchedule, ScheduleCache

__all__ = ["PermutationRouter", "RoutingPlan", "theorem2_slot_bound"]


def theorem2_slot_bound(d: int, g: int) -> int:
    """The slot count Theorem 2 guarantees for POPS(d, g): 1 if d == 1 else 2⌈d/g⌉."""
    if d == 1:
        return 1
    return 2 * ((d + g - 1) // g)


@dataclass
class RoutingPlan:
    """A fully materialised routing of one permutation.

    Attributes
    ----------
    network:
        The target POPS network.
    permutation:
        The routed permutation in one-line notation.
    packets:
        One packet per processor ``i`` with destination ``π(i)``.
    schedule:
        The slot-by-slot schedule implementing the routing.
    fair_distribution:
        The Theorem 1 fair distribution used (``None`` for the trivial
        ``d = 1`` case).
    intermediate_assignment:
        Mapping ``source processor -> intermediate group`` used by the scatter
        slot of the packet's round (empty for ``d = 1``).
    """

    network: POPSNetwork
    permutation: list[int]
    packets: list[Packet]
    schedule: RoutingSchedule
    fair_distribution: FairDistribution | None = None
    intermediate_assignment: dict[int, int] = field(default_factory=dict)

    @property
    def n_slots(self) -> int:
        """Number of slots the plan uses."""
        return self.schedule.n_slots

    @property
    def meets_theorem2_bound(self) -> bool:
        """True iff the plan uses exactly the slot count promised by Theorem 2."""
        return self.n_slots == theorem2_slot_bound(self.network.d, self.network.g)


class PermutationRouter:
    """Routes arbitrary permutations on a POPS(d, g) network per Theorem 2.

    Parameters
    ----------
    network:
        The POPS network to route on.
    backend:
        Edge-colouring backend used by the fair-distribution solver
        (``"konig"`` or ``"euler"``).
    verify:
        Forwarded to :class:`FairDistributionSolver`; when ``True`` the fair
        distribution is re-checked against its definition.
    """

    def __init__(self, network: POPSNetwork, backend: str = "konig", verify: bool = True):
        self.network = network
        self.solver = FairDistributionSolver(backend=backend, verify=verify)

    # -- public API ----------------------------------------------------------------

    def route(self, pi: Sequence[int]) -> RoutingPlan:
        """Produce a routing plan delivering packet ``i`` to processor ``pi[i]``."""
        network = self.network
        images = check_permutation(pi, network.n)
        packets = [Packet(source=i, destination=images[i]) for i in range(network.n)]

        if network.d == 1:
            schedule = self._route_d_equals_1(packets)
            plan = RoutingPlan(network, images, packets, schedule)
        else:
            system = ListSystem.from_permutation(images, network.d, network.g)
            distribution = self.solver.solve(system)
            schedule, intermediates = build_theorem2_schedule(
                network,
                packets,
                distribution,
                description=f"theorem2 router (backend={self.solver.backend})",
            )
            plan = RoutingPlan(
                network=network,
                permutation=images,
                packets=packets,
                schedule=schedule,
                fair_distribution=distribution,
                intermediate_assignment=intermediates,
            )

        expected = theorem2_slot_bound(network.d, network.g)
        if plan.n_slots != expected:
            raise RoutingError(
                f"internal error: produced {plan.n_slots} slots, Theorem 2 promises {expected}"
            )
        return plan

    def slots_required(self) -> int:
        """Slot count Theorem 2 guarantees on this router's network."""
        return theorem2_slot_bound(self.network.d, self.network.g)

    def route_compiled(
        self,
        pi: Sequence[int],
        *,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ) -> CompiledSchedule:
        """Route ``pi`` straight to compiled-schedule arrays.

        The array-native fast path of :meth:`route`: the fair distribution is
        solved on integer arrays (:meth:`~repro.routing.fair_distribution.
        FairDistributionSolver.solve_array`) and the Theorem 2 scatter/deliver
        structure is emitted directly as the per-slot arrays of a
        :class:`~repro.pops.engine.CompiledSchedule` — no ``Transmission`` /
        ``Reception`` / ``SlotProgram`` objects and no lowering pass.  The
        result is bit-identical to ``compile_schedule(network,
        plan.schedule, plan.packets)`` over this router's :meth:`route` plan:
        array backends (``"konig-array"``, ``"euler-array"``) take the array
        pipeline; other backends transparently fall back to routing
        object-level and compiling, so the method is safe for any backend.

        ``cache_key`` extends the compiled-schedule cache to the *plan*
        stage: under the usual deterministic-router contract
        (:func:`repro.analysis.metrics.routing_cache_key`), a hit skips route
        construction entirely, not just lowering.  ``cache`` overrides the
        process-wide cache.
        """
        store = None
        if cache_key is not None:
            from repro.pops.engine import schedule_cache

            store = cache if cache is not None else schedule_cache()
            compiled = store.get(cache_key)
            if compiled is not None:
                return compiled
        compiled = self._route_compiled_uncached(pi)
        if store is not None:
            store.put(cache_key, compiled)
        return compiled

    # -- array-native plan construction --------------------------------------------

    def _route_compiled_uncached(self, pi: Sequence[int]) -> CompiledSchedule:
        from repro.graph.array_coloring import ARRAY_COLORING_KERNELS
        from repro.pops.engine import compile_schedule
        from repro.pops.lowering import assemble_compiled_plan

        network = self.network
        d, g = network.d, network.g
        if d > 1 and self.solver.backend not in ARRAY_COLORING_KERNELS:
            plan = self.route(pi)
            return compile_schedule(network, plan.schedule, plan.packets)

        images = check_permutation_array(pi, network.n)
        n = network.n
        src = np.arange(n, dtype=np.int64)
        dest = images
        # C-level iteration; the packet list is the only per-processor Python
        # object the fast path materialises (it is part of the compiled
        # schedule's public contract, not an intermediate).
        packets = list(map(Packet, range(n), images.tolist()))

        if d == 1:
            # POPS(1, n) is fully connected: one direct slot, coupler
            # c(dest_group, source_group) with singleton groups.
            compiled = assemble_compiled_plan(
                network,
                packets,
                tx_sender=src,
                tx_packet=src,
                tx_coupler=dest * g + src,
                tx_counts=[n],
                del_receiver=dest,
                del_packet=src,
                del_counts=[n],
                initial_loc=src,
                pk_destination=dest,
            )
        elif d <= g:
            compiled = self._compile_two_slot(images, packets)
        else:
            compiled = self._compile_rounds(images, packets)

        expected = theorem2_slot_bound(d, g)
        if compiled.n_slots != expected:
            raise RoutingError(
                f"internal error: produced {compiled.n_slots} slots, "
                f"Theorem 2 promises {expected}"
            )
        return compiled

    def _compile_two_slot(
        self, images: np.ndarray, packets: list[Packet]
    ) -> CompiledSchedule:
        """Array twin of :func:`~repro.routing.two_hop.build_two_slot_schedule`."""
        from repro.pops.lowering import assemble_compiled_plan

        network = self.network
        d, g = network.d, network.g
        n = network.n
        src = np.arange(n, dtype=np.int64)
        source_group = src // d
        dest = images
        dest_group = dest // d
        fair = self.solver.solve_array(
            destination_group_lists(images, d, g), g
        )
        fair_value = fair.ravel()

        bad = np.flatnonzero((fair_value < 0) | (fair_value >= g))
        if bad.size:
            raise RoutingError(
                f"fair value {int(fair_value[bad[0]])} for processor "
                f"{int(bad[0])} is not a group"
            )
        arrivals = np.bincount(fair_value, minlength=g)
        unbalanced = np.flatnonzero(arrivals != d)
        if unbalanced.size:
            j = int(unbalanced[0])
            raise RoutingError(
                f"intermediate group {j} receives {int(arrivals[j])} packets, "
                f"expected exactly d={d} (fair-distribution condition 2 violated)"
            )
        # Scatter: processor (h, i) drives c(f(h, i), h); the receiver in
        # group j for the packet from group h is processor (j, rank of h),
        # i.e. sorting sources by (f, h) lines receivers up as 0..n-1.
        scatter_coupler = fair_value * g + source_group
        scatter_order = np.argsort(scatter_coupler, kind="stable")
        sorted_coupler = scatter_coupler[scatter_order]
        duplicate = np.flatnonzero(sorted_coupler[1:] == sorted_coupler[:-1])
        if duplicate.size:
            j = int(sorted_coupler[duplicate[0]]) // g
            raise RoutingError(
                f"intermediate group {j} receives two packets from the "
                "same source group (fair-distribution condition 1 violated)"
            )
        holder = np.empty(n, dtype=np.int64)
        holder[scatter_order] = src

        # Deliver (Fact 1): the holder's group is the fair value.
        deliver_coupler = dest_group * g + fair_value
        sorted_deliver = np.sort(deliver_coupler)
        clash = np.flatnonzero(sorted_deliver[1:] == sorted_deliver[:-1])
        if clash.size:
            key = int(sorted_deliver[clash[0]])
            raise RoutingError(
                f"delivery slot needs coupler c({key // g}, {key % g}) twice; "
                "the packets were not fairly distributed after the scatter slot"
            )

        return assemble_compiled_plan(
            network,
            packets,
            tx_sender=np.concatenate((src, holder)),
            tx_packet=np.concatenate((src, src)),
            tx_coupler=np.concatenate((scatter_coupler, deliver_coupler)),
            tx_counts=[n, n],
            del_receiver=np.concatenate((src, dest)),
            del_packet=np.concatenate((scatter_order, src)),
            del_counts=[n, n],
            initial_loc=src,
            pk_destination=dest,
        )

    def _compile_rounds(
        self, images: np.ndarray, packets: list[Packet]
    ) -> CompiledSchedule:
        """Array twin of :func:`~repro.routing.two_hop.build_round_schedule`."""
        from repro.pops.lowering import assemble_compiled_plan

        network = self.network
        d, g = network.d, network.g
        n = network.n
        src = np.arange(n, dtype=np.int64)
        source_group = src // d
        dest = images
        dest_group = dest // d
        fair = self.solver.solve_array(
            destination_group_lists(images, d, g), d
        )
        fair_value = fair.ravel()

        bad = np.flatnonzero((fair_value < 0) | (fair_value >= d))
        if bad.size:
            raise RoutingError(
                f"fair value {int(fair_value[bad[0]])} for processor "
                f"{int(bad[0])} is outside N_d"
            )
        injective_key = np.sort(source_group * d + fair_value)
        duplicate = np.flatnonzero(injective_key[1:] == injective_key[:-1])
        if duplicate.size:
            key = int(injective_key[duplicate[0]])
            raise RoutingError(
                f"group {key // d} assigns fair value {key % d} twice "
                "(fair-distribution condition 1 violated)"
            )

        # Round k moves the packets with fair value in [k·g, (k+1)·g); the
        # within-round intermediate group is the value minus k·g.
        round_of = fair_value // g
        intermediate = fair_value % g
        n_rounds = (d + g - 1) // g
        order = np.argsort(round_of, kind="stable")
        members = src[order]
        member_ig = intermediate[order]
        member_group = source_group[order]
        member_destg = dest_group[order]
        holders = member_ig * d + member_group

        g2 = g * g
        scatter_key = round_of[order] * g2 + member_ig * g + member_group
        sorted_scatter = np.sort(scatter_key)
        clash = np.flatnonzero(sorted_scatter[1:] == sorted_scatter[:-1])
        if clash.size:
            key = int(sorted_scatter[clash[0]]) % g2
            raise RoutingError(
                f"two packets of one round share coupler c({key // g},{key % g}) "
                "(fair-distribution condition 2 violated)"
            )
        deliver_key = round_of[order] * g2 + member_destg * g + member_ig
        sorted_deliver = np.sort(deliver_key)
        clash = np.flatnonzero(sorted_deliver[1:] == sorted_deliver[:-1])
        if clash.size:
            key = int(sorted_deliver[clash[0]]) % g2
            raise RoutingError(
                f"delivery slot needs coupler c({key // g}, {key % g}) twice; "
                "the packets were not fairly distributed after the scatter slot"
            )

        bounds = np.concatenate(
            ([0], np.cumsum(np.bincount(round_of, minlength=n_rounds)))
        )
        tx_sender_parts: list[np.ndarray] = []
        tx_packet_parts: list[np.ndarray] = []
        tx_coupler_parts: list[np.ndarray] = []
        del_receiver_parts: list[np.ndarray] = []
        del_packet_parts: list[np.ndarray] = []
        slot_counts: list[int] = []
        for k in range(n_rounds):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            window = slice(lo, hi)
            tx_sender_parts += [members[window], holders[window]]
            tx_packet_parts += [members[window], members[window]]
            tx_coupler_parts += [
                member_ig[window] * g + member_group[window],
                member_destg[window] * g + member_ig[window],
            ]
            del_receiver_parts += [holders[window], dest[members[window]]]
            del_packet_parts += [members[window], members[window]]
            slot_counts += [hi - lo, hi - lo]

        return assemble_compiled_plan(
            network,
            packets,
            tx_sender=np.concatenate(tx_sender_parts),
            tx_packet=np.concatenate(tx_packet_parts),
            tx_coupler=np.concatenate(tx_coupler_parts),
            tx_counts=slot_counts,
            del_receiver=np.concatenate(del_receiver_parts),
            del_packet=np.concatenate(del_packet_parts),
            del_counts=slot_counts,
            initial_loc=src,
            pk_destination=dest,
        )

    # -- case d == 1 --------------------------------------------------------------------

    def _route_d_equals_1(self, packets: list[Packet]) -> RoutingSchedule:
        """POPS(1, n) is a fully connected network: one direct slot suffices."""
        network = self.network
        schedule = RoutingSchedule(network=network, description="theorem2:d=1 direct")
        slot = schedule.new_slot()
        for packet in packets:
            source_group = network.group_of(packet.source)
            dest_group = network.group_of(packet.destination)
            coupler = network.coupler(dest_group, source_group)
            slot.add_transmission(packet.source, coupler, packet)
            slot.add_reception(packet.destination, coupler)
        return schedule
