"""The universal permutation router (Theorem 2).

Given a POPS(d, g) network and a permutation ``π`` of its ``n = d·g``
processors, :class:`PermutationRouter` produces a
:class:`~repro.pops.schedule.RoutingSchedule` that delivers every packet using

* ``1`` slot when ``d = 1``;
* ``2`` slots when ``1 < d <= g``;
* ``2·⌈d/g⌉`` slots when ``d > g``

— exactly the bounds of Theorem 2.  The construction follows the paper's
proof: a proper list system is built from ``π`` (``L(h, i)`` is the destination
group of the ``i``-th packet of group ``h``), Theorem 1 yields a fair
distribution ``f`` (computed by edge-colouring a regular bipartite multigraph,
see :mod:`repro.routing.fair_distribution`), and the schedule scatters packets
to the intermediate groups dictated by ``f`` before delivering them directly in
a conflict-free slot (Fact 1).  The schedule construction itself is shared with
the specialised routers and lives in :mod:`repro.routing.two_hop`.

Implementation note (``d > g`` case).  The paper indexes each round's packets
by their position inside the source group (``i ∈ [k·g, (k+1)·g)``), while this
implementation routes in round ``k`` the packets whose *fair-distribution
value* lies in ``[k·g, (k+1)·g)`` and uses intermediate group
``f(h, i) - k·g``.  Because ``f(h, ·)`` is injective (condition 1) the two
indexings differ only by a per-group reordering of rounds; the value-window
form makes every claimed property immediate: per round and per source group
the intermediate groups are distinct (no transmit conflicts), per round each
intermediate group receives at most ``g`` packets on distinct couplers
(conditions 1–2), and two packets sharing a destination group never share an
intermediate group within a round (condition 3), so the delivery slot is
conflict-free.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import RoutingError
from repro.obs import get_tracer
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork
from repro.routing.fair_distribution import FairDistribution, FairDistributionSolver
from repro.routing.list_system import ListSystem, destination_group_lists_stack
from repro.routing.two_hop import build_theorem2_schedule
from repro.utils.arrayops import shrink_sort_key
from repro.utils.validation import (
    check_permutation,
    check_permutation_array,
    check_permutation_stack,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pops.engine import CompiledSchedule, CompiledScheduleBatch, ScheduleCache

__all__ = ["PermutationRouter", "RoutingPlan", "theorem2_slot_bound"]


def theorem2_slot_bound(d: int, g: int) -> int:
    """The slot count Theorem 2 guarantees for POPS(d, g): 1 if d == 1 else 2⌈d/g⌉."""
    if d == 1:
        return 1
    return 2 * ((d + g - 1) // g)


@dataclass
class RoutingPlan:
    """A fully materialised routing of one permutation.

    Attributes
    ----------
    network:
        The target POPS network.
    permutation:
        The routed permutation in one-line notation.
    packets:
        One packet per processor ``i`` with destination ``π(i)``.
    schedule:
        The slot-by-slot schedule implementing the routing.
    fair_distribution:
        The Theorem 1 fair distribution used (``None`` for the trivial
        ``d = 1`` case).
    intermediate_assignment:
        Mapping ``source processor -> intermediate group`` used by the scatter
        slot of the packet's round (empty for ``d = 1``).
    """

    network: POPSNetwork
    permutation: list[int]
    packets: list[Packet]
    schedule: RoutingSchedule
    fair_distribution: FairDistribution | None = None
    intermediate_assignment: dict[int, int] = field(default_factory=dict)

    @property
    def n_slots(self) -> int:
        """Number of slots the plan uses."""
        return self.schedule.n_slots

    @property
    def meets_theorem2_bound(self) -> bool:
        """True iff the plan uses exactly the slot count promised by Theorem 2."""
        return self.n_slots == theorem2_slot_bound(self.network.d, self.network.g)


class PermutationRouter:
    """Routes arbitrary permutations on a POPS(d, g) network per Theorem 2.

    Parameters
    ----------
    network:
        The POPS network to route on.
    backend:
        Edge-colouring backend used by the fair-distribution solver
        (``"konig"`` or ``"euler"``).
    verify:
        Forwarded to :class:`FairDistributionSolver`; when ``True`` the fair
        distribution is re-checked against its definition.
    """

    def __init__(self, network: POPSNetwork, backend: str = "konig", verify: bool = True):
        self.network = network
        self.solver = FairDistributionSolver(backend=backend, verify=verify)

    # -- public API ----------------------------------------------------------------

    def route(self, pi: Sequence[int]) -> RoutingPlan:
        """Produce a routing plan delivering packet ``i`` to processor ``pi[i]``."""
        network = self.network
        images = check_permutation(pi, network.n)
        packets = [Packet(source=i, destination=images[i]) for i in range(network.n)]

        if network.d == 1:
            schedule = self._route_d_equals_1(packets)
            plan = RoutingPlan(network, images, packets, schedule)
        else:
            system = ListSystem.from_permutation(images, network.d, network.g)
            distribution = self.solver.solve(system)
            schedule, intermediates = build_theorem2_schedule(
                network,
                packets,
                distribution,
                description=f"theorem2 router (backend={self.solver.backend})",
            )
            plan = RoutingPlan(
                network=network,
                permutation=images,
                packets=packets,
                schedule=schedule,
                fair_distribution=distribution,
                intermediate_assignment=intermediates,
            )

        expected = theorem2_slot_bound(network.d, network.g)
        if plan.n_slots != expected:
            raise RoutingError(
                f"internal error: produced {plan.n_slots} slots, Theorem 2 promises {expected}"
            )
        return plan

    def slots_required(self) -> int:
        """Slot count Theorem 2 guarantees on this router's network."""
        return theorem2_slot_bound(self.network.d, self.network.g)

    def route_compiled(
        self,
        pi: Sequence[int],
        *,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
    ) -> CompiledSchedule:
        """Route ``pi`` straight to compiled-schedule arrays.

        The array-native fast path of :meth:`route`: the fair distribution is
        solved on integer arrays (:meth:`~repro.routing.fair_distribution.
        FairDistributionSolver.solve_array`) and the Theorem 2 scatter/deliver
        structure is emitted directly as the per-slot arrays of a
        :class:`~repro.pops.engine.CompiledSchedule` — no ``Transmission`` /
        ``Reception`` / ``SlotProgram`` objects and no lowering pass.  The
        result is bit-identical to ``compile_schedule(network,
        plan.schedule, plan.packets)`` over this router's :meth:`route` plan:
        array backends (``"konig-array"``, ``"euler-array"``) take the array
        pipeline; other backends transparently fall back to routing
        object-level and compiling, so the method is safe for any backend.

        ``cache_key`` extends the compiled-schedule cache to the *plan*
        stage: under the usual deterministic-router contract
        (:func:`repro.analysis.metrics.routing_cache_key`), a hit skips route
        construction entirely, not just lowering.  ``cache`` overrides the
        process-wide cache.
        """
        store = None
        if cache_key is not None:
            from repro.pops.engine import schedule_cache

            store = cache if cache is not None else schedule_cache()
            compiled = store.get(cache_key)
            if compiled is not None:
                return compiled
        with get_tracer().span("route.plan", backend=self.solver.backend):
            compiled = self._route_compiled_uncached(pi)
        if store is not None:
            store.put(cache_key, compiled)
        return compiled

    def route_compiled_batch(
        self,
        pis,
        *,
        cache_key: Hashable | None = None,
        cache: ScheduleCache | None = None,
        validate: bool = True,
    ) -> CompiledScheduleBatch:
        """Route a ``(B, n)`` permutation stack to one compiled batch.

        The megabatch pipeline: one validation pass, one batched fair
        distribution, one batched plan assembly — per-call Python overhead is
        paid once for ``B`` permutations instead of ``B`` times.
        ``element(b)`` of the result is bit-identical to
        ``route_compiled(pis[b])``.

        ``cache_key`` caches the whole batch under one entry (use
        :func:`repro.analysis.metrics.routing_cache_key_batch`, which covers
        batch membership and order); there is no per-element cache fill.
        ``validate=False`` skips the permutation-stack check for callers that
        already hold the validated int64 image stack.
        """
        store = None
        if cache_key is not None:
            from repro.pops.engine import schedule_cache

            store = cache if cache is not None else schedule_cache()
            compiled = store.get(cache_key)
            if compiled is not None:
                return compiled
        with get_tracer().span("route.plan", backend=self.solver.backend):
            compiled = self._route_compiled_batch_uncached(pis, validate=validate)
        if store is not None:
            store.put(cache_key, compiled)
        return compiled

    # -- array-native plan construction --------------------------------------------

    def _route_compiled_uncached(self, pi: Sequence[int]) -> CompiledSchedule:
        images = check_permutation_array(pi, self.network.n)
        return self._route_compiled_batch_uncached(images[None, :]).element(0)

    def _route_compiled_batch_uncached(
        self, pis, *, validate: bool = True
    ) -> CompiledScheduleBatch:
        from repro.graph.array_coloring import ARRAY_COLORING_KERNELS

        network = self.network
        d, g = network.d, network.g
        images = (
            check_permutation_stack(pis, network.n)
            if validate
            else np.asarray(pis, dtype=np.int64)
        )

        if d > 1 and self.solver.backend not in ARRAY_COLORING_KERNELS:
            return self._stack_object_plans(images)

        if d == 1:
            compiled = _compile_d1_plan_batch(network, images)
        else:
            fair = self.solver.solve_array_batch(
                destination_group_lists_stack(images, d, g), g if d <= g else d
            )
            fair_value = fair.reshape(images.shape)
            if d <= g:
                compiled = _compile_two_slot_plan_batch(network, images, fair_value)
            else:
                compiled = _compile_round_plan_batch(network, images, fair_value)

        expected = theorem2_slot_bound(d, g)
        if compiled.n_slots != expected:
            raise RoutingError(
                f"internal error: produced {compiled.n_slots} slots, "
                f"Theorem 2 promises {expected}"
            )
        return compiled

    def _stack_object_plans(self, images: np.ndarray) -> CompiledScheduleBatch:
        """Non-array-backend fallback: route each element object-level, lower,
        and stack the compiled planes over the shared CSR structure.

        Theorem 2 plans of a fixed (d, g) share their slot segmentation, so
        the per-element compiled schedules always agree on the ``*_ptr`` /
        idle arrays; a mismatch would mean the router emitted a structurally
        different plan and is reported as an internal error.
        """
        from repro.pops.engine import CompiledScheduleBatch, compile_schedule

        network = self.network
        elements = []
        for b in range(images.shape[0]):
            plan = self.route(images[b].tolist())
            elements.append(
                compile_schedule(network, plan.schedule, plan.packets)
            )
        first = elements[0]
        for other in elements[1:]:
            if first.n_slots != other.n_slots or not all(
                np.array_equal(getattr(first, name), getattr(other, name))
                for name in (
                    "tx_ptr", "pay_ptr", "del_ptr", "con_ptr",
                    "idle_receiver", "idle_coupler",
                )
            ):
                raise RoutingError(
                    "internal error: per-element plans disagree on the shared "
                    "slot structure; cannot stack them into a batch"
                )
        return CompiledScheduleBatch(
            network=network,
            n_batch=len(elements),
            n_slots=first.n_slots,
            tx_sender=np.stack([e.tx_sender for e in elements]),
            tx_packet=np.stack([e.tx_packet for e in elements]),
            tx_ptr=first.tx_ptr,
            pay_coupler=np.stack([e.pay_coupler for e in elements]),
            pay_packet=np.stack([e.pay_packet for e in elements]),
            pay_ptr=first.pay_ptr,
            del_receiver=np.stack([e.del_receiver for e in elements]),
            del_packet=np.stack([e.del_packet for e in elements]),
            del_ptr=first.del_ptr,
            con_packet=np.stack([e.con_packet for e in elements]),
            con_ptr=first.con_ptr,
            idle_receiver=first.idle_receiver,
            idle_coupler=first.idle_coupler,
            initial_loc=np.stack([e.initial_loc for e in elements]),
            pk_destination=np.stack([e.pk_destination for e in elements]),
        )

    # -- case d == 1 --------------------------------------------------------------------

    def _route_d_equals_1(self, packets: list[Packet]) -> RoutingSchedule:
        """POPS(1, n) is a fully connected network: one direct slot suffices."""
        network = self.network
        schedule = RoutingSchedule(network=network, description="theorem2:d=1 direct")
        slot = schedule.new_slot()
        for packet in packets:
            source_group = network.group_of(packet.source)
            dest_group = network.group_of(packet.destination)
            coupler = network.coupler(dest_group, source_group)
            slot.add_transmission(packet.source, coupler, packet)
            slot.add_reception(packet.destination, coupler)
        return schedule


# -- batched plan builders ----------------------------------------------------------
#
# Module-level so the specialised routers (e.g. the blocked-permutation router,
# which computes its fair values in closed form) can reuse the Theorem 2 plan
# assembly with their own fair-value planes.  All builders take (B, n) image
# stacks, validate vectorized with row-major first-offender reporting (the
# raised message is exactly what routing the offending element alone would
# raise), and emit one CompiledScheduleBatch over the shared CSR structure.


def _compile_d1_plan_batch(
    network: POPSNetwork, images: np.ndarray
) -> CompiledScheduleBatch:
    """Batched d == 1 plan: POPS(1, n) is fully connected, one direct slot."""
    from repro.pops.lowering import assemble_compiled_plan_batch

    g = network.g
    n = network.n
    src = np.arange(n, dtype=np.int64)
    dest = images
    return assemble_compiled_plan_batch(
        network,
        images.shape[0],
        tx_sender=src,
        tx_packet=src,
        tx_coupler=dest * g + src,
        tx_counts=[n],
        del_receiver=dest,
        del_packet=src,
        del_counts=[n],
        initial_loc=src,
        pk_destination=dest,
    )


def _compile_two_slot_plan_batch(
    network: POPSNetwork, images: np.ndarray, fair_value: np.ndarray
) -> CompiledScheduleBatch:
    """Batched twin of :func:`~repro.routing.two_hop.build_two_slot_schedule`.

    ``fair_value`` is the ``(B, n)`` plane of intermediate groups (the fair
    distribution flattened over processors).
    """
    from repro.pops.lowering import assemble_compiled_plan_batch

    d, g = network.d, network.g
    n = network.n
    n_batch = images.shape[0]
    src = np.arange(n, dtype=np.int64)
    source_group = src // d
    dest = images
    dest_group = dest // d

    invalid = (fair_value < 0) | (fair_value >= g)
    if invalid.any():
        b, p = np.unravel_index(int(np.argmax(invalid)), invalid.shape)
        raise RoutingError(
            f"fair value {int(fair_value[b, p])} for processor "
            f"{int(p)} is not a group"
        )
    offsets = (np.arange(n_batch, dtype=np.int64) * g)[:, None]
    arrivals = np.bincount(
        (fair_value + offsets).ravel(), minlength=n_batch * g
    ).reshape(n_batch, g)
    unbalanced = arrivals != d
    if unbalanced.any():
        b, j = np.unravel_index(int(np.argmax(unbalanced)), unbalanced.shape)
        raise RoutingError(
            f"intermediate group {int(j)} receives {int(arrivals[b, j])} packets, "
            f"expected exactly d={d} (fair-distribution condition 2 violated)"
        )
    # Scatter: processor (h, i) drives c(f(h, i), h); the receiver in group j
    # for the packet from group h is processor (j, rank of h), i.e. sorting
    # sources by (f, h) lines receivers up as 0..n-1 — per batch row.
    scatter_coupler = fair_value * g + source_group
    scatter_order = np.argsort(
        shrink_sort_key(scatter_coupler, g * g - 1), axis=1, kind="stable"
    )
    # One flat index drives both the sorted-coupler gather and the holder
    # scatter (np.put cycles the identity row across the batch).
    flat_order = (
        scatter_order + (np.arange(n_batch, dtype=np.int64) * n)[:, None]
    ).ravel()
    sorted_coupler = scatter_coupler.ravel()[flat_order].reshape(n_batch, n)
    duplicate = sorted_coupler[:, 1:] == sorted_coupler[:, :-1]
    if duplicate.any():
        b, p = np.unravel_index(int(np.argmax(duplicate)), duplicate.shape)
        j = int(sorted_coupler[b, p]) // g
        raise RoutingError(
            f"intermediate group {j} receives two packets from the "
            "same source group (fair-distribution condition 1 violated)"
        )
    src_plane = np.broadcast_to(src, (n_batch, n))
    holder = np.empty((n_batch, n), dtype=np.int64)
    np.put(holder, flat_order, src)

    # Deliver (Fact 1): the holder's group is the fair value.
    deliver_coupler = dest_group * g + fair_value
    sorted_deliver = np.sort(shrink_sort_key(deliver_coupler, g * g - 1), axis=1)
    clash = sorted_deliver[:, 1:] == sorted_deliver[:, :-1]
    if clash.any():
        b, p = np.unravel_index(int(np.argmax(clash)), clash.shape)
        key = int(sorted_deliver[b, p])
        raise RoutingError(
            f"delivery slot needs coupler c({key // g}, {key % g}) twice; "
            "the packets were not fairly distributed after the scatter slot"
        )

    return assemble_compiled_plan_batch(
        network,
        n_batch,
        tx_sender=np.concatenate((src_plane, holder), axis=1),
        tx_packet=np.concatenate((src, src)),
        tx_coupler=np.concatenate((scatter_coupler, deliver_coupler), axis=1),
        tx_counts=[n, n],
        del_receiver=np.concatenate((src_plane, dest), axis=1),
        del_packet=np.concatenate((scatter_order, src_plane), axis=1),
        del_counts=[n, n],
        initial_loc=src,
        pk_destination=dest,
    )


def _compile_round_plan_batch(
    network: POPSNetwork, images: np.ndarray, fair_value: np.ndarray
) -> CompiledScheduleBatch:
    """Batched twin of :func:`~repro.routing.two_hop.build_round_schedule`.

    ``fair_value`` is the ``(B, n)`` plane of fair values in ``N_d``; round
    ``k`` moves the packets whose value lies in ``[k·g, (k+1)·g)``.
    """
    from repro.pops.lowering import assemble_compiled_plan_batch

    d, g = network.d, network.g
    n = network.n
    n_batch = images.shape[0]
    src = np.arange(n, dtype=np.int64)
    source_group = src // d
    dest = images
    dest_group = dest // d

    invalid = (fair_value < 0) | (fair_value >= d)
    if invalid.any():
        b, p = np.unravel_index(int(np.argmax(invalid)), invalid.shape)
        raise RoutingError(
            f"fair value {int(fair_value[b, p])} for processor "
            f"{int(p)} is outside N_d"
        )
    injective_key = np.sort(
        shrink_sort_key(source_group * d + fair_value, n - 1), axis=1
    )
    duplicate = injective_key[:, 1:] == injective_key[:, :-1]
    if duplicate.any():
        b, p = np.unravel_index(int(np.argmax(duplicate)), duplicate.shape)
        key = int(injective_key[b, p])
        raise RoutingError(
            f"group {key // d} assigns fair value {key % d} twice "
            "(fair-distribution condition 1 violated)"
        )

    # Round k moves the packets with fair value in [k·g, (k+1)·g); the
    # within-round intermediate group is the value minus k·g.
    round_of = fair_value // g
    intermediate = fair_value % g
    n_rounds = (d + g - 1) // g
    order = np.argsort(
        shrink_sort_key(round_of, n_rounds - 1), axis=1, kind="stable"
    )
    members = order  # src[order] == order because src is the identity
    # One flat gather index serves every member plane.
    flat_order = (
        order + (np.arange(n_batch, dtype=np.int64) * n)[:, None]
    ).ravel()
    member_ig = intermediate.ravel()[flat_order].reshape(n_batch, n)
    member_group = source_group[order]
    member_destg = dest_group.ravel()[flat_order].reshape(n_batch, n)
    holders = member_ig * d + member_group

    # The injectivity check above makes each group's fair values a bijection
    # onto N_d, so after the stable sort the round plane is the shared row
    # ``repeat(k, g * min(g, d - k*g))`` — no gather needed.
    counts = [g * min(g, d - k * g) for k in range(n_rounds)]
    member_round = np.repeat(np.arange(n_rounds, dtype=np.int64), counts)

    g2 = g * g
    scatter_coupler = member_ig * g + member_group
    scatter_key = member_round[None, :] * g2 + scatter_coupler
    sorted_scatter = np.sort(shrink_sort_key(scatter_key, n_rounds * g2 - 1), axis=1)
    clash = sorted_scatter[:, 1:] == sorted_scatter[:, :-1]
    if clash.any():
        b, p = np.unravel_index(int(np.argmax(clash)), clash.shape)
        key = int(sorted_scatter[b, p]) % g2
        raise RoutingError(
            f"two packets of one round share coupler c({key // g},{key % g}) "
            "(fair-distribution condition 2 violated)"
        )
    deliver_coupler = member_destg * g + member_ig
    deliver_key = member_round[None, :] * g2 + deliver_coupler
    sorted_deliver = np.sort(shrink_sort_key(deliver_key, n_rounds * g2 - 1), axis=1)
    clash = sorted_deliver[:, 1:] == sorted_deliver[:, :-1]
    if clash.any():
        b, p = np.unravel_index(int(np.argmax(clash)), clash.shape)
        key = int(sorted_deliver[b, p]) % g2
        raise RoutingError(
            f"delivery slot needs coupler c({key // g}, {key % g}) twice; "
            "the packets were not fairly distributed after the scatter slot"
        )

    bounds = np.concatenate(([0], np.cumsum(counts)))
    dest_of_members = dest.ravel()[flat_order].reshape(n_batch, n)
    tx_sender_parts: list[np.ndarray] = []
    tx_packet_parts: list[np.ndarray] = []
    tx_coupler_parts: list[np.ndarray] = []
    del_receiver_parts: list[np.ndarray] = []
    del_packet_parts: list[np.ndarray] = []
    slot_counts: list[int] = []
    for k in range(n_rounds):
        lo, hi = int(bounds[k]), int(bounds[k + 1])
        tx_sender_parts += [members[:, lo:hi], holders[:, lo:hi]]
        tx_packet_parts += [members[:, lo:hi], members[:, lo:hi]]
        tx_coupler_parts += [scatter_coupler[:, lo:hi], deliver_coupler[:, lo:hi]]
        del_receiver_parts += [holders[:, lo:hi], dest_of_members[:, lo:hi]]
        del_packet_parts += [members[:, lo:hi], members[:, lo:hi]]
        slot_counts += [hi - lo, hi - lo]

    return assemble_compiled_plan_batch(
        network,
        n_batch,
        tx_sender=np.concatenate(tx_sender_parts, axis=1),
        tx_packet=np.concatenate(tx_packet_parts, axis=1),
        tx_coupler=np.concatenate(tx_coupler_parts, axis=1),
        tx_counts=slot_counts,
        del_receiver=np.concatenate(del_receiver_parts, axis=1),
        del_packet=np.concatenate(del_packet_parts, axis=1),
        del_counts=slot_counts,
        initial_loc=src,
        pk_destination=dest,
    )
