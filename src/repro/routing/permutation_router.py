"""The universal permutation router (Theorem 2).

Given a POPS(d, g) network and a permutation ``π`` of its ``n = d·g``
processors, :class:`PermutationRouter` produces a
:class:`~repro.pops.schedule.RoutingSchedule` that delivers every packet using

* ``1`` slot when ``d = 1``;
* ``2`` slots when ``1 < d <= g``;
* ``2·⌈d/g⌉`` slots when ``d > g``

— exactly the bounds of Theorem 2.  The construction follows the paper's
proof: a proper list system is built from ``π`` (``L(h, i)`` is the destination
group of the ``i``-th packet of group ``h``), Theorem 1 yields a fair
distribution ``f`` (computed by edge-colouring a regular bipartite multigraph,
see :mod:`repro.routing.fair_distribution`), and the schedule scatters packets
to the intermediate groups dictated by ``f`` before delivering them directly in
a conflict-free slot (Fact 1).  The schedule construction itself is shared with
the specialised routers and lives in :mod:`repro.routing.two_hop`.

Implementation note (``d > g`` case).  The paper indexes each round's packets
by their position inside the source group (``i ∈ [k·g, (k+1)·g)``), while this
implementation routes in round ``k`` the packets whose *fair-distribution
value* lies in ``[k·g, (k+1)·g)`` and uses intermediate group
``f(h, i) - k·g``.  Because ``f(h, ·)`` is injective (condition 1) the two
indexings differ only by a per-group reordering of rounds; the value-window
form makes every claimed property immediate: per round and per source group
the intermediate groups are distinct (no transmit conflicts), per round each
intermediate group receives at most ``g`` packets on distinct couplers
(conditions 1–2), and two packets sharing a destination group never share an
intermediate group within a round (condition 3), so the delivery slot is
conflict-free.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.exceptions import RoutingError
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork
from repro.routing.fair_distribution import FairDistribution, FairDistributionSolver
from repro.routing.list_system import ListSystem
from repro.routing.two_hop import build_theorem2_schedule
from repro.utils.validation import check_permutation

__all__ = ["PermutationRouter", "RoutingPlan", "theorem2_slot_bound"]


def theorem2_slot_bound(d: int, g: int) -> int:
    """The slot count Theorem 2 guarantees for POPS(d, g): 1 if d == 1 else 2⌈d/g⌉."""
    if d == 1:
        return 1
    return 2 * ((d + g - 1) // g)


@dataclass
class RoutingPlan:
    """A fully materialised routing of one permutation.

    Attributes
    ----------
    network:
        The target POPS network.
    permutation:
        The routed permutation in one-line notation.
    packets:
        One packet per processor ``i`` with destination ``π(i)``.
    schedule:
        The slot-by-slot schedule implementing the routing.
    fair_distribution:
        The Theorem 1 fair distribution used (``None`` for the trivial
        ``d = 1`` case).
    intermediate_assignment:
        Mapping ``source processor -> intermediate group`` used by the scatter
        slot of the packet's round (empty for ``d = 1``).
    """

    network: POPSNetwork
    permutation: list[int]
    packets: list[Packet]
    schedule: RoutingSchedule
    fair_distribution: FairDistribution | None = None
    intermediate_assignment: dict[int, int] = field(default_factory=dict)

    @property
    def n_slots(self) -> int:
        """Number of slots the plan uses."""
        return self.schedule.n_slots

    @property
    def meets_theorem2_bound(self) -> bool:
        """True iff the plan uses exactly the slot count promised by Theorem 2."""
        return self.n_slots == theorem2_slot_bound(self.network.d, self.network.g)


class PermutationRouter:
    """Routes arbitrary permutations on a POPS(d, g) network per Theorem 2.

    Parameters
    ----------
    network:
        The POPS network to route on.
    backend:
        Edge-colouring backend used by the fair-distribution solver
        (``"konig"`` or ``"euler"``).
    verify:
        Forwarded to :class:`FairDistributionSolver`; when ``True`` the fair
        distribution is re-checked against its definition.
    """

    def __init__(self, network: POPSNetwork, backend: str = "konig", verify: bool = True):
        self.network = network
        self.solver = FairDistributionSolver(backend=backend, verify=verify)

    # -- public API ----------------------------------------------------------------

    def route(self, pi: Sequence[int]) -> RoutingPlan:
        """Produce a routing plan delivering packet ``i`` to processor ``pi[i]``."""
        network = self.network
        images = check_permutation(pi, network.n)
        packets = [Packet(source=i, destination=images[i]) for i in range(network.n)]

        if network.d == 1:
            schedule = self._route_d_equals_1(packets)
            plan = RoutingPlan(network, images, packets, schedule)
        else:
            system = ListSystem.from_permutation(images, network.d, network.g)
            distribution = self.solver.solve(system)
            schedule, intermediates = build_theorem2_schedule(
                network,
                packets,
                distribution,
                description=f"theorem2 router (backend={self.solver.backend})",
            )
            plan = RoutingPlan(
                network=network,
                permutation=images,
                packets=packets,
                schedule=schedule,
                fair_distribution=distribution,
                intermediate_assignment=intermediates,
            )

        expected = theorem2_slot_bound(network.d, network.g)
        if plan.n_slots != expected:
            raise RoutingError(
                f"internal error: produced {plan.n_slots} slots, Theorem 2 promises {expected}"
            )
        return plan

    def slots_required(self) -> int:
        """Slot count Theorem 2 guarantees on this router's network."""
        return theorem2_slot_bound(self.network.d, self.network.g)

    # -- case d == 1 --------------------------------------------------------------------

    def _route_d_equals_1(self, packets: list[Packet]) -> RoutingSchedule:
        """POPS(1, n) is a fully connected network: one direct slot suffices."""
        network = self.network
        schedule = RoutingSchedule(network=network, description="theorem2:d=1 direct")
        slot = schedule.new_slot()
        for packet in packets:
            source_group = network.group_of(packet.source)
            dest_group = network.group_of(packet.destination)
            coupler = network.coupler(dest_group, source_group)
            slot.add_transmission(packet.source, coupler, packet)
            slot.add_reception(packet.destination, coupler)
        return schedule
