"""Shared construction of two-hop (scatter → deliver) schedules.

Both the universal router of Theorem 2 and the specialised routers for
structured permutation families (group-blocked permutations, hypercube and
mesh simulation steps, vector reversal, …) produce the *same kind* of
schedule: every packet is assigned an intermediate value by some fair
distribution ``f`` — computed via edge colouring in the general case, by a
closed formula in the structured cases — and the schedule scatters packets to
the group encoded by that value before delivering them in a conflict-free slot
(Fact 1).  This module owns that construction so the routers only differ in
how they obtain ``f``.

Two shapes exist, mirroring the two non-trivial cases of Theorem 2's proof:

* ``d <= g`` — ``f`` maps into ``N_g``; one round of two slots moves all
  ``n`` packets (:func:`build_two_slot_schedule`).
* ``d > g`` — ``f`` maps into ``N_d``; round ``k`` moves the packets whose
  ``f`` value lies in ``[k·g, (k+1)·g)`` and uses intermediate group
  ``f - k·g`` (:func:`build_round_schedule`).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import RoutingError
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork

__all__ = [
    "FairValueFunction",
    "build_two_slot_schedule",
    "build_round_schedule",
    "build_theorem2_schedule",
]

#: ``f(group, local_index) -> intermediate value`` — the fair-distribution interface.
FairValueFunction = Callable[[int, int], int]


def build_two_slot_schedule(
    network: POPSNetwork,
    packets: list[Packet],
    fair_value: FairValueFunction,
    description: str = "two-hop (d<=g)",
) -> tuple[RoutingSchedule, dict[int, int]]:
    """Build the two-slot scatter/deliver schedule for the ``d <= g`` case.

    Parameters
    ----------
    network:
        Target POPS network with ``d <= g``.
    packets:
        One packet per processor, ``packets[p].source == p``.
    fair_value:
        A fair distribution into ``N_g``: for group ``h`` and local index ``i``
        it returns the intermediate group of the packet at processor
        ``h·d + i``.  Conditions (1)–(3) of the fair-distribution definition
        are assumed; violations are detected while building (conflicting
        coupler or unbalanced arrivals) and raise :class:`RoutingError`.

    Returns
    -------
    (schedule, intermediates)
        The two-slot schedule and the mapping ``source processor ->
        intermediate group``.
    """
    d, g = network.d, network.g
    if d > g:
        raise RoutingError(
            f"build_two_slot_schedule requires d <= g, got d={d}, g={g}"
        )
    schedule = RoutingSchedule(network=network, description=description)
    scatter = schedule.new_slot()
    deliver = schedule.new_slot()
    intermediates: dict[int, int] = {}

    arrivals: dict[int, list[tuple[int, Packet]]] = {j: [] for j in range(g)}
    for h in range(g):
        for i in range(d):
            source = network.processor(h, i)
            packet = packets[source]
            intermediate_group = fair_value(h, i)
            if not (0 <= intermediate_group < g):
                raise RoutingError(
                    f"fair value {intermediate_group} for processor {source} is not a group"
                )
            intermediates[source] = intermediate_group
            coupler = network.coupler(intermediate_group, h)
            scatter.add_transmission(source, coupler, packet)
            arrivals[intermediate_group].append((h, packet))

    holder_of_packet: dict[Packet, int] = {}
    for intermediate_group, incoming in arrivals.items():
        if len(incoming) != d:
            raise RoutingError(
                f"intermediate group {intermediate_group} receives {len(incoming)} packets, "
                f"expected exactly d={d} (fair-distribution condition 2 violated)"
            )
        source_groups = [source_group for source_group, _ in incoming]
        if len(set(source_groups)) != len(source_groups):
            raise RoutingError(
                f"intermediate group {intermediate_group} receives two packets from the "
                "same source group (fair-distribution condition 1 violated)"
            )
        incoming_in_order = sorted(incoming, key=lambda item: item[0])
        for local_index, (source_group, packet) in enumerate(incoming_in_order):
            holder = network.processor(intermediate_group, local_index)
            coupler = network.coupler(intermediate_group, source_group)
            scatter.add_reception(holder, coupler)
            holder_of_packet[packet] = holder

    _add_delivery_slot(network, deliver, packets, holder_of_packet)
    return schedule, intermediates


def build_round_schedule(
    network: POPSNetwork,
    packets: list[Packet],
    fair_value: FairValueFunction,
    description: str = "two-hop rounds (d>g)",
) -> tuple[RoutingSchedule, dict[int, int]]:
    """Build the ``⌈d/g⌉``-round schedule for the ``d > g`` case.

    ``fair_value`` must be a fair distribution into ``N_d``; round ``k`` moves
    the packets whose value lies in the window ``[k·g, (k+1)·g)`` and the
    intermediate group is the value minus ``k·g``.

    Returns
    -------
    (schedule, intermediates)
        The ``2⌈d/g⌉``-slot schedule and the mapping ``source processor ->
        intermediate group`` (the within-round group, not the raw value).
    """
    d, g = network.d, network.g
    if d <= g:
        raise RoutingError(
            f"build_round_schedule requires d > g, got d={d}, g={g}"
        )
    n_rounds = (d + g - 1) // g
    schedule = RoutingSchedule(network=network, description=description)
    intermediates: dict[int, int] = {}

    rounds: list[list[tuple[int, Packet, int]]] = [[] for _ in range(n_rounds)]
    for h in range(g):
        seen_values: set[int] = set()
        for i in range(d):
            source = network.processor(h, i)
            packet = packets[source]
            value = fair_value(h, i)
            if not (0 <= value < d):
                raise RoutingError(
                    f"fair value {value} for processor {source} is outside N_d"
                )
            if value in seen_values:
                raise RoutingError(
                    f"group {h} assigns fair value {value} twice "
                    "(fair-distribution condition 1 violated)"
                )
            seen_values.add(value)
            round_index, intermediate_group = divmod(value, g)
            rounds[round_index].append((h, packet, intermediate_group))
            intermediates[source] = intermediate_group

    for members in rounds:
        scatter = schedule.new_slot()
        deliver = schedule.new_slot()
        holder_of_packet: dict[Packet, int] = {}
        arrivals: dict[int, set[int]] = {}

        for h, packet, intermediate_group in members:
            coupler = network.coupler(intermediate_group, h)
            scatter.add_transmission(packet.source, coupler, packet)
            # The receiver in the intermediate group is the processor whose
            # local index equals the incoming source group; g <= d guarantees
            # it exists and injectivity of f per group guarantees uniqueness.
            holder = network.processor(intermediate_group, h)
            scatter.add_reception(holder, coupler)
            holder_of_packet[packet] = holder
            sources_seen = arrivals.setdefault(intermediate_group, set())
            if h in sources_seen:
                raise RoutingError(
                    f"two packets of one round share coupler c({intermediate_group},{h}) "
                    "(fair-distribution condition 2 violated)"
                )
            sources_seen.add(h)

        _add_delivery_slot(
            network, deliver, [packet for _, packet, _ in members], holder_of_packet
        )

    return schedule, intermediates


def build_theorem2_schedule(
    network: POPSNetwork,
    packets: list[Packet],
    fair_value: FairValueFunction,
    description: str = "theorem2",
) -> tuple[RoutingSchedule, dict[int, int]]:
    """Dispatch to the two-slot or round-based builder depending on d vs g."""
    if network.d <= network.g:
        return build_two_slot_schedule(network, packets, fair_value, description)
    return build_round_schedule(network, packets, fair_value, description)


def _add_delivery_slot(
    network: POPSNetwork,
    deliver,
    packets: list[Packet],
    holder_of_packet: dict[Packet, int],
) -> None:
    """Populate ``deliver`` with the Fact 1 direct delivery of ``packets``.

    Every packet travels from its current holder's group straight to its
    destination group; fairness of the preceding scatter guarantees no two
    packets need the same coupler.
    """
    couplers_seen: set[tuple[int, int]] = set()
    for packet in packets:
        holder = holder_of_packet[packet]
        holder_group = network.group_of(holder)
        dest_group = network.group_of(packet.destination)
        key = (dest_group, holder_group)
        if key in couplers_seen:
            raise RoutingError(
                f"delivery slot needs coupler c{key} twice; the packets were not "
                "fairly distributed after the scatter slot"
            )
        couplers_seen.add(key)
        coupler = network.coupler(dest_group, holder_group)
        deliver.add_transmission(holder, coupler, packet)
        deliver.add_reception(packet.destination, coupler)
