"""Routing h-relations: the many-packets-per-processor generalisation.

A (partial) *h-relation* is a set of packets in which every processor is the
source of at most ``h`` packets and the destination of at most ``h`` packets.
Permutation routing is the ``h = 1`` case; all-to-all personalised exchange is
the ``h = n - 1`` case.  The paper only treats permutations, but its Theorem 2
composes naturally: by König's edge-colouring theorem the packet multigraph
(sources × destinations, one edge per packet) decomposes into ``h`` partial
permutations, and each of those routes in at most ``2⌈d/g⌉`` slots (1 slot
when ``d = 1``) after being completed to a full permutation.  The resulting
bound is ``h`` slots for ``d = 1`` and ``2h⌈d/g⌉`` slots otherwise.

This module is an *extension* of the paper (documented as such in DESIGN.md):
it exercises the same machinery — edge colouring, fair distributions, the
two-hop schedule — on a strictly larger problem class and backs the
all-to-all / gather / scatter collectives in :mod:`repro.algorithms.alltoall`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import RoutingError, ValidationError
from repro.graph.degree_coloring import edge_color_bounded
from repro.graph.multigraph import BipartiteMultigraph
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule
from repro.pops.topology import POPSNetwork
from repro.routing.permutation_router import PermutationRouter, theorem2_slot_bound

__all__ = ["HRelation", "HRelationRouter", "h_relation_slot_bound"]


def h_relation_slot_bound(d: int, g: int, h: int) -> int:
    """Slots the decomposition approach guarantees for an h-relation on POPS(d, g)."""
    return h * theorem2_slot_bound(d, g)


@dataclass(frozen=True)
class HRelation:
    """A validated h-relation: a multiset of packets with bounded fan-in/out.

    Attributes
    ----------
    network:
        The POPS network the relation lives on.
    packets:
        The packets to route (any number per source, possibly duplicated
        destinations across different sources).
    h:
        The relation's degree: the maximum, over processors, of packets sent
        or received.
    """

    network: POPSNetwork
    packets: tuple[Packet, ...]
    h: int

    @classmethod
    def from_packets(
        cls, network: POPSNetwork, packets: Sequence[Packet]
    ) -> "HRelation":
        """Validate ``packets`` and compute the relation degree ``h``."""
        out_degree = [0] * network.n
        in_degree = [0] * network.n
        for packet in packets:
            if not (0 <= packet.source < network.n):
                raise ValidationError(f"{packet!r} has an out-of-range source")
            if not (0 <= packet.destination < network.n):
                raise ValidationError(f"{packet!r} has an out-of-range destination")
            out_degree[packet.source] += 1
            in_degree[packet.destination] += 1
        h = max(max(out_degree, default=0), max(in_degree, default=0))
        return cls(network=network, packets=tuple(packets), h=h)

    def traffic_graph(self) -> BipartiteMultigraph:
        """The packet multigraph: one edge per packet, sources left, destinations right."""
        graph = BipartiteMultigraph(self.network.n, self.network.n)
        for packet in self.packets:
            graph.add_edge(packet.source, packet.destination)
        return graph

    def __len__(self) -> int:
        return len(self.packets)


@dataclass
class HRelationPlan:
    """The materialised routing of one h-relation."""

    relation: HRelation
    schedule: RoutingSchedule
    rounds: list[list[Packet]]

    @property
    def n_slots(self) -> int:
        """Total slots used."""
        return self.schedule.n_slots

    @property
    def n_rounds(self) -> int:
        """Number of partial permutations the relation was decomposed into."""
        return len(self.rounds)


class HRelationRouter:
    """Routes h-relations by colouring the traffic graph and routing each colour class.

    Parameters
    ----------
    network:
        The POPS network to route on.
    backend:
        Edge-colouring backend used both for the relation decomposition and
        for the per-round fair distributions.
    """

    def __init__(self, network: POPSNetwork, backend: str = "konig"):
        self.network = network
        self.backend = backend
        self._permutation_router = PermutationRouter(network, backend=backend, verify=False)

    # -- public API ------------------------------------------------------------

    def route_packets(self, packets: Sequence[Packet]) -> HRelationPlan:
        """Route an arbitrary packet set satisfying the h-relation constraints."""
        relation = HRelation.from_packets(self.network, packets)
        return self.route(relation)

    def route(self, relation: HRelation) -> HRelationPlan:
        """Route a validated h-relation.

        The schedule concatenates one permutation routing per colour class of
        the traffic graph; packets whose source equals their destination are
        never transmitted.
        """
        if relation.network != self.network:
            raise RoutingError("relation was built for a different network")
        if len(relation) == 0:
            return HRelationPlan(
                relation=relation,
                schedule=RoutingSchedule(network=self.network, description="empty h-relation"),
                rounds=[],
            )

        coloring = edge_color_bounded(relation.traffic_graph(), backend=self.backend)

        # Colour classes are matchings; assign each *packet instance* to the
        # round of one of its edge's colours (parallel packets take successive
        # colours of that edge).
        colors_of_edge = coloring.as_edge_map()
        cursor: dict[tuple[int, int], int] = {}
        rounds: list[list[Packet]] = [[] for _ in range(coloring.n_colors)]
        for packet in relation.packets:
            edge = (packet.source, packet.destination)
            index = cursor.get(edge, 0)
            cursor[edge] = index + 1
            rounds[colors_of_edge[edge][index]].append(packet)

        schedule = RoutingSchedule(
            network=self.network,
            description=f"h-relation (h={relation.h}) via {coloring.n_colors} rounds",
        )
        kept_rounds: list[list[Packet]] = []
        for members in rounds:
            moving = [p for p in members if p.source != p.destination]
            if not moving:
                if members:
                    kept_rounds.append(members)
                continue
            schedule.extend(self._route_round(moving))
            kept_rounds.append(members)

        return HRelationPlan(relation=relation, schedule=schedule, rounds=kept_rounds)

    # -- internals -----------------------------------------------------------------

    def _route_round(self, packets: list[Packet]) -> RoutingSchedule:
        """Route one partial permutation (a matching of the traffic graph).

        The matching is completed to a full permutation on the network's
        processors; filler packets are synthesised for the unused sources so
        the universal router can be reused verbatim, and their transmissions
        are kept in the schedule (they are harmless: every processor still
        sends/receives at most one packet per slot).
        """
        network = self.network
        sources_used = {p.source for p in packets}
        destinations_used = {p.destination for p in packets}
        free_sources = [v for v in network.processors() if v not in sources_used]
        free_destinations = [v for v in network.processors() if v not in destinations_used]
        if len(free_sources) != len(free_destinations):
            raise RoutingError("matching completion failed: unbalanced free endpoints")

        pi = [0] * network.n
        for packet in packets:
            pi[packet.source] = packet.destination
        # Prefer keeping a free processor's filler packet at home when possible
        # so filler traffic does not inflate coupler contention unnecessarily.
        stay_home = [v for v in free_sources if v in set(free_destinations)]
        remaining_sources = [v for v in free_sources if v not in set(stay_home)]
        remaining_destinations = [v for v in free_destinations if v not in set(stay_home)]
        for vertex in stay_home:
            pi[vertex] = vertex
        for source, destination in zip(remaining_sources, remaining_destinations):
            pi[source] = destination

        plan = self._permutation_router.route(pi)
        return _strip_filler(plan.schedule, set(packets))


def _strip_filler(schedule: RoutingSchedule, real_packets: set[Packet]) -> RoutingSchedule:
    """Remove filler-packet traffic from a permutation schedule.

    The universal router routes a *completed* permutation, so its schedule
    mentions synthetic packets for processors that have nothing to send in
    this round.  Within a slot each coupler carries exactly one packet, so a
    transmission is dropped iff its packet is synthetic and a reception is
    dropped iff the coupler it reads carries no real packet; real packets'
    paths are untouched.
    """
    stripped = RoutingSchedule(network=schedule.network, description=schedule.description)
    for slot in schedule.slots:
        new_slot = stripped.new_slot()
        real_couplers = set()
        for transmission in slot.transmissions:
            if transmission.packet in real_packets:
                new_slot.transmissions.append(transmission)
                real_couplers.add(transmission.coupler)
        for reception in slot.receptions:
            if reception.coupler in real_couplers:
                new_slot.receptions.append(reception)
    return stripped
