"""Lower bounds on permutation routing (Propositions 1–3).

The paper complements Theorem 2 with three lower bounds:

* **Proposition 1** — if ``π(i) != i`` for all ``i`` (a derangement), at least
  ``⌈d/g⌉`` slots are needed, because every one of the ``n`` packets must move
  and at most ``g²`` packets move per slot.
* **Proposition 2** — if additionally ``group(i) != group(π(i))`` for all ``i``
  and the permutation is *group-blocked* (processors of one group all map into
  a single group), ``2⌈d/g⌉`` slots are needed, so Theorem 2 is optimal on that
  class (vector reversal with even ``g`` is the canonical example).
* **Proposition 3** — for fixed-point-free group-blocked permutations that may
  keep some groups in place, at least ``2⌈d/(1+g)⌉`` slots are needed.

This module provides the classification predicates and the numeric bounds; the
benchmark ``bench_lower_bounds`` compares them with the slots the router
actually uses.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import ceil

import numpy as np

from repro.pops.topology import POPSNetwork
from repro.utils.permutations import is_derangement
from repro.utils.validation import check_permutation, check_permutation_stack

__all__ = [
    "is_group_moving",
    "is_group_blocked",
    "proposition1_lower_bound",
    "proposition2_lower_bound",
    "proposition3_lower_bound",
    "best_known_lower_bound",
    "best_known_lower_bound_stack",
]


def is_group_moving(network: POPSNetwork, pi: Sequence[int]) -> bool:
    """True iff every packet changes group: ``group(i) != group(π(i))`` for all ``i``."""
    images = check_permutation(pi, network.n)
    return all(
        network.group_of(i) != network.group_of(images[i]) for i in range(network.n)
    )


def is_group_blocked(network: POPSNetwork, pi: Sequence[int]) -> bool:
    """True iff processors of a group all map into a single destination group.

    This is the hypothesis ``group(i) = group(j) ⇒ group(π(i)) = group(π(j))``
    of Propositions 2 and 3.
    """
    images = check_permutation(pi, network.n)
    for group in network.groups():
        processors = network.processors_in_group(group)
        dest_groups = {network.group_of(images[p]) for p in processors}
        if len(dest_groups) != 1:
            return False
    return True


def proposition1_lower_bound(network: POPSNetwork, pi: Sequence[int]) -> int | None:
    """Lower bound ``⌈d/g⌉`` of Proposition 1, or ``None`` if ``pi`` has a fixed point."""
    images = check_permutation(pi, network.n)
    if not is_derangement(images):
        return None
    return ceil(network.d / network.g)


def proposition2_lower_bound(network: POPSNetwork, pi: Sequence[int]) -> int | None:
    """Lower bound ``2⌈d/g⌉`` of Proposition 2, or ``None`` if the hypotheses fail.

    Hypotheses: every packet changes group, and the permutation is
    group-blocked.  The counting argument additionally requires ``d > 1``
    (with a single processor per group every packet can be delivered directly
    in one slot, matching Theorem 2's ``d = 1`` case), so the bound is not
    applied to ``d = 1`` networks.
    """
    images = check_permutation(pi, network.n)
    if network.d == 1:
        return None
    if not (is_group_moving(network, images) and is_group_blocked(network, images)):
        return None
    return 2 * ceil(network.d / network.g)


def proposition3_lower_bound(network: POPSNetwork, pi: Sequence[int]) -> int | None:
    """Lower bound ``2⌈d/(1+g)⌉`` of Proposition 3, or ``None`` if the hypotheses fail.

    Hypotheses: ``π`` is a derangement and group-blocked (packets may stay in
    their own group, unlike Proposition 2).  As with Proposition 2 the
    argument requires ``d > 1``.
    """
    images = check_permutation(pi, network.n)
    if network.d == 1:
        return None
    if not (is_derangement(images) and is_group_blocked(network, images)):
        return None
    return 2 * ceil(network.d / (1 + network.g))


def best_known_lower_bound(network: POPSNetwork, pi: Sequence[int]) -> int:
    """The tightest applicable bound among Propositions 1–3 (0 when none applies)."""
    bounds = [
        proposition1_lower_bound(network, pi),
        proposition2_lower_bound(network, pi),
        proposition3_lower_bound(network, pi),
    ]
    applicable = [bound for bound in bounds if bound is not None]
    # Routing a non-identity permutation always needs at least one slot.
    images = check_permutation(pi, network.n)
    if any(images[i] != i for i in range(network.n)):
        applicable.append(1)
    return max(applicable, default=0)


def best_known_lower_bound_stack(
    network: POPSNetwork, pis, *, validate: bool = True
) -> np.ndarray:
    """Batched :func:`best_known_lower_bound` over a ``(B, n)`` stack.

    Returns a ``(B,)`` int64 array; entry ``b`` equals
    ``best_known_lower_bound(network, pis[b])``.  The Proposition 1–3
    predicates become axis reductions over the stack.  ``validate=False``
    skips the permutation-stack check for callers that already hold the
    validated int64 image stack.
    """
    images = (
        check_permutation_stack(pis, network.n)
        if validate
        else np.asarray(pis, dtype=np.int64)
    )
    d, g = network.d, network.g
    src = np.arange(network.n, dtype=np.int64)
    moving = images != src
    nonidentity = moving.any(axis=1)
    derangement = moving.all(axis=1)
    src_group = src // d
    dest_group = images // d
    group_moving = (dest_group != src_group).all(axis=1)
    blocks = dest_group.reshape(-1, g, d)
    group_blocked = (blocks == blocks[:, :, :1]).all(axis=(1, 2))
    bounds = np.where(nonidentity, 1, 0).astype(np.int64)
    bounds = np.where(derangement, np.maximum(bounds, ceil(d / g)), bounds)
    if d > 1:
        bounds = np.where(
            group_moving & group_blocked,
            np.maximum(bounds, 2 * ceil(d / g)),
            bounds,
        )
        bounds = np.where(
            derangement & group_blocked,
            np.maximum(bounds, 2 * ceil(d / (1 + g))),
            bounds,
        )
    return bounds
