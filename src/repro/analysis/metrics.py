"""Routing metrics: slot counts, bound ratios, coupler utilisation.

These helpers wrap "route the permutation, simulate the schedule, verify
delivery, and summarise" into one call, so experiments never accidentally
report slot counts of schedules that were not actually validated end to end.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.routing.lower_bounds import best_known_lower_bound
from repro.routing.permutation_router import (
    PermutationRouter,
    theorem2_slot_bound,
)

__all__ = [
    "RoutingMetrics",
    "measure_routing",
    "routing_cache_key",
    "slots_vs_bound",
    "coupler_utilisation",
]


@dataclass(frozen=True)
class RoutingMetrics:
    """Summary of one verified permutation routing."""

    d: int
    g: int
    n: int
    slots: int
    theorem2_bound: int
    lower_bound: int
    couplers_used_total: int
    mean_coupler_utilisation: float

    @property
    def meets_theorem2_bound(self) -> bool:
        """True iff the measured slot count equals Theorem 2's guarantee."""
        return self.slots == self.theorem2_bound

    @property
    def optimality_ratio(self) -> float:
        """Measured slots divided by the best applicable lower bound (inf if no bound)."""
        if self.lower_bound == 0:
            return float("inf")
        return self.slots / self.lower_bound


def routing_cache_key(
    backend: str, network: POPSNetwork, pi: Sequence[int]
) -> tuple[str, int, int, bytes]:
    """Compiled-schedule cache key for routing ``pi`` on ``network``.

    Sound because the router is deterministic: ``(backend, d, g,
    permutation)`` fully determines the schedule.  The permutation is folded
    into a 16-byte blake2b digest rather than stored as an n-length tuple, so
    keys stay small even at n in the tens of thousands.
    """
    digest = hashlib.blake2b(
        np.asarray(pi, dtype=np.int64).tobytes(), digest_size=16
    ).digest()
    return (backend, network.d, network.g, digest)


def measure_routing(
    network: POPSNetwork,
    pi: Sequence[int],
    backend: str = "konig",
    verify: bool = True,
    sim_backend: str = "reference",
    use_cache: bool = True,
) -> RoutingMetrics:
    """Route ``pi`` with the universal router, simulate, verify, and summarise.

    ``backend`` selects the edge-colouring backend of the router;
    ``sim_backend`` selects the simulator backend (``"reference"`` or the
    vectorized ``"batched"`` engine — see :mod:`repro.pops.engine`).  On the
    batched backend the trace stays compiled (integer arrays; statistics are
    numpy reductions) and, with ``use_cache`` (the default), the lowered
    schedule is cached under ``(router backend, d, g, permutation)`` — sound
    because the router is deterministic — so repeated measurements of the
    same permutation skip lowering.  Hits come from re-measuring the same
    permutation in one process: repeated sweeps with the same seed, named
    families, benchmark loops.  A single sweep of *fresh* random
    permutations is all misses by design (no sound key could collapse
    distinct permutations), which the ``--cache-stats`` counters make
    visible; the cache's byte bound keeps that case cheap.
    """
    router = PermutationRouter(network, backend=backend, verify=verify)
    plan = router.route(pi)
    simulator = POPSSimulator(network, backend=sim_backend)
    cache_key = (
        routing_cache_key(backend, network, plan.permutation)
        if use_cache and sim_backend == "batched"
        else None
    )
    result = simulator.route_and_verify(
        plan.schedule, plan.packets, cache_key=cache_key
    )
    return RoutingMetrics(
        d=network.d,
        g=network.g,
        n=network.n,
        slots=plan.n_slots,
        theorem2_bound=theorem2_slot_bound(network.d, network.g),
        lower_bound=best_known_lower_bound(network, pi),
        couplers_used_total=result.trace.total_packets_moved,
        mean_coupler_utilisation=result.trace.mean_coupler_utilisation(
            network.n_couplers
        ),
    )


def slots_vs_bound(network: POPSNetwork, slots: int) -> float:
    """Ratio of measured slots to Theorem 2's bound for ``network``."""
    return slots / theorem2_slot_bound(network.d, network.g)


def coupler_utilisation(network: POPSNetwork, pi: Sequence[int], backend: str = "konig") -> float:
    """Mean fraction of couplers busy per slot for the routed permutation."""
    return measure_routing(network, pi, backend=backend).mean_coupler_utilisation
