"""Routing metrics: slot counts, bound ratios, coupler utilisation.

These helpers wrap "route the permutation, simulate the schedule, verify
delivery, and summarise" into one call, so experiments never accidentally
report slot counts of schedules that were not actually validated end to end.

The supported entry point is :meth:`repro.api.session.Session.route`.  (The
``measure_routing`` free function deprecated in 1.1 was removed in 1.2, per
the one-release timeline.)
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.obs import get_tracer
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.routing.lower_bounds import best_known_lower_bound
from repro.routing.permutation_router import (
    PermutationRouter,
    theorem2_slot_bound,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pops.engine import ScheduleCache

__all__ = [
    "RoutingMetrics",
    "routing_cache_key",
    "routing_cache_key_batch",
    "slots_vs_bound",
    "coupler_utilisation",
]


@dataclass(frozen=True)
class RoutingMetrics:
    """Summary of one verified permutation routing."""

    d: int
    g: int
    n: int
    slots: int
    theorem2_bound: int
    lower_bound: int
    couplers_used_total: int
    mean_coupler_utilisation: float

    @property
    def meets_theorem2_bound(self) -> bool:
        """True iff the measured slot count equals Theorem 2's guarantee."""
        return self.slots == self.theorem2_bound

    @property
    def optimality_ratio(self) -> float:
        """Measured slots divided by the best applicable lower bound (inf if no bound)."""
        if self.lower_bound == 0:
            return float("inf")
        return self.slots / self.lower_bound

    def to_dict(self) -> dict[str, Any]:
        """All fields plus the derived properties, as a JSON-ready dict.

        An infinite ``optimality_ratio`` (no applicable lower bound) encodes
        as ``None`` — strict JSON has no ``Infinity``.
        """
        from repro.api.serialize import to_jsonable

        ratio = self.optimality_ratio
        return {
            "d": self.d,
            "g": self.g,
            "n": self.n,
            "slots": self.slots,
            "theorem2_bound": self.theorem2_bound,
            "lower_bound": self.lower_bound,
            "couplers_used_total": to_jsonable(self.couplers_used_total),
            "mean_coupler_utilisation": to_jsonable(self.mean_coupler_utilisation),
            "meets_theorem2_bound": self.meets_theorem2_bound,
            "optimality_ratio": to_jsonable(ratio),
        }


def routing_cache_key(
    backend: str, network: POPSNetwork, pi: Sequence[int]
) -> tuple[str, int, int, bytes]:
    """Compiled-schedule cache key for routing ``pi`` on ``network``.

    Sound because the router is deterministic: ``(backend, d, g,
    permutation)`` fully determines the schedule.  The permutation is folded
    into a 16-byte blake2b digest rather than stored as an n-length tuple, so
    keys stay small even at n in the tens of thousands.

    This tuple is also the *persistent* identity of a compiled plan: the
    on-disk :class:`~repro.pops.plan_store.PlanStore` addresses its blobs by
    a digest of exactly this key (see
    :func:`repro.pops.plan_store.plan_key_digest`), so its stability across
    processes, platforms and Python versions is part of the contract —
    changing its shape invalidates every warm store and requires a
    ``STORE_SCHEMA_VERSION`` bump.
    """
    digest = hashlib.blake2b(
        np.asarray(pi, dtype=np.int64).tobytes(), digest_size=16
    ).digest()
    return (backend, network.d, network.g, digest)


def routing_cache_key_batch(
    backend: str, network: POPSNetwork, pis
) -> tuple[str, int, int, str, int, bytes]:
    """Compiled-batch cache key for routing a ``(B, n)`` permutation stack.

    The digest covers the whole stack in order, so two batches share an entry
    only when they contain the same permutations in the same positions.  The
    ``"batch"`` tag and the batch size keep the key space disjoint from
    :func:`routing_cache_key` — ``(1, n)`` and ``(n,)`` arrays have identical
    bytes, and a ``CompiledScheduleBatch`` must never be returned where a
    ``CompiledSchedule`` is expected.  Like the single-permutation key, this
    tuple doubles as the plan's persistent identity in the on-disk
    :class:`~repro.pops.plan_store.PlanStore`; the same stability contract
    applies.
    """
    stack = np.ascontiguousarray(np.asarray(pis, dtype=np.int64))
    digest = hashlib.blake2b(stack.tobytes(), digest_size=16).digest()
    return (backend, network.d, network.g, "batch", stack.shape[0], digest)


def _measure_routing_batch(
    network: POPSNetwork,
    pis,
    *,
    router_backend: str = "konig",
    verify: bool = True,
    sim_backend: str = "reference",
    use_cache: bool = True,
    cache: ScheduleCache | None = None,
    prefer_batch: bool | None = None,
) -> list[RoutingMetrics]:
    """Batched :func:`_measure_routing` over a ``(B, n)`` permutation stack.

    On the batched/auto engines the whole stack takes the megabatch pipeline —
    one batched route, one batched execution, one batched verification, one
    compiled batch trace — and entry ``b`` of the result is bit-identical
    (field by field, including dtypes) to ``_measure_routing(network,
    pis[b], ...)``.  Other engines fall back to the per-element loop, so the
    function is safe for any registered backend; only the batched path changes
    cache granularity (one batch-level entry under
    :func:`routing_cache_key_batch` instead of ``B`` per-permutation entries).

    ``prefer_batch`` overrides the batch-dispatch shape heuristic: by default
    (``None``) ``d < g`` stacks take the per-element fast path even on the
    batched engines, because the batched plan builders pad every element's
    round structure to the worst case and measurably *lose* to the loop there
    (0.8x at ``d = 16, g = 64``; the two paths are bit-identical, so dispatch
    is purely a performance decision, pinned in ``tests/test_megabatch.py``).
    Pass ``True``/``False`` to force a path regardless of shape.
    """
    from repro.routing.lower_bounds import best_known_lower_bound_stack
    from repro.utils.validation import check_permutation_stack

    tracer = get_tracer()
    images = check_permutation_stack(pis, network.n)
    batch_pays_off = (
        prefer_batch if prefer_batch is not None else network.d >= network.g
    )
    if sim_backend not in ("batched", "auto") or not batch_pays_off:
        return [
            _measure_routing(
                network,
                images[b].tolist(),
                router_backend=router_backend,
                verify=verify,
                sim_backend=sim_backend,
                use_cache=use_cache,
                cache=cache,
            )
            for b in range(images.shape[0])
        ]

    from repro.pops.engine import BatchedSimulator

    with tracer.span(
        "session.route_batch", d=network.d, g=network.g, n=network.n,
        batch=int(images.shape[0]),
    ):
        with tracer.span("route.setup"):
            router = PermutationRouter(
                network, backend=router_backend, verify=verify
            )
            cache_key = (
                routing_cache_key_batch(router_backend, network, images)
                if use_cache
                else None
            )
            engine = BatchedSimulator(network)
        with tracer.span("route.compile"):
            batch = router.route_compiled_batch(
                images, cache_key=cache_key, cache=cache, validate=False
            )
        with tracer.span("engine.execute"):
            locations = engine.execute_batch(batch)
        with tracer.span("engine.verify"):
            engine.verify_locations_batch(batch, locations)
        with tracer.span("engine.trace"):
            trace = engine.compiled_trace_batch(batch)
        with tracer.span("metrics.bounds"):
            lower = best_known_lower_bound_stack(network, images, validate=False)
            bound = theorem2_slot_bound(network.d, network.g)
        with tracer.span("metrics.summarise"):
            utilisation = trace.mean_coupler_utilisation(network.n_couplers)
            return [
                RoutingMetrics(
                    d=network.d,
                    g=network.g,
                    n=network.n,
                    slots=batch.n_slots,
                    theorem2_bound=bound,
                    lower_bound=int(lower[b]),
                    couplers_used_total=trace.total_packets_moved,
                    mean_coupler_utilisation=utilisation,
                )
                for b in range(batch.n_batch)
            ]


def _measure_routing(
    network: POPSNetwork,
    pi: Sequence[int],
    *,
    router_backend: str = "konig",
    verify: bool = True,
    sim_backend: str = "reference",
    use_cache: bool = True,
    cache: ScheduleCache | None = None,
) -> RoutingMetrics:
    """Route ``pi`` with the universal router, simulate, verify, and summarise.

    The implementation behind :meth:`repro.api.session.Session.route`.
    ``router_backend`` selects the edge-colouring backend of the router;
    ``sim_backend`` selects the simulator engine (any name registered in
    :data:`repro.api.registry.SIM_ENGINES`).  On compiled engines the trace
    stays compiled (integer arrays; statistics are numpy reductions — both
    trace representations yield identical metrics, so no materialisation
    happens here), and, with ``use_cache``, the lowered
    schedule is memoised in ``cache`` (the process-wide cache when ``None``)
    under ``(router backend, d, g, permutation)`` — sound because the router
    is deterministic — so repeated measurements of the same permutation skip
    lowering.  Hits come from re-measuring the same permutation in one
    process: repeated sweeps with the same seed, named families, benchmark
    loops.  A single sweep of *fresh* random permutations is all misses by
    design (no sound key could collapse distinct permutations), which the
    ``--cache-stats`` counters make visible; the cache's byte bound keeps
    that case cheap.
    """
    tracer = get_tracer()
    with tracer.span("session.route", d=network.d, g=network.g, n=network.n):
        if sim_backend in ("batched", "auto"):
            # Array-native fast path: the router emits the compiled-schedule
            # arrays directly (bit-identical to routing object-level and
            # lowering, so metrics and cache entries are unchanged), the batched
            # engine executes them, and no per-packet Python objects are built.
            # A permutation plan is always a consuming schedule, so "auto"
            # resolves to the batched engine without probing.  The cache key
            # covers the plan stage: a hit skips route construction entirely.
            from repro.pops.engine import BatchedSimulator
            from repro.utils.validation import check_permutation_array

            with tracer.span("route.setup"):
                router = PermutationRouter(
                    network, backend=router_backend, verify=verify
                )
                images = check_permutation_array(pi, network.n)
                cache_key = (
                    routing_cache_key(router_backend, network, images)
                    if use_cache
                    else None
                )
                engine = BatchedSimulator(network)
            with tracer.span("route.compile"):
                compiled = router.route_compiled(
                    images, cache_key=cache_key, cache=cache
                )
            with tracer.span("engine.execute"):
                locations = engine.execute(compiled)
            with tracer.span("engine.verify"):
                engine.verify_locations(compiled, locations)
            slots = compiled.n_slots
            with tracer.span("engine.trace"):
                trace = engine.compiled_trace(compiled)
        else:
            with tracer.span("route.setup"):
                router = PermutationRouter(
                    network, backend=router_backend, verify=verify
                )
                simulator = POPSSimulator(network, backend=sim_backend)
            with tracer.span("route.compile"):
                plan = router.route(pi)
            with tracer.span("engine.execute"):
                # Every engine except the reference one gets the cache key:
                # the reference engine has no compile step to memoise, while
                # plugin engines registered in SIM_ENGINES may cache compiled
                # artefacts exactly like "batched".
                cache_key = (
                    routing_cache_key(router_backend, network, plan.permutation)
                    if use_cache and sim_backend != "reference"
                    else None
                )
                result = simulator.route_and_verify(
                    plan.schedule, plan.packets, cache_key=cache_key, cache=cache
                )
            slots = plan.n_slots
            trace = result.trace
        with tracer.span("metrics.bounds"):
            bound = theorem2_slot_bound(network.d, network.g)
            lower = best_known_lower_bound(network, pi)
        with tracer.span("metrics.summarise"):
            return RoutingMetrics(
                d=network.d,
                g=network.g,
                n=network.n,
                slots=slots,
                theorem2_bound=bound,
                lower_bound=lower,
                couplers_used_total=trace.total_packets_moved,
                mean_coupler_utilisation=trace.mean_coupler_utilisation(
                    network.n_couplers
                ),
            )


def slots_vs_bound(network: POPSNetwork, slots: int) -> float:
    """Ratio of measured slots to Theorem 2's bound for ``network``."""
    return slots / theorem2_slot_bound(network.d, network.g)


def coupler_utilisation(network: POPSNetwork, pi: Sequence[int], backend: str = "konig") -> float:
    """Mean fraction of couplers busy per slot for the routed permutation."""
    return _measure_routing(network, pi, router_backend=backend).mean_coupler_utilisation
