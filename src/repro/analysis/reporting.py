"""Plain-text reporting helpers.

The benchmark harness and the CLI print the rows an evaluation table would
contain; these helpers format them consistently (fixed-width ASCII tables,
no third-party dependencies).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

__all__ = ["format_table", "format_experiment_report"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    header_cells = [str(h) for h in headers]
    body = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines = [render_row(header_cells), separator]
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


def format_experiment_report(
    title: str,
    claim: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Mapping[str, Any] | None = None,
) -> str:
    """Render one experiment (title, paper claim, measured table, notes)."""
    lines = [f"== {title} ==", f"Paper claim: {claim}", ""]
    lines.append(format_table(headers, rows))
    if notes:
        lines.append("")
        for key, value in notes.items():
            lines.append(f"{key}: {_cell(value)}")
    return "\n".join(lines)
