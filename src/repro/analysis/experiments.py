"""Experiment runners — one per entry of the experiment index in DESIGN.md.

The paper is a theory paper: its "evaluation" consists of Theorems 1–2,
Propositions 1–3, Remark 1 and the worked example of Figure 3.  Each runner
below turns one of those claims into a measured table; EXPERIMENTS.md records
paper-claim versus measured output, the benchmarks under ``benchmarks/`` wrap
the runners in ``pytest-benchmark`` fixtures, and ``python -m repro`` prints
their reports from the command line.

Runners are registered in :data:`repro.api.registry.EXPERIMENTS` under their
experiment ids and executed through a :class:`repro.api.session.Session`,
which supplies the router backend, simulator engine, schedule cache and the
root of the seed lineage; per-experiment sizes remain overridable via
``session.experiment(id, **overrides)``.  (The historical free functions —
``run_theorem2_sweep`` and friends, deprecated in 1.1 — were removed in 1.2
along with the ``ALL_EXPERIMENTS`` mapping, per the one-release timeline.)
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from math import ceil
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.algorithms.alltoall import all_to_all_personalized, gather, scatter
from repro.algorithms.broadcast import execute_broadcast
from repro.algorithms.matrix import cannon_matrix_multiply, distributed_transpose
from repro.algorithms.prefix_sum import hypercube_prefix_sum
from repro.algorithms.reduction import hypercube_allreduce
from repro.analysis.reporting import format_experiment_report
from repro.api import EXPERIMENTS
from repro.api.session import derive_trial_seeds
from repro.obs import get_tracer
from repro.patterns.families import (
    all_hypercube_exchanges,
    bit_reversal_permutation,
    bpc_permutation,
    figure3_permutation,
    matrix_transpose_permutation,
    mesh_column_shift,
    mesh_row_shift,
    perfect_shuffle,
    vector_reversal,
)
from repro.patterns.generators import PermutationGenerator
from repro.pops.packet import Packet
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.routing.baselines.direct import DirectRouter
from repro.routing.fair_distribution import FairDistributionSolver
from repro.routing.list_system import ListSystem
from repro.routing.lower_bounds import (
    proposition1_lower_bound,
    proposition2_lower_bound,
    proposition3_lower_bound,
)
from repro.routing.one_slot import OneSlotRouter, is_one_slot_routable
from repro.routing.permutation_router import PermutationRouter, theorem2_slot_bound
from repro.utils.permutations import random_permutation
from repro.utils.rng import resolve_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import Session

__all__ = ["ExperimentResult"]

#: Default (d, g) sweep used by the permutation-routing experiments.  Covers
#: all three regimes of Theorem 2 (d = 1, 1 < d <= g, d > g) plus the single
#: group and single-processor-per-group corners.
DEFAULT_CONFIGS: tuple[tuple[int, int], ...] = (
    (1, 8),
    (2, 8),
    (4, 4),
    (8, 8),
    (6, 3),
    (8, 4),
    (9, 3),
    (16, 4),
    (5, 7),
    (7, 5),
    (12, 1),
)


@dataclass
class ExperimentResult:
    """Measured output of one experiment."""

    experiment_id: str
    title: str
    claim: str
    headers: list[str]
    rows: list[list[Any]]
    notes: dict[str, Any] = field(default_factory=dict)

    def to_report(self) -> str:
        """Render the result as a plain-text report."""
        return format_experiment_report(
            f"{self.experiment_id}: {self.title}",
            self.claim,
            self.headers,
            self.rows,
            self.notes,
        )

    def to_dict(self) -> dict[str, Any]:
        """The result as a JSON-ready dict (numpy scalars coerced)."""
        from repro.api.serialize import to_jsonable

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "headers": list(self.headers),
            "rows": to_jsonable(self.rows),
            "notes": to_jsonable(self.notes),
            "all_pass": self.all_pass,
        }

    @property
    def all_pass(self) -> bool:
        """True iff every row's final column (the per-row verdict) is truthy."""
        return all(bool(row[-1]) for row in self.rows)


# ---------------------------------------------------------------------------
# E1 — Theorem 2 slot counts
# ---------------------------------------------------------------------------


def _theorem2_shard(
    task: tuple[int, int, tuple[int, ...], dict[str, Any]],
    session: Session | None = None,
) -> tuple[list[int], bool, dict[str, int]]:
    """Run one shard (an explicit list of trial seeds) of a (d, g) configuration.

    Top-level so process-pool workers can pickle it.  With no ``session`` (a
    pool worker: sessions do not cross process boundaries) the worker builds
    one from the task's config fields — router backend, engine, cache policy
    *and* cache bounds all survive the hop, so a worker's cache respects the
    configured byte budget; in-process callers pass their own session so the
    session-owned cache is honoured directly.

    The shard's permutations are drawn per trial seed exactly as the
    historical per-trial loop did, then routed as *one* ``(B, n)`` megabatch
    through :meth:`~repro.api.session.Session.route_batch`; the per-trial
    metrics are bit-identical, so merged sweep reports are unchanged (only
    cache-counter granularity differs on the batched engine: one batch-level
    entry per ``d >= g`` shard; ``d < g`` shards take the per-element fast
    path per the dispatch heuristic in ``_measure_routing_batch``).
    Returns the sorted slot counts seen, the AND of the
    per-trial bound checks, and the shard's schedule-cache counter deltas
    (memory hits/misses, plus the persistent tier's disk hits/misses when a
    plan store is configured — reported separately, never summed).
    """
    d, g, trial_seeds, config_fields = task
    if session is None:
        from repro.api.config import RunConfig
        from repro.api.session import Session

        session = Session(RunConfig(**config_fields))
    with get_tracer().span("sweep.shard", d=d, g=g, trials=len(trial_seeds)):
        network = POPSNetwork(d, g)
        cache = session.cache
        before = cache.stats()
        pis = np.stack(
            [
                np.asarray(
                    random_permutation(network.n, resolve_rng(trial_seed)),
                    dtype=np.int64,
                )
                for trial_seed in trial_seeds
            ]
        )
        trial_metrics = session.route_batch(pis, network=network)
        after = cache.stats()
        counter_deltas = {
            name: after[name] - before.get(name, 0)
            for name in after
            if name != "entries"
        }
        return (
            sorted({metrics.slots for metrics in trial_metrics}),
            all(metrics.meets_theorem2_bound for metrics in trial_metrics),
            counter_deltas,
        )


def _sweep_row(d: int, g: int, slots_seen: set[int], verified: bool) -> list[Any]:
    """One E1/E1p result row; the single source of the sweep row schema."""
    return [
        d,
        g,
        d * g,
        theorem2_slot_bound(d, g),
        min(slots_seen),
        max(slots_seen),
        verified,
    ]


def _shard_context(session: Session, sim_backend: str) -> tuple[Session, dict[str, Any]]:
    """The in-process shard session and the picklable config for pool workers.

    Both are built from the caller's *whole* config with the engine resolved
    — the dict round-trips via ``RunConfig(**fields)``, so every config field
    (cache policy, cache bounds, future additions) survives the process
    boundary by construction.  The in-process session additionally shares the
    caller's own schedule cache.
    """
    from repro.api.session import Session

    shard_config = session.config.replace(sim_backend=sim_backend)
    return Session(shard_config, cache=session.cache), shard_config.to_dict()


@EXPERIMENTS.register("E1")
def _theorem2_sweep(
    session: Session,
    configs: Sequence[tuple[int, int]] = DEFAULT_CONFIGS,
    trials: int | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """E1: the universal router uses exactly 1 / 2⌈d/g⌉ slots on random permutations.

    Every routing is executed on the simulator (the session's engine, default
    ``reference``) and verified for delivery.
    """
    trials = session.config.trials if trials is None else trials
    seed = session.config.seed if seed is None else seed
    backend = session.config.router_backend
    sim_backend = session.sim_backend("reference")
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = resolve_rng(seed)
    shard_session, config_fields = _shard_context(session, sim_backend)
    rows: list[list[Any]] = []
    for d, g in configs:
        trial_seeds = tuple(derive_trial_seeds(rng.randrange(2**31), trials).tolist())
        slots_seen, verified, _ = _theorem2_shard(
            (d, g, trial_seeds, config_fields), session=shard_session
        )
        rows.append(_sweep_row(d, g, set(slots_seen), verified))
    return ExperimentResult(
        experiment_id="E1",
        title="Theorem 2 slot counts over a (d, g) sweep",
        claim="any permutation routes in 1 slot (d=1) or 2*ceil(d/g) slots (d>1)",
        headers=["d", "g", "n", "bound", "min slots", "max slots", "matches bound"],
        rows=rows,
        notes={
            "trials per configuration": trials,
            "backend": backend,
            "simulator backend": sim_backend,
        },
    )


@EXPERIMENTS.register("E1p")
def _parallel_sweep(
    session: Session,
    configs: Sequence[tuple[int, int]] = DEFAULT_CONFIGS,
) -> ExperimentResult:
    """Theorem 2 sweep fanned across processes, optionally sharding trials.

    By default each (d, g) configuration is one unit of work.  With
    ``shard_trials=k`` in the session config every configuration's trials are
    additionally split into shards of at most ``k`` trials, each shard an
    independent task with deterministically derived per-trial seeds — so a
    *single* huge configuration (n in the tens of thousands) saturates all
    cores instead of one, and the merged result is bit-for-bit identical to
    the unsharded run with the same seed.  ``workers=0`` (or a single task)
    runs serially in-process, which is also the fallback when the platform
    cannot spawn worker processes.  ``cache_stats=True`` aggregates the
    workers' compiled-schedule-cache counters into the report notes.
    """
    config = session.config
    trials = config.trials
    backend = config.router_backend
    sim_backend = session.sim_backend("batched")
    max_workers = config.workers
    shard_trials = config.shard_trials
    rng = resolve_rng(config.seed)
    config_seeds = [rng.randrange(2**31) for _ in configs]
    shard = trials if shard_trials is None else min(shard_trials, trials)
    shard_session, config_fields = _shard_context(session, sim_backend)
    tasks = []
    task_config: list[int] = []  # task index -> config index
    for ci, (d, g) in enumerate(configs):
        # Per-trial seeds are derived once per configuration and sliced into
        # shards, so sharding adds no redundant seed derivation and any shard
        # can run in any worker with bit-identical results.
        trial_seeds = derive_trial_seeds(config_seeds[ci], trials).tolist()
        for lo in range(0, trials, shard):
            chunk = tuple(trial_seeds[lo:lo + shard])
            tasks.append((d, g, chunk, config_fields))
            task_config.append(ci)

    shards: list[tuple[list[int], bool, dict[str, int]]] | None = None
    if max_workers != 0 and len(tasks) > 1:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            with ProcessPoolExecutor(max_workers=max_workers) as executor:
                shards = list(executor.map(_theorem2_shard, tasks))
        except (OSError, BrokenProcessPool):  # pragma: no cover - sandboxed hosts
            shards = None
    if shards is None:
        shards = [_theorem2_shard(task, session=shard_session) for task in tasks]

    # Merge shard results per configuration (set-union / AND, order-free).
    merged_slots: list[set[int]] = [set() for _ in configs]
    merged_verified = [True] * len(configs)
    counters: dict[str, int] = {}
    for ci, (slots_seen, verified, shard_counters) in zip(task_config, shards):
        merged_slots[ci].update(slots_seen)
        merged_verified[ci] = merged_verified[ci] and verified
        for name, delta in shard_counters.items():
            counters[name] = counters.get(name, 0) + delta
    rows = [
        _sweep_row(d, g, merged_slots[ci], merged_verified[ci])
        for ci, (d, g) in enumerate(configs)
    ]
    notes: dict[str, Any] = {
        "trials per configuration": trials,
        "backend": backend,
        "simulator backend": sim_backend,
        "max workers": max_workers if max_workers is not None else "auto",
    }
    if shard_trials is not None:
        notes["trials per shard"] = shard
    if config.cache_stats:
        hits = counters.get("hits", 0)
        misses = counters.get("misses", 0)
        if "disk_hits" in counters:
            # A plan store is attached: the tiers report separately (memory
            # hits are this-process warmth, disk hits are cross-process /
            # cross-run warmth; misses means both tiers missed).
            notes["schedule cache"] = (
                f"{hits} memory hits / {counters['disk_hits']} disk hits / "
                f"{misses} misses"
            )
        else:
            notes["schedule cache"] = f"{hits} hits / {misses} misses"
    return ExperimentResult(
        experiment_id="E1p",
        title="Theorem 2 sweep fanned across worker processes",
        claim="any permutation routes in 1 slot (d=1) or 2*ceil(d/g) slots (d>1)",
        headers=["d", "g", "n", "bound", "min slots", "max slots", "matches bound"],
        rows=rows,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# E2 — Figure 3 worked example
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E2")
def _figure3_example(session: Session) -> ExperimentResult:
    """E2: the POPS(3,3) example of Figure 3 routes in two slots via a fair distribution.

    The worked example is fully deterministic — the permutation is fixed by
    Figure 3 and the router draws no randomness — so this experiment consumes
    the session's seed lineage trivially (no derived seeds needed).
    """
    backend = session.config.router_backend
    network = POPSNetwork(3, 3)
    pi = figure3_permutation()
    router = PermutationRouter(network, backend=backend)
    plan = router.route(pi)
    simulator = POPSSimulator(network)
    simulator.route_and_verify(plan.schedule, plan.packets)

    system = ListSystem.from_permutation(pi, 3, 3)
    distribution = plan.fair_distribution
    assert distribution is not None
    rows = []
    for h in range(3):
        for i in range(3):
            source = network.processor(h, i)
            rows.append(
                [
                    source,
                    network.group_of(pi[source]),
                    distribution(h, i),
                    pi[source],
                    True,
                ]
            )
    return ExperimentResult(
        experiment_id="E2",
        title="Figure 3 worked example on POPS(3,3)",
        claim="one slot reaches a fair distribution, a second delivers (2 slots total)",
        headers=[
            "source processor",
            "destination group",
            "intermediate group",
            "destination processor",
            "delivered",
        ],
        rows=rows,
        notes={
            "slots used": plan.n_slots,
            "theorem 2 bound": theorem2_slot_bound(3, 3),
            "list system proper": system.is_proper(),
        },
    )


# ---------------------------------------------------------------------------
# E3 — Remark 1 scaling of the fair-distribution computation
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E3")
def _scaling_experiment(
    session: Session,
    g_values: Sequence[int] = (4, 8, 16, 32),
    backends: Sequence[str] = ("konig", "euler"),
    trials: int | None = None,
    seed: int = 7,
) -> ExperimentResult:
    """E3: fair-distribution computation time vs g (d = g) for both backends.

    Remark 1 quotes O(g^3) (Schrijver-style) and O(g^2 log g) (Kapoor–Rizzi /
    Rizzi) bottlenecks; this experiment reports measured times so the growth
    *shape* can be compared.  Absolute times depend on the Python substrate.
    """
    trials = session.config.trials if trials is None else trials
    rng = resolve_rng(seed)
    rows: list[list[Any]] = []
    for g in g_values:
        network = POPSNetwork(g, g)
        durations: dict[str, list[float]] = {backend: [] for backend in backends}
        for _ in range(trials):
            pi = random_permutation(network.n, rng)
            system = ListSystem.from_permutation(pi, g, g)
            for backend in backends:
                solver = FairDistributionSolver(backend=backend, verify=False)
                start = time.perf_counter()
                solver.solve(system)
                durations[backend].append(time.perf_counter() - start)
        row: list[Any] = [g, network.n]
        for backend in backends:
            row.append(sum(durations[backend]) / len(durations[backend]))
        row.append(True)
        rows.append(row)
    headers = ["g (=d)", "n"] + [f"mean seconds ({b})" for b in backends] + ["completed"]
    return ExperimentResult(
        experiment_id="E3",
        title="Remark 1: cost of computing the fair distribution",
        claim="bottleneck is 1-factorisation: O(g^3) or O(g^2 log g) for d = g",
        headers=headers,
        rows=rows,
        notes={"trials per size": trials},
    )


# ---------------------------------------------------------------------------
# E4 — Propositions 1–3 lower bounds
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E4")
def _lower_bound_experiment(
    session: Session,
    configs: Sequence[tuple[int, int]] = ((4, 4), (8, 4), (9, 3), (6, 6), (16, 4)),
    trials: int | None = None,
    seed: int = 11,
) -> ExperimentResult:
    """E4: measured slots versus the lower bounds of Propositions 1–3.

    Three workload classes are used: derangements (Prop. 1), group-moving
    group-blocked permutations (Prop. 2, where Theorem 2 is exactly optimal),
    and fixed-point-free within-group permutations (Prop. 3's hypotheses with
    the group map equal to the identity).
    """
    trials = session.config.trials if trials is None else trials
    rows: list[list[Any]] = []
    for d, g in configs:
        network = POPSNetwork(d, g)
        generator = PermutationGenerator(network, seed)
        for kind in ("derangement", "group_moving_blocked", "within_group_derangement"):
            for _ in range(trials):
                if kind == "derangement":
                    pi = generator.derangement()
                    bound = proposition1_lower_bound(network, pi)
                elif kind == "group_moving_blocked":
                    if g < 2:
                        continue
                    pi = generator.group_moving_blocked()
                    bound = proposition2_lower_bound(network, pi)
                else:
                    if d < 2:
                        continue
                    pi = _within_group_derangement(network, generator)
                    bound = proposition3_lower_bound(network, pi)
                if bound is None:
                    continue
                metrics = session.route(pi, network=network)
                rows.append(
                    [
                        d,
                        g,
                        kind,
                        bound,
                        metrics.slots,
                        metrics.theorem2_bound,
                        metrics.slots >= bound and metrics.meets_theorem2_bound,
                    ]
                )
    return ExperimentResult(
        experiment_id="E4",
        title="Propositions 1-3: measured slots vs lower bounds",
        claim=(
            "slots >= ceil(d/g) for derangements; = 2*ceil(d/g) (optimal) for "
            "group-moving blocked permutations; >= 2*ceil(d/(1+g)) for blocked derangements"
        ),
        headers=["d", "g", "workload", "lower bound", "slots", "theorem2 bound", "consistent"],
        rows=rows,
        notes={"trials per class": trials},
    )


def _within_group_derangement(
    network: POPSNetwork, generator: PermutationGenerator
) -> list[int]:
    """A fixed-point-free permutation whose group map is the identity."""
    from repro.utils.permutations import random_derangement

    rng = generator._rng
    d, g = network.d, network.g
    pi = [0] * network.n
    for h in range(g):
        local = random_derangement(d, rng)
        for i in range(d):
            pi[h * d + i] = h * d + local[i]
    return pi


# ---------------------------------------------------------------------------
# E5 — unification of the specialised results
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E5")
def _unification_experiment(session: Session) -> ExperimentResult:
    """E5: the universal router matches every specialised slot count from Section 2.

    Hypercube dimension exchanges and mesh row/column shifts ([Sahni 2000b]),
    vector reversal, BPC permutations and matrix transpose ([Sahni 2000a]) are
    all routed by the universal router; the transpose additionally gets the
    ``⌈d/g⌉`` single-hop schedule of the direct baseline.
    """
    rows: list[list[Any]] = []

    def check(
        family: str, d: int, g: int, pi: list[int], expected: int, method: str = "router"
    ) -> None:
        network = POPSNetwork(d, g)
        if method == "router":
            metrics = session.route(pi, network=network)
            slots = metrics.slots
        else:
            direct = DirectRouter(network)
            schedule = direct.route(pi)
            packets = [Packet(source=i, destination=pi[i]) for i in range(network.n)]
            POPSSimulator(network).route_and_verify(schedule, packets)
            slots = schedule.n_slots
        rows.append([family, d, g, method, expected, slots, slots == expected])

    # Hypercube dimension exchanges: every bit, on d <= g and d > g networks.
    for d, g in ((4, 8), (8, 4)):
        n = d * g
        for bit, pi in enumerate(all_hypercube_exchanges(n)):
            check(f"hypercube bit {bit}", d, g, pi, theorem2_slot_bound(d, g))

    # Mesh row/column shifts on a 6x6 mesh (N^2 = 36, d = 6 divides N).
    side = 6
    for d, g in ((6, 6), (4, 9), (9, 4)):
        if d * g != side * side:
            continue
        check("mesh row +1", d, g, mesh_row_shift(side), theorem2_slot_bound(d, g))
        check("mesh col +1", d, g, mesh_column_shift(side), theorem2_slot_bound(d, g))

    # Vector reversal ([Sahni 2000a]): 2*ceil(d/g), optimal for even g.
    for d, g in ((4, 4), (8, 4), (3, 9)):
        check("vector reversal", d, g, vector_reversal(d * g), theorem2_slot_bound(d, g))

    # BPC permutations: perfect shuffle, bit reversal, and a mixed instance.
    for d, g in ((4, 8), (8, 4)):
        n = d * g
        check("perfect shuffle", d, g, perfect_shuffle(n), theorem2_slot_bound(d, g))
        check("bit reversal", d, g, bit_reversal_permutation(n), theorem2_slot_bound(d, g))
        k = n.bit_length() - 1
        order = list(range(1, k)) + [0]
        check(
            "BPC rotate+complement",
            d,
            g,
            bpc_permutation(n, order, complement_mask=1),
            theorem2_slot_bound(d, g),
        )

    # Matrix transpose ([Sahni 2000a]): ceil(d/g) slots via the direct schedule.
    for m, d, g in ((6, 6, 6), (8, 16, 4), (8, 4, 16)):
        pi = matrix_transpose_permutation(m)
        check("matrix transpose", d, g, pi, max(1, ceil(d / g)), method="direct")

    return ExperimentResult(
        experiment_id="E5",
        title="Unification of the specialised routings of Section 2",
        claim=(
            "hypercube/mesh steps, vector reversal and BPC permutations route in "
            "2*ceil(d/g) slots; matrix transpose in ceil(d/g) single-hop slots"
        ),
        headers=["family", "d", "g", "method", "expected slots", "slots", "matches"],
        rows=rows,
        notes={},
    )


# ---------------------------------------------------------------------------
# E6 — universal router vs single-hop baseline
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E6")
def _direct_comparison(
    session: Session,
    configs: Sequence[tuple[int, int]] = ((4, 4), (8, 4), (16, 4), (32, 4), (8, 8), (16, 8)),
    trials: int | None = None,
    seed: int = 23,
) -> ExperimentResult:
    """E6: two-hop universal routing vs the single-hop baseline.

    On group-blocked traffic the direct baseline needs ``d`` slots while the
    universal router keeps its ``2⌈d/g⌉`` guarantee; on uniform random traffic
    the direct baseline is usually competitive.  The crossover is the point the
    paper's worst-case guarantee is about.
    """
    trials = session.config.trials if trials is None else trials
    rows: list[list[Any]] = []
    for d, g in configs:
        network = POPSNetwork(d, g)
        generator = PermutationGenerator(network, seed)
        for kind in ("group_blocked", "uniform"):
            universal_slots: list[int] = []
            direct_slots: list[int] = []
            for _ in range(trials):
                pi = (
                    generator.group_blocked()
                    if kind == "group_blocked"
                    else generator.uniform()
                )
                metrics = session.route(pi, network=network)
                universal_slots.append(metrics.slots)
                direct_slots.append(DirectRouter(network).slots_required(pi))
            mean_universal = sum(universal_slots) / len(universal_slots)
            mean_direct = sum(direct_slots) / len(direct_slots)
            rows.append(
                [
                    d,
                    g,
                    kind,
                    mean_universal,
                    mean_direct,
                    mean_direct / mean_universal,
                    mean_universal <= theorem2_slot_bound(d, g),
                ]
            )
    return ExperimentResult(
        experiment_id="E6",
        title="Universal two-hop router vs direct single-hop baseline",
        claim="2*ceil(d/g) always; direct routing degrades to d slots on blocked traffic",
        headers=[
            "d",
            "g",
            "workload",
            "universal slots (mean)",
            "direct slots (mean)",
            "direct/universal",
            "within bound",
        ],
        rows=rows,
        notes={"trials per point": trials},
    )


# ---------------------------------------------------------------------------
# E7 — single-slot routability
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E7")
def _one_slot_fraction(
    session: Session,
    configs: Sequence[tuple[int, int]] = ((1, 8), (2, 4), (2, 8), (4, 4), (3, 9)),
    trials: int = 200,
    seed: int = 31,
) -> ExperimentResult:
    """E7: how rare single-slot routable permutations are, and that the one-slot
    router handles exactly that class (Fact 1 / Gravenstreter–Melhem)."""
    rng = resolve_rng(seed)
    rows: list[list[Any]] = []
    for d, g in configs:
        network = POPSNetwork(d, g)
        routable = 0
        verified = True
        for _ in range(trials):
            pi = random_permutation(network.n, rng)
            if is_one_slot_routable(network, pi):
                routable += 1
                router = OneSlotRouter(network)
                schedule = router.route(pi)
                packets = [Packet(source=i, destination=pi[i]) for i in range(network.n)]
                POPSSimulator(network).route_and_verify(schedule, packets)
                verified = verified and schedule.n_slots == 1
        rows.append([d, g, network.n, trials, routable, routable / trials, verified])
    return ExperimentResult(
        experiment_id="E7",
        title="Fraction of permutations routable in a single slot",
        claim="only permutations with no same-group/same-destination-group pair need 1 slot",
        headers=["d", "g", "n", "samples", "routable", "fraction", "verified"],
        rows=rows,
        notes={},
    )


# ---------------------------------------------------------------------------
# E8 — collective algorithms on top of the router
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E8")
def _collectives_experiment(
    session: Session, seed: int | None = None
) -> ExperimentResult:
    """E8: the algorithm catalogue built on the universal router.

    Broadcast (1 slot), all-reduce and prefix sum (2⌈d/g⌉·log2 n slots), matrix
    transpose (router vs direct) and Cannon matrix multiplication, each
    executed on the simulator and checked against a local reference.

    Trial seeds follow the sweep lineage: one root seed (the session's
    ``RunConfig.seed`` unless overridden) derives an independent seed per
    random section — the all-reduce/prefix data of each network and the
    Cannon operands — exactly as sharded sweeps derive per-trial seeds, so
    any section reproduces in isolation from the root seed alone.
    """
    backend = session.config.router_backend
    root_seed = session.config.seed if seed is None else seed
    # One derived seed per random section: data for (4, 8), data for (8, 4),
    # and the Cannon operand matrices.
    section_seeds = derive_trial_seeds(root_seed, 3).tolist()
    rows: list[list[Any]] = []

    # Broadcast: 1 slot on any network.
    network = POPSNetwork(4, 4)
    values, slots = execute_broadcast(network, speaker=5, payload="token")
    rows.append(
        ["one-to-all broadcast", 4, 4, 1, slots, all(v == "token" for v in values)]
    )

    # All-reduce and prefix sum on d <= g and d > g networks.
    for (d, g), section_seed in zip(((4, 8), (8, 4)), section_seeds):
        rng = resolve_rng(section_seed)
        network = POPSNetwork(d, g)
        n = network.n
        data = [rng.randint(0, 100) for _ in range(n)]
        log_n = n.bit_length() - 1
        expected_slots = theorem2_slot_bound(d, g) * log_n

        reduced, slots = hypercube_allreduce(network, data, lambda a, b: a + b, backend)
        rows.append(
            [
                "hypercube all-reduce",
                d,
                g,
                expected_slots,
                slots,
                all(value == sum(data) for value in reduced),
            ]
        )

        prefixes, slots = hypercube_prefix_sum(network, data, backend=backend)
        expected_prefix = list(np.cumsum(data))
        rows.append(
            [
                "hypercube prefix sum",
                d,
                g,
                expected_slots,
                slots,
                [int(p) for p in prefixes] == [int(p) for p in expected_prefix],
            ]
        )

    # Matrix transpose: router (2*ceil(d/g)) and direct (ceil(d/g)).
    network = POPSNetwork(6, 6)
    matrix = np.arange(36).reshape(6, 6)
    transposed, slots = distributed_transpose(network, matrix, method="router", backend=backend)
    rows.append(
        ["transpose (router)", 6, 6, theorem2_slot_bound(6, 6), slots, bool((transposed == matrix.T).all())]
    )
    transposed, slots = distributed_transpose(network, matrix, method="direct")
    rows.append(["transpose (direct)", 6, 6, 1, slots, bool((transposed == matrix.T).all())])

    # Cannon matrix multiplication on a 4x4 mesh of 16 processors.
    cannon_rng = resolve_rng(section_seeds[2])
    network = POPSNetwork(4, 4)
    a = np.array([[cannon_rng.uniform(-1, 1) for _ in range(4)] for _ in range(4)])
    b = np.array([[cannon_rng.uniform(-1, 1) for _ in range(4)] for _ in range(4)])
    product, slots = cannon_matrix_multiply(network, a, b, backend=backend)
    expected_cannon_slots = theorem2_slot_bound(4, 4) * (2 + 2 * 3)
    rows.append(
        [
            "Cannon matrix multiply",
            4,
            4,
            expected_cannon_slots,
            slots,
            bool(np.allclose(product, a @ b)),
        ]
    )

    return ExperimentResult(
        experiment_id="E8",
        title="Collective algorithms built on the universal router",
        claim="every collective decomposes into permutations, each 2*ceil(d/g) slots",
        headers=["algorithm", "d", "g", "expected slots", "slots", "correct"],
        rows=rows,
        notes={},
    )


# ---------------------------------------------------------------------------
# E9 — collective schedules at scale on the vectorized engines
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E9")
def _collective_scale_experiment(
    session: Session,
    broadcast_configs: Sequence[tuple[int, int]] = ((4, 4), (16, 16), (32, 32)),
    seed: int | None = None,
) -> ExperimentResult:
    """E9: the collective catalogue executed end-to-end on the compiled engines.

    Broadcast schedules run on the vectorized multi-location collective
    engine, reduction and h-relation rounds on the batched engine — no
    collective here touches the reference simulator, which is what unlocks
    the larger network sizes (the default broadcast sweep tops out at
    n = 1024).  Every row is verified against a local reference computation.

    Seeds follow the sweep lineage: one root seed (the session's
    ``RunConfig.seed`` unless overridden) derives an independent seed per
    random section, so any section reproduces from the root seed alone.
    """
    from repro.api.session import Session as _Session

    backend = session.config.router_backend
    engine = session.sim_backend("auto")
    exec_session = _Session(
        session.config.replace(sim_backend=engine), cache=session.cache
    )
    root_seed = session.config.seed if seed is None else seed
    # One derived seed per random section: the all-reduce data of each
    # network shape and the all-to-all/scatter/gather operand tables.
    section_seeds = derive_trial_seeds(root_seed, 3).tolist()
    rows: list[list[Any]] = []

    # One-slot broadcasts, growing n: the collective engine's home turf.
    for d, g in broadcast_configs:
        network = POPSNetwork(d, g)
        speaker = network.n // 2
        values, slots = execute_broadcast(
            network, speaker=speaker, payload="token", session=exec_session,
            cache_key=("E9-broadcast", d, g, speaker),
        )
        rows.append(
            [
                "one-to-all broadcast",
                d,
                g,
                network.n,
                1,
                slots,
                all(value == "token" for value in values),
            ]
        )

    # All-reduce on d <= g and d > g shapes (permutation rounds, batched).
    for (d, g), section_seed in zip(((4, 8), (8, 4)), section_seeds):
        rng = resolve_rng(section_seed)
        network = POPSNetwork(d, g)
        data = [rng.randint(0, 100) for _ in range(network.n)]
        expected_slots = theorem2_slot_bound(d, g) * (network.n.bit_length() - 1)
        reduced, slots = hypercube_allreduce(
            network, data, lambda a, b: a + b, session=exec_session
        )
        rows.append(
            [
                "hypercube all-reduce",
                d,
                g,
                network.n,
                expected_slots,
                slots,
                all(value == sum(data) for value in reduced),
            ]
        )

    # h-relation collectives: all-to-all, scatter, gather (batched rounds).
    rng = resolve_rng(section_seeds[2])
    network = POPSNetwork(4, 4)
    n = network.n
    table = [[rng.randint(0, 999) for _ in range(n)] for _ in range(n)]
    received, slots = all_to_all_personalized(network, table, session=exec_session)
    bound = (n - 1) * theorem2_slot_bound(4, 4)
    rows.append(
        [
            "all-to-all personalised",
            4,
            4,
            n,
            bound,
            slots,
            slots <= bound
            and all(received[j][i] == table[i][j] for i in range(n) for j in range(n)),
        ]
    )
    flat = [rng.randint(0, 999) for _ in range(n)]
    scattered, slots = scatter(network, 3, flat, session=exec_session)
    rows.append(
        ["scatter", 4, 4, n, bound, slots, slots <= bound and scattered == flat]
    )
    collected, slots = gather(network, 3, flat, session=exec_session)
    rows.append(
        ["gather", 4, 4, n, bound, slots, slots <= bound and collected == flat]
    )

    return ExperimentResult(
        experiment_id="E9",
        title="Collective schedules at scale on the compiled engines",
        claim=(
            "broadcast/multi-reader schedules run on the vectorized collective "
            "engine (no reference fallback); reductions and h-relations on the "
            "batched engine"
        ),
        headers=["collective", "d", "g", "n", "expected slots", "slots", "correct"],
        rows=rows,
        notes={
            "backend": backend,
            "simulator backend": engine,
            "largest broadcast n": max(d * g for d, g in broadcast_configs),
        },
    )


# ---------------------------------------------------------------------------
# E10 — slot degradation under coupler failures
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E10")
def _fault_degradation_experiment(
    session: Session,
    configs: Sequence[tuple[int, int]] = ((8, 4), (6, 3), (4, 8)),
    fractions: Sequence[float] = (0.0, 0.1, 0.25),
    seed: int | None = None,
) -> ExperimentResult:
    """E10: how many extra slots coupler failures cost the online rerouter.

    For each (d, g) and failed-coupler fraction, a random hub-protected
    :class:`~repro.faults.FaultSpec` is injected into the execution of a
    clean Theorem 2 schedule; the residual traffic is re-solved over the
    surviving couplers and delivery is verified on the degraded topology.
    The row verdict is *delivered* — availability under faults — and the
    slots column quantifies the degradation against the clean ``2⌈d/g⌉``
    bound (ratio 1.0 = the fault cost nothing).
    """
    from repro.faults import FaultSpec

    root_seed = session.config.seed if seed is None else seed
    rows: list[list[Any]] = []
    for ci, (d, g) in enumerate(configs):
        network = POPSNetwork(d, g)
        config_seeds = derive_trial_seeds(root_seed + ci, len(fractions)).tolist()
        for fraction, trial_seed in zip(fractions, config_seeds):
            rng = resolve_rng(trial_seed)
            pi = random_permutation(network.n, rng)
            spec = FaultSpec.random(
                network,
                coupler_fraction=fraction,
                seed=trial_seed,
                onset_slot=1 if fraction else 0,
            )
            report = session.route_degraded(pi, network=network, faults=spec)
            rows.append(
                [
                    d,
                    g,
                    fraction,
                    report.failed_couplers,
                    report.theorem2_bound,
                    report.total_slots,
                    round(report.overhead_ratio, 3),
                    report.delivered,
                ]
            )
    return ExperimentResult(
        experiment_id="E10",
        title="Slot degradation under injected coupler failures",
        claim=(
            "every permutation is still delivered when a hub-protected random "
            "fraction of couplers fails; the online reroute pays a bounded "
            "slot overhead over the clean Theorem 2 bound"
        ),
        headers=[
            "d", "g", "failed fraction", "failed couplers",
            "theorem2 bound", "total slots", "overhead ratio", "delivered",
        ],
        notes={"fractions": list(fractions), "hub group": 0},
        rows=rows,
    )


# ---------------------------------------------------------------------------
# E11 — online recovery vs full re-route
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E11")
def _online_vs_full_reroute(
    session: Session,
    configs: Sequence[tuple[int, int]] = ((8, 4), (4, 8), (9, 3)),
    seed: int | None = None,
) -> ExperimentResult:
    """E11: online recovery of the residual vs re-routing from scratch.

    A coupler that the clean schedule provably drives one slot in fails at
    onset slot 1 (so the fault always triggers).  The online path keeps the
    slot already executed and re-solves only the residual packets from
    wherever they sit; the control arm discards all progress and re-solves
    the whole permutation from its original sources on the same degraded
    topology.  Both must deliver; the verdict also pins the online path's
    total inside twice the clean bound (the contract
    ``benchmarks/bench_faults.py`` enforces as a floor).
    """
    from repro.faults import FaultSpec, full_reroute, route_with_recovery
    from repro.routing.permutation_router import PermutationRouter

    root_seed = session.config.seed if seed is None else seed
    backend = session.config.router_backend
    rows: list[list[Any]] = []
    for ci, (d, g) in enumerate(configs):
        network = POPSNetwork(d, g)
        trial_seed = int(derive_trial_seeds(root_seed + ci, 1)[0])
        rng = resolve_rng(trial_seed)
        pi = random_permutation(network.n, rng)
        # Fail a coupler the clean plan actually drives at slot >= 1, so the
        # injection is guaranteed to trigger; prefer one not touching group 0
        # (the hub), keeping a two-hop survivor path for every group pair.
        plan = PermutationRouter(network, backend=backend).route(pi)
        driven = [
            t.coupler
            for slot in plan.schedule.slots[1:]
            for t in slot.transmissions
        ]
        target = next(
            (c for c in driven if c.dest_group != 0 and c.source_group != 0),
            driven[0],
        )
        spec = FaultSpec(
            failed_couplers=((target.dest_group, target.source_group),),
            onset_slot=1,
        )
        report = route_with_recovery(network, pi, spec, router_backend=backend)
        full = full_reroute(network, pi, spec)
        ok = (
            report.delivered
            and report.overhead_ratio <= 2.0
            and report.fault_triggered
        )
        rows.append(
            [
                d,
                g,
                report.theorem2_bound,
                report.executed_slots,
                report.residual_packets,
                report.reroute_slots,
                report.total_slots,
                full.n_slots,
                ok,
            ]
        )
    return ExperimentResult(
        experiment_id="E11",
        title="Online recovery vs full re-route after a coupler failure",
        claim=(
            "re-solving only the residual traffic delivers every packet with "
            "total slots within 2x the clean bound; a full restart pays the "
            "whole degraded route again"
        ),
        headers=[
            "d", "g", "theorem2 bound", "executed slots", "residual packets",
            "reroute slots", "online total", "full re-route slots", "ok",
        ],
        notes={"failure": "one random non-hub coupler, onset slot 1"},
        rows=rows,
    )


# ---------------------------------------------------------------------------
# E12 — serving availability under injected faults
# ---------------------------------------------------------------------------


@EXPERIMENTS.register("E12")
def _serving_under_faults(
    session: Session,
    d: int = 6,
    g: int = 3,
    n_requests: int = 32,
    rate: float = 400.0,
    hotspot_fraction: float = 0.25,
    seed: int | None = None,
) -> ExperimentResult:
    """E12: the daemon stays available while every dispatch is fault-struck.

    An in-process :class:`~repro.serve.daemon.ServeDaemon` is configured
    with a permanent single-coupler fault at rate 1.0 — every dispatched
    request goes through injected execution and online recovery — and an
    open-loop Poisson load with a hot-spot arrival mix is fired at it.
    Availability is the verdict: zero transport/internal errors, every
    request either completed or explicitly shed, and every completion
    answered ``degraded`` (the faults really were injected).
    """
    from repro.faults import FaultSpec
    from repro.serve.daemon import ServeDaemon
    from repro.serve.loadgen import run_poisson_load

    root_seed = session.config.seed if seed is None else seed
    network = POPSNetwork(d, g)
    spec = FaultSpec.random(network, n_couplers=1, seed=root_seed, onset_slot=0)
    daemon = ServeDaemon(
        session.config.replace(sim_backend=None),
        batch_window_ms=1.0,
        faults=spec,
        fault_rate=1.0,
    )
    with daemon:
        host, port = daemon.address
        load = run_poisson_load(
            host,
            port,
            rate=rate,
            n_requests=n_requests,
            d=d,
            g=g,
            seed=root_seed,
            connections=4,
            hotspot_fraction=hotspot_fraction,
        )
        health = daemon.health()
    answered = load.completed + load.shed
    ok = (
        load.errors == 0
        and answered == load.n_requests
        and load.degraded == load.completed
        and health["degraded_responses"] == load.completed
    )
    rows = [
        [
            d,
            g,
            spec.describe(),
            load.n_requests,
            load.completed,
            load.shed,
            load.errors,
            load.degraded,
            round(load.latency_p95_ms, 3),
            ok,
        ]
    ]
    return ExperimentResult(
        experiment_id="E12",
        title="Serving availability under injected coupler faults",
        claim=(
            "with every dispatch fault-struck, the daemon answers every "
            "accepted request through online recovery — no unanswered "
            "requests, no internal errors, degraded flagged end to end"
        ),
        headers=[
            "d", "g", "fault", "requests", "completed", "shed",
            "errors", "degraded", "p95 ms", "ok",
        ],
        notes={
            "fault_rate": 1.0,
            "hotspot_fraction": hotspot_fraction,
            "class_latency_ms": load.class_latency_ms,
        },
        rows=rows,
    )
