"""Analysis layer: metrics, experiment runners, and plain-text reporting.

The experiment runners in :mod:`~repro.analysis.experiments` are the single
source of truth for every entry of EXPERIMENTS.md; they are registered in
:data:`repro.api.registry.EXPERIMENTS` and executed through
:meth:`repro.api.session.Session.experiment` — the benchmarks under
``benchmarks/`` and the command-line interface both go through that layer.
"""

from repro.analysis.metrics import (
    RoutingMetrics,
    routing_cache_key,
    slots_vs_bound,
    coupler_utilisation,
)
from repro.analysis.reporting import format_table, format_experiment_report
from repro.analysis.experiments import ExperimentResult

__all__ = [
    "RoutingMetrics",
    "routing_cache_key",
    "slots_vs_bound",
    "coupler_utilisation",
    "format_table",
    "format_experiment_report",
    "ExperimentResult",
]
