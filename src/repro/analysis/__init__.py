"""Analysis layer: metrics, experiment runners, and plain-text reporting.

The experiment runners in :mod:`~repro.analysis.experiments` are the single
source of truth for every entry of EXPERIMENTS.md; the benchmarks under
``benchmarks/`` and the command-line interface both call into them.
"""

from repro.analysis.metrics import (
    RoutingMetrics,
    measure_routing,
    slots_vs_bound,
    coupler_utilisation,
)
from repro.analysis.reporting import format_table, format_experiment_report
from repro.analysis.experiments import (
    ExperimentResult,
    run_theorem2_sweep,
    run_figure3_example,
    run_scaling_experiment,
    run_lower_bound_experiment,
    run_unification_experiment,
    run_direct_comparison,
    run_one_slot_fraction,
    run_collectives_experiment,
    ALL_EXPERIMENTS,
)

__all__ = [
    "RoutingMetrics",
    "measure_routing",
    "slots_vs_bound",
    "coupler_utilisation",
    "format_table",
    "format_experiment_report",
    "ExperimentResult",
    "run_theorem2_sweep",
    "run_figure3_example",
    "run_scaling_experiment",
    "run_lower_bound_experiment",
    "run_unification_experiment",
    "run_direct_comparison",
    "run_one_slot_fraction",
    "run_collectives_experiment",
    "ALL_EXPERIMENTS",
]
