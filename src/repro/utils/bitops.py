"""Bit-manipulation helpers.

These back the BPC (bit-permute-complement) permutation family and the
hypercube simulation patterns, where processor indices are manipulated through
their binary representations.
"""

from __future__ import annotations

from repro.exceptions import ValidationError

__all__ = [
    "bit_length_exact",
    "is_power_of_two",
    "reverse_bits",
    "flip_bit",
    "get_bit",
    "set_bit",
    "gray_code",
    "gray_to_binary",
]


def is_power_of_two(value: int) -> bool:
    """Return ``True`` iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def bit_length_exact(value: int) -> int:
    """Return ``k`` such that ``value == 2**k``; raise if ``value`` is not a power of two."""
    if not is_power_of_two(value):
        raise ValidationError(f"{value} is not a power of two")
    return value.bit_length() - 1


def get_bit(value: int, bit: int) -> int:
    """Return bit ``bit`` (0 = least significant) of ``value``."""
    return (value >> bit) & 1


def set_bit(value: int, bit: int, bit_value: int) -> int:
    """Return ``value`` with bit ``bit`` forced to ``bit_value`` (0 or 1)."""
    if bit_value not in (0, 1):
        raise ValidationError(f"bit_value must be 0 or 1, got {bit_value}")
    if bit_value:
        return value | (1 << bit)
    return value & ~(1 << bit)


def flip_bit(value: int, bit: int) -> int:
    """Return ``value`` with bit ``bit`` complemented."""
    return value ^ (1 << bit)


def reverse_bits(value: int, width: int) -> int:
    """Return ``value`` with its ``width`` least significant bits reversed."""
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def gray_code(value: int) -> int:
    """Return the binary-reflected Gray code of ``value``."""
    return value ^ (value >> 1)


def gray_to_binary(gray: int) -> int:
    """Invert :func:`gray_code`."""
    result = 0
    while gray:
        result ^= gray
        gray >>= 1
    return result
