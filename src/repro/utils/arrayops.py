"""Array micro-optimisation helpers shared by the vectorized kernels.

Centralises the dtype tricks the batched routing pipeline leans on so each
call site documents *why* it is safe rather than re-deriving it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shrink_sort_key"]

#: Largest key value that still fits the 16-bit fast path.
_INT16_MAX = int(np.iinfo(np.int16).max)


def shrink_sort_key(key: np.ndarray, bound: int) -> np.ndarray:
    """Return ``key`` ready for sorting, in 16 bits when the values fit.

    NumPy sorts 16-bit integers with a radix sort — roughly an order of
    magnitude faster than the comparison sort used for wider integers.  When
    the caller can bound the key values by ``bound <= 2**15 - 1`` the cast is
    value-preserving, and both ``np.sort`` (same numbers out) and stable
    ``np.argsort`` (equal keys stay equal, so the permutation is unchanged)
    are bit-identical to sorting the original array.  Larger bounds return
    ``key`` untouched.
    """
    if 0 <= bound <= _INT16_MAX:
        return key.astype(np.int16)
    return key
