"""Deterministic random-number helpers.

Every stochastic routine in the library accepts either an explicit
:class:`random.Random`, an integer seed, or ``None``; :func:`resolve_rng`
normalises those three spellings to a concrete generator so experiments are
reproducible by passing a seed at the top level only.
"""

from __future__ import annotations

import random

__all__ = ["resolve_rng", "spawn_rngs"]


def resolve_rng(rng: random.Random | int | None) -> random.Random:
    """Normalise ``rng`` to a :class:`random.Random` instance.

    ``None`` produces a generator seeded from the system source; an ``int`` is
    used as a seed; an existing generator is returned unchanged.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool):
        raise TypeError("rng seed must be an int, Random, or None; got bool")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"rng must be an int seed, random.Random, or None; got {type(rng).__name__}")


def spawn_rngs(rng: random.Random | int | None, count: int) -> list[random.Random]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are seeded from successive draws of the parent so a single
    top-level seed yields a reproducible family of streams (one per worker,
    repetition, or parameter point).
    """
    parent = resolve_rng(rng)
    return [random.Random(parent.getrandbits(64)) for _ in range(count)]
