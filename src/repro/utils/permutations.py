"""Permutation algebra.

Permutations over ``{0, ..., n-1}`` are represented in *one-line notation* as
sequences of images: ``pi[i]`` is the destination of element ``i``.  The
:class:`Permutation` class wraps such a sequence with composition, inversion,
cycle utilities and the classification predicates used by the lower-bound
propositions of the paper.  Free functions operating on plain lists are also
exported for use in hot loops where object overhead matters.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator, Sequence

from repro.exceptions import ValidationError
from repro.utils.validation import check_permutation, check_positive_int

__all__ = [
    "Permutation",
    "identity_permutation",
    "compose",
    "invert",
    "is_permutation",
    "is_derangement",
    "is_involution",
    "cycle_decomposition",
    "permutation_from_cycles",
    "fixed_points",
    "random_permutation",
    "random_derangement",
]


def identity_permutation(n: int) -> list[int]:
    """Return the identity permutation on ``n`` elements."""
    check_positive_int(n, "n")
    return list(range(n))


def is_permutation(pi: Sequence[int]) -> bool:
    """Return ``True`` iff ``pi`` is a permutation of ``{0, ..., len(pi)-1}``."""
    try:
        check_permutation(pi)
    except ValidationError:
        return False
    return True


def compose(outer: Sequence[int], inner: Sequence[int]) -> list[int]:
    """Return the composition ``outer ∘ inner`` (apply ``inner`` first).

    ``compose(sigma, tau)[i] == sigma[tau[i]]``.
    """
    if len(outer) != len(inner):
        raise ValidationError(
            f"cannot compose permutations of different sizes "
            f"({len(outer)} and {len(inner)})"
        )
    return [outer[inner[i]] for i in range(len(inner))]


def invert(pi: Sequence[int]) -> list[int]:
    """Return the inverse permutation of ``pi``."""
    inverse = [0] * len(pi)
    for source, image in enumerate(pi):
        inverse[image] = source
    return inverse


def fixed_points(pi: Sequence[int]) -> list[int]:
    """Return the sorted list of fixed points of ``pi``."""
    return [i for i, image in enumerate(pi) if image == i]


def is_derangement(pi: Sequence[int]) -> bool:
    """Return ``True`` iff ``pi`` has no fixed points (``pi(i) != i`` for all i)."""
    return all(image != i for i, image in enumerate(pi))


def is_involution(pi: Sequence[int]) -> bool:
    """Return ``True`` iff ``pi`` is its own inverse."""
    return all(pi[pi[i]] == i for i in range(len(pi)))


def cycle_decomposition(pi: Sequence[int]) -> list[list[int]]:
    """Return the cycle decomposition of ``pi``.

    Cycles are returned with their smallest element first and are ordered by
    that smallest element.  Fixed points appear as singleton cycles.
    """
    n = len(pi)
    visited = [False] * n
    cycles: list[list[int]] = []
    for start in range(n):
        if visited[start]:
            continue
        cycle = [start]
        visited[start] = True
        current = pi[start]
        while current != start:
            cycle.append(current)
            visited[current] = True
            current = pi[current]
        cycles.append(cycle)
    return cycles


def permutation_from_cycles(cycles: Iterable[Iterable[int]], n: int) -> list[int]:
    """Build a permutation on ``n`` elements from a collection of disjoint cycles.

    Elements not mentioned in any cycle are fixed points.
    """
    check_positive_int(n, "n")
    pi = list(range(n))
    seen: set[int] = set()
    for cycle in cycles:
        elements = list(cycle)
        for element in elements:
            if not (0 <= element < n):
                raise ValidationError(f"cycle element {element} out of range [0, {n})")
            if element in seen:
                raise ValidationError(f"element {element} appears in more than one cycle")
            seen.add(element)
        for position, element in enumerate(elements):
            pi[element] = elements[(position + 1) % len(elements)]
    return pi


def random_permutation(n: int, rng: random.Random | None = None) -> list[int]:
    """Return a uniformly random permutation of ``n`` elements."""
    check_positive_int(n, "n")
    rng = rng or random.Random()
    pi = list(range(n))
    rng.shuffle(pi)
    return pi


def random_derangement(n: int, rng: random.Random | None = None) -> list[int]:
    """Return a uniformly random derangement of ``n`` elements.

    Uses rejection sampling on uniform permutations, which succeeds with
    probability approaching ``1/e``; for ``n == 1`` no derangement exists and a
    :class:`ValidationError` is raised.
    """
    check_positive_int(n, "n")
    if n == 1:
        raise ValidationError("no derangement exists on a single element")
    rng = rng or random.Random()
    while True:
        candidate = random_permutation(n, rng)
        if is_derangement(candidate):
            return candidate


class Permutation:
    """An immutable permutation of ``{0, ..., n-1}`` in one-line notation.

    Supports composition with ``*`` (``(p * q)(i) == p(q(i))``), inversion,
    iteration over images, indexing and equality.  Instances validate their
    input eagerly so downstream code can assume well-formedness.
    """

    __slots__ = ("_images",)

    def __init__(self, images: Sequence[int]):
        self._images: tuple[int, ...] = tuple(check_permutation(images))

    # -- constructors -----------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """The identity permutation on ``n`` elements."""
        return cls(identity_permutation(n))

    @classmethod
    def from_cycles(cls, cycles: Iterable[Iterable[int]], n: int) -> "Permutation":
        """Build a permutation from disjoint cycles (unmentioned points are fixed)."""
        return cls(permutation_from_cycles(cycles, n))

    @classmethod
    def random(cls, n: int, rng: random.Random | None = None) -> "Permutation":
        """A uniformly random permutation on ``n`` elements."""
        return cls(random_permutation(n, rng))

    @classmethod
    def random_derangement(cls, n: int, rng: random.Random | None = None) -> "Permutation":
        """A uniformly random derangement on ``n`` elements."""
        return cls(random_derangement(n, rng))

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._images)

    def __getitem__(self, i: int) -> int:
        return self._images[i]

    def __call__(self, i: int) -> int:
        return self._images[i]

    def __iter__(self) -> Iterator[int]:
        return iter(self._images)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Permutation):
            return self._images == other._images
        if isinstance(other, (list, tuple)):
            return list(self._images) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._images)

    def __repr__(self) -> str:
        return f"Permutation({list(self._images)!r})"

    def __mul__(self, other: "Permutation") -> "Permutation":
        if not isinstance(other, Permutation):
            return NotImplemented
        return Permutation(compose(self._images, other._images))

    # -- algebra -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of elements the permutation acts on."""
        return len(self._images)

    def to_list(self) -> list[int]:
        """Return the one-line notation as a new list."""
        return list(self._images)

    def inverse(self) -> "Permutation":
        """Return the inverse permutation."""
        return Permutation(invert(self._images))

    def cycles(self) -> list[list[int]]:
        """Return the cycle decomposition (fixed points as singletons)."""
        return cycle_decomposition(self._images)

    def fixed_points(self) -> list[int]:
        """Return the sorted list of fixed points."""
        return fixed_points(self._images)

    def is_derangement(self) -> bool:
        """True iff the permutation has no fixed points."""
        return is_derangement(self._images)

    def is_involution(self) -> bool:
        """True iff the permutation is its own inverse."""
        return is_involution(self._images)

    def order(self) -> int:
        """Return the order of the permutation in the symmetric group."""
        from math import lcm

        result = 1
        for cycle in self.cycles():
            result = lcm(result, len(cycle))
        return result
