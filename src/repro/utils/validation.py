"""Input validation helpers used across the library.

All helpers raise :class:`repro.exceptions.ValidationError` (or
:class:`ConfigurationError` where the problem is structural) with messages that
name the offending argument, so failures surface close to the API boundary
rather than deep inside the combinatorial machinery.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError, ValidationError

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_in_range",
    "check_divides",
    "check_permutation",
    "check_permutation_array",
    "check_permutation_stack",
    "check_probability",
    "check_type",
]


def check_type(value: Any, types: type | tuple[type, ...], name: str) -> Any:
    """Ensure ``value`` is an instance of ``types``; return it unchanged."""
    if not isinstance(value, types):
        raise ValidationError(
            f"{name} must be of type {types!r}, got {type(value).__name__}"
        )
    return value


def check_positive_int(value: Any, name: str) -> int:
    """Ensure ``value`` is an ``int`` (not bool) strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Ensure ``value`` is an ``int`` (not bool) greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(value: int, low: int, high: int, name: str) -> int:
    """Ensure ``low <= value < high``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if not (low <= value < high):
        raise ValidationError(f"{name} must be in [{low}, {high}), got {value}")
    return value


def check_divides(divisor: int, dividend: int, context: str) -> None:
    """Ensure ``divisor`` divides ``dividend`` exactly."""
    if divisor <= 0:
        raise ConfigurationError(f"{context}: divisor must be positive, got {divisor}")
    if dividend % divisor != 0:
        raise ConfigurationError(
            f"{context}: {divisor} does not divide {dividend}"
        )


def check_permutation(pi: Sequence[int], n: int | None = None) -> list[int]:
    """Validate that ``pi`` is a permutation of ``{0, ..., len(pi) - 1}``.

    Parameters
    ----------
    pi:
        Candidate permutation given as a sequence of destination indices.
    n:
        Expected length; if given, ``len(pi)`` must equal ``n``.

    Returns
    -------
    list[int]
        A defensive copy of the permutation as a plain list of ints.
    """
    values = [int(x) for x in pi]
    if n is not None and len(values) != n:
        raise ValidationError(
            f"permutation has length {len(values)}, expected {n}"
        )
    size = len(values)
    seen = [False] * size
    for image in values:
        if not (0 <= image < size):
            raise ValidationError(
                f"permutation entry {image} out of range [0, {size})"
            )
        if seen[image]:
            raise ValidationError(f"permutation repeats the image {image}")
        seen[image] = True
    return values


def check_permutation_array(pi: Sequence[int], n: int | None = None) -> np.ndarray:
    """Vectorized :func:`check_permutation` returning an ``int64`` array.

    Same contract and messages, with the per-entry Python loop replaced by
    whole-array range and ``bincount`` checks — the validation path of the
    array-native router front end.
    """
    try:
        values = np.asarray(pi, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as error:
        raise ValidationError(f"permutation is not integer-valued: {error}") from None
    if values.ndim != 1:
        raise ValidationError(
            f"permutation must be one-dimensional, got shape {values.shape}"
        )
    if n is not None and values.size != n:
        raise ValidationError(
            f"permutation has length {values.size}, expected {n}"
        )
    size = values.size
    out_of_range = (values < 0) | (values >= size)
    if out_of_range.any():
        image = int(values[np.flatnonzero(out_of_range)[0]])
        raise ValidationError(
            f"permutation entry {image} out of range [0, {size})"
        )
    counts = np.bincount(values, minlength=size)
    repeated = np.flatnonzero(counts > 1)
    if repeated.size:
        raise ValidationError(f"permutation repeats the image {int(repeated[0])}")
    return values


def check_permutation_stack(pis: Any, n: int | None = None) -> np.ndarray:
    """Validate a ``(B, n)`` stack of permutations; returns an ``int64`` array.

    Batched :func:`check_permutation_array`: every row must be a permutation
    of ``{0, ..., n-1}``.  Violations raise with the single-permutation
    message for the row-major first offender.
    """
    try:
        values = np.asarray(pis, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as error:
        raise ValidationError(f"permutation is not integer-valued: {error}") from None
    if values.ndim != 2:
        raise ValidationError(
            f"permutation stack must be two-dimensional, got shape {values.shape}"
        )
    batch, size = values.shape
    if n is not None and size != n:
        raise ValidationError(
            f"permutation has length {size}, expected {n}"
        )
    out_of_range = (values < 0) | (values >= size)
    if out_of_range.any():
        b, i = np.unravel_index(int(np.argmax(out_of_range)), out_of_range.shape)
        raise ValidationError(
            f"permutation entry {int(values[b, i])} out of range [0, {size})"
        )
    counts = np.bincount(
        (np.arange(batch, dtype=np.int64)[:, None] * size + values).ravel(),
        minlength=batch * size,
    ).reshape(batch, size)
    repeated = counts > 1
    if repeated.any():
        b, image = np.unravel_index(int(np.argmax(repeated)), repeated.shape)
        raise ValidationError(f"permutation repeats the image {int(image)}")
    return values


def check_probability(value: float, name: str) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value
