"""Reproduction of *Routing Permutations in Partitioned Optical Passive Stars
Networks* (Alessandro Mei and Romeo Rizzi, IPPS 2002).

The package is organised in layers:

* :mod:`repro.graph` — bipartite multigraphs, matchings, Euler splits and the
  König edge colouring behind Theorem 1;
* :mod:`repro.pops` — the POPS(d, g) network model and a slot-accurate
  simulator standing in for the optical hardware;
* :mod:`repro.routing` — the paper's contribution: fair distributions
  (Theorem 1), the universal permutation router (Theorem 2), the one-slot
  characterisation, the lower bounds (Propositions 1–3) and baseline routers;
* :mod:`repro.patterns` — the permutation families and random workloads of the
  surrounding literature;
* :mod:`repro.algorithms` — collectives built on the router (broadcast,
  reduction, prefix sum, matrix operations, hypercube/mesh emulation);
* :mod:`repro.analysis` — metrics, experiment runners and reporting.

Quickstart
----------
>>> from repro import POPSNetwork, PermutationRouter, POPSSimulator
>>> from repro.patterns import vector_reversal
>>> network = POPSNetwork(d=8, g=4)
>>> router = PermutationRouter(network)
>>> plan = router.route(vector_reversal(network.n))
>>> plan.n_slots                      # 2 * ceil(8 / 4)
4
>>> POPSSimulator(network).route_and_verify(plan.schedule, plan.packets).n_slots
4
"""

from repro.pops.topology import POPSNetwork, Coupler
from repro.pops.packet import Packet
from repro.pops.schedule import RoutingSchedule, SlotProgram
from repro.pops.simulator import POPSSimulator, SimulationResult
from repro.pops.engine import BatchedSimulator
from repro.pops.collective_engine import CollectiveSimulator
from repro.routing.permutation_router import (
    PermutationRouter,
    RoutingPlan,
    theorem2_slot_bound,
)
from repro.routing.fair_distribution import FairDistribution, FairDistributionSolver
from repro.routing.list_system import ListSystem
from repro.routing.one_slot import OneSlotRouter, is_one_slot_routable
from repro.routing.lower_bounds import (
    best_known_lower_bound,
    is_group_blocked,
    is_group_moving,
)
from repro.routing.baselines import BlockedPermutationRouter, DirectRouter
from repro.api.config import RunConfig
from repro.api.session import Session
from repro import exceptions

__version__ = "1.2.0"

__all__ = [
    "RunConfig",
    "Session",
    "POPSNetwork",
    "Coupler",
    "Packet",
    "RoutingSchedule",
    "SlotProgram",
    "POPSSimulator",
    "SimulationResult",
    "BatchedSimulator",
    "CollectiveSimulator",
    "PermutationRouter",
    "RoutingPlan",
    "theorem2_slot_bound",
    "FairDistribution",
    "FairDistributionSolver",
    "ListSystem",
    "OneSlotRouter",
    "is_one_slot_routable",
    "best_known_lower_bound",
    "is_group_blocked",
    "is_group_moving",
    "BlockedPermutationRouter",
    "DirectRouter",
    "exceptions",
    "__version__",
]
