"""The serving layer: a long-lived routing daemon under live traffic.

The batch sweeps route permutations the caller already holds; a serving
deployment is the opposite shape — many concurrent clients, each holding one
permutation, all wanting an answer *now*.  This package multiplexes that
traffic onto the megabatch kernels:

* :mod:`repro.serve.protocol` — the length-prefixed JSON wire format and the
  request/response vocabulary shared by daemon and client;
* :mod:`repro.serve.telemetry` — per-stage latency percentiles, throughput
  and batch-size accounting, exposed through the ``stats`` request;
* :mod:`repro.serve.batcher` — the dynamic batcher: requests arriving within
  a window for the same ``(d, g, n, backend)`` shape coalesce into one
  :meth:`~repro.api.session.Session.route_batch` call;
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`, the socket front end
  holding one warm :class:`~repro.api.session.Session`;
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking client;
* :mod:`repro.serve.loadgen` — the open-loop Poisson load generator behind
  ``benchmarks/bench_serve.py``.

Quick start (in-process daemon, e.g. in a test or notebook)::

    from repro.serve import ServeClient, ServeDaemon

    with ServeDaemon(batch_window_ms=2.0) as daemon:
        with ServeClient(*daemon.address) as client:
            outcome = client.route(pi, d=32, g=32)
            print(outcome.metrics.slots, outcome.batch_size)

From a terminal::

    pops-repro serve --port 8472 --plan-store .plan-store
"""

from repro.serve.client import RouteOutcome, ServeClient, ServeError
from repro.serve.daemon import ServeDaemon
from repro.serve.loadgen import LoadReport, run_poisson_load, sweep_rates
from repro.serve.telemetry import ServeTelemetry

__all__ = [
    "LoadReport",
    "RouteOutcome",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeTelemetry",
    "run_poisson_load",
    "sweep_rates",
]
