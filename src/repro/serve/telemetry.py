"""Latency and throughput accounting for the serving daemon.

Every request is timed through four stages, named from the request's point
of view:

* ``queue_wait`` — submitted to the batcher until the worker popped it;
* ``batch_assembly`` — popped until its batch closed and routing began (the
  time spent waiting for same-shape peers inside the batching window);
* ``route`` — the ``Session.route`` / ``route_batch`` call itself;
* ``respond`` — serialising and writing the response frame.

The daemon records durations here from its handler and batcher threads; the
``stats`` request serialises :meth:`ServeTelemetry.snapshot`, which reduces
the samples to p50/p95/p99 percentiles (milliseconds), overall routes/sec,
and the batch-size histogram that shows dynamic batching actually coalescing
(every entry at size >= 2 is a megabatch kernel call that replaced that many
single routes).

Samples are kept in bounded deques (:data:`MAX_SAMPLES` most recent per
stage) so a long-lived daemon's telemetry cannot grow without bound; the
counters are cumulative for the whole process lifetime.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Any

import numpy as np

__all__ = ["ServeTelemetry", "STAGES", "MAX_SAMPLES"]

#: Stage names, in pipeline order.
STAGES: tuple[str, ...] = ("queue_wait", "batch_assembly", "route", "respond")

#: Most recent duration samples kept per stage.
MAX_SAMPLES = 100_000

#: Percentiles reported per stage.
_PERCENTILES: tuple[int, ...] = (50, 95, 99)


class ServeTelemetry:
    """Thread-safe request/latency/batch accounting for one daemon."""

    def __init__(self):
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self._samples: dict[str, deque[float]] = {
            stage: deque(maxlen=MAX_SAMPLES) for stage in STAGES
        }
        self._batch_sizes: Counter[int] = Counter()
        self.requests = 0          # route requests accepted off the wire
        self.responses = 0         # route responses successfully written
        self.shed = 0              # rejected with queue-full
        self.errors: Counter[str] = Counter()  # error responses by code

    # -- recording (hot path: one lock acquisition per call) ---------------

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_response(self, stage_seconds: dict[str, float]) -> None:
        """One route request answered; ``stage_seconds`` maps stage -> duration."""
        with self._lock:
            self.responses += 1
            for stage, seconds in stage_seconds.items():
                self._samples[stage].append(seconds)

    def record_batch(self, size: int) -> None:
        """One routing call dispatched covering ``size`` coalesced requests."""
        with self._lock:
            self._batch_sizes[size] += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1
            self.errors["queue-full"] += 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self.errors[code] += 1

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All counters plus per-stage percentiles, JSON-ready.

        ``stages`` maps each stage to ``{"count", "p50_ms", "p95_ms",
        "p99_ms", "mean_ms"}`` (zeros when no samples yet);
        ``batch_size_histogram`` maps batch size (as a string, JSON objects
        have string keys) to how many routing calls dispatched at that size;
        ``batched_requests`` counts requests that shared their kernel call
        with at least one peer; ``routes_per_second`` is responses over
        uptime — the sustained rate since the daemon started.
        """
        with self._lock:
            uptime = time.perf_counter() - self._started
            stages: dict[str, dict[str, float]] = {}
            for stage in STAGES:
                samples = self._samples[stage]
                if samples:
                    values = np.fromiter(samples, dtype=np.float64, count=len(samples))
                    pcts = np.percentile(values, _PERCENTILES)
                    stages[stage] = {
                        "count": len(samples),
                        "p50_ms": float(pcts[0]) * 1e3,
                        "p95_ms": float(pcts[1]) * 1e3,
                        "p99_ms": float(pcts[2]) * 1e3,
                        "mean_ms": float(values.mean()) * 1e3,
                    }
                else:
                    stages[stage] = {
                        "count": 0, "p50_ms": 0.0, "p95_ms": 0.0,
                        "p99_ms": 0.0, "mean_ms": 0.0,
                    }
            histogram = {str(size): count for size, count in sorted(self._batch_sizes.items())}
            batched = sum(
                size * count for size, count in self._batch_sizes.items() if size > 1
            )
            return {
                "uptime_seconds": uptime,
                "requests": self.requests,
                "responses": self.responses,
                "shed": self.shed,
                "errors": dict(self.errors),
                "routes_per_second": self.responses / uptime if uptime > 0 else 0.0,
                "batch_size_histogram": histogram,
                "batched_requests": batched,
                "stages": stages,
            }
