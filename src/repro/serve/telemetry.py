"""Latency and throughput accounting for the serving daemon.

Every request is timed through four stages, named from the request's point
of view:

* ``queue_wait`` — submitted to the batcher until the worker popped it;
* ``batch_assembly`` — popped until its batch closed and routing began (the
  time spent waiting for same-shape peers inside the batching window);
* ``route`` — the ``Session.route`` / ``route_batch`` call itself;
* ``respond`` — serialising and writing the response frame.

The daemon records durations here from its handler and batcher threads; the
``stats`` request serialises :meth:`ServeTelemetry.snapshot`, which reduces
the samples to p50/p95/p99 percentiles (milliseconds), overall routes/sec,
and the batch-size histogram that shows dynamic batching actually coalescing
(every entry at size >= 2 is a megabatch kernel call that replaced that many
single routes).

Since the observability layer landed, the telemetry is built entirely on the
:mod:`repro.obs` metrics model: each stage is a
:class:`~repro.obs.metrics.Histogram` (bounded at :data:`MAX_SAMPLES`
samples, reduced through the shared percentile implementation in
:mod:`repro.obs.stats`), the batch sizes are an
:class:`~repro.obs.metrics.IntHistogram`, and the request/response/shed/error
counts are :class:`~repro.obs.metrics.Counter` series in one per-daemon
:class:`~repro.obs.metrics.MetricsRegistry` — which is what the daemon's
``metrics`` op renders as Prometheus text.  The :meth:`snapshot` shape is
bit-for-bit the historical one (pinned in ``tests/test_serve.py`` and
``tests/test_obs.py``).
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = ["ServeTelemetry", "STAGES", "MAX_SAMPLES"]

#: Stage names, in pipeline order.
STAGES: tuple[str, ...] = ("queue_wait", "batch_assembly", "route", "respond")

#: Most recent duration samples kept per stage.
MAX_SAMPLES = 100_000


class ServeTelemetry:
    """Thread-safe request/latency/batch accounting for one daemon."""

    def __init__(self):
        self._started = time.perf_counter()
        self.registry = MetricsRegistry()
        self._stages = {
            stage: self.registry.histogram(
                "serve_stage_seconds", maxlen=MAX_SAMPLES, stage=stage
            )
            for stage in STAGES
        }
        self._batch_sizes = self.registry.int_histogram("serve_batch_size")
        self._requests = self.registry.counter("serve_requests")
        self._responses = self.registry.counter("serve_responses")
        self._shed = self.registry.counter("serve_shed")
        self._degraded = self.registry.counter("serve_degraded")

    # -- compatible counter reads -------------------------------------------

    @property
    def requests(self) -> int:
        """Route requests accepted off the wire."""
        return self._requests.value

    @property
    def responses(self) -> int:
        """Route responses successfully written."""
        return self._responses.value

    @property
    def shed(self) -> int:
        """Requests rejected with queue-full."""
        return self._shed.value

    @property
    def degraded(self) -> int:
        """Responses answered via fault recovery on a degraded topology."""
        return self._degraded.value

    @property
    def errors(self) -> dict[str, int]:
        """Error responses by code (a fresh dict; mutating it changes nothing)."""
        return {
            series.labels["code"]: series.value
            for series in self.registry.series("serve_errors")
            if series.value > 0
        }

    # -- recording (hot path) -----------------------------------------------

    def record_request(self) -> None:
        self._requests.inc()

    def record_response(self, stage_seconds: dict[str, float]) -> None:
        """One route request answered; ``stage_seconds`` maps stage -> duration."""
        self._responses.inc()
        for stage, seconds in stage_seconds.items():
            self._stages[stage].observe(seconds)

    def record_batch(self, size: int) -> None:
        """One routing call dispatched covering ``size`` coalesced requests."""
        self._batch_sizes.observe(size)

    def record_shed(self) -> None:
        self._shed.inc()
        self.record_error("queue-full")

    def record_degraded(self) -> None:
        """One response served through online fault recovery."""
        self._degraded.inc()

    def record_error(self, code: str) -> None:
        self.registry.counter("serve_errors", code=code).inc()

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All counters plus per-stage percentiles, JSON-ready.

        ``stages`` maps each stage to ``{"count", "p50_ms", "p95_ms",
        "p99_ms", "mean_ms"}`` (zeros when no samples yet);
        ``batch_size_histogram`` maps batch size (as a string, JSON objects
        have string keys) to how many routing calls dispatched at that size;
        ``batched_requests`` counts requests that shared their kernel call
        with at least one peer; ``routes_per_second`` is responses over
        uptime — the sustained rate since the daemon started.
        """
        uptime = time.perf_counter() - self._started
        stages = {
            stage: histogram.summary_ms()
            for stage, histogram in self._stages.items()
        }
        sizes = self._batch_sizes.counts()
        responses = self.responses
        return {
            "uptime_seconds": uptime,
            "requests": self.requests,
            "responses": responses,
            "shed": self.shed,
            "degraded": self.degraded,
            "errors": self.errors,
            "routes_per_second": responses / uptime if uptime > 0 else 0.0,
            "batch_size_histogram": {str(size): count for size, count in sizes.items()},
            "batched_requests": sum(
                size * count for size, count in sizes.items() if size > 1
            ),
            "stages": stages,
        }
