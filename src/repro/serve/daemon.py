"""`ServeDaemon`: the socket front end of the serving layer.

One daemon holds one warm :class:`~repro.api.session.Session` — schedule
cache primed, plan store attached when configured — and serves route
requests concurrently over a TCP socket bound to localhost, speaking the
length-prefixed JSON protocol of :mod:`repro.serve.protocol`.  Each accepted
connection gets a handler thread that parses frames and waits on futures;
all actual routing happens on the single worker thread of the
:class:`~repro.serve.batcher.DynamicBatcher`, which coalesces same-shape
requests into megabatch kernel calls.

The operational contract (pinned in ``tests/test_serve.py``):

* **Backpressure.**  The request queue is bounded; when it is full the
  daemon sheds with an explicit ``queue-full`` error response instead of
  stalling the connection.
* **Fault isolation.**  A malformed frame, an invalid request, a routing
  failure, or a client that disconnects while its batch is in flight only
  ever affects that one request — peers in the same batch still get their
  responses.
* **Graceful shutdown.**  :meth:`ServeDaemon.shutdown` (the CLI's SIGTERM
  handler) stops intake, lets the batcher drain every accepted request,
  waits for handlers to flush the responses, then closes connections.

Use as a context manager for in-process serving (tests, notebooks,
examples), or through ``pops-repro serve`` as a standalone process.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any

import numpy as np

from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.api.config import RunConfig
from repro.api.registry import ROUTER_BACKENDS, ensure_builtin_backends
from repro.api.session import Session
from repro.exceptions import ConfigurationError, RoutingError, SimulationError, ValidationError
from repro.faults import FaultSpec
from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.batcher import DynamicBatcher, QueueFullError, ShuttingDownError
from repro.serve.telemetry import STAGES, ServeTelemetry

__all__ = ["ServeDaemon"]

#: How long shutdown waits for handler threads to flush drained responses.
_FLUSH_TIMEOUT = 10.0


class ServeDaemon:
    """Long-lived routing daemon with dynamic megabatching.

    Parameters
    ----------
    config:
        Session configuration.  Defaults to the serving sweet spot — the
        ``euler-array`` router on the ``batched`` engine; a config whose
        ``sim_backend`` is unset is resolved to ``"batched"`` (the daemon
        exists to feed the megabatch kernels).  Attach a plan store via
        ``config.plan_store_path`` to start warm.
    host / port:
        Bind address; port ``0`` (default) picks an ephemeral port, read it
        from :attr:`address` after :meth:`start`.
    batch_window_ms:
        Dynamic-batching window: how long the batcher waits for same-shape
        company after a request arrives.  ``0`` disables coalescing.
    max_batch:
        Batch closes early at this many coalesced requests.
    max_queue:
        Bound of the request queue (beyond it requests are shed).
    faults / fault_rate / fault_seed:
        Chaos-testing knobs, forwarded to the batcher: ``faults`` is a
        :class:`~repro.faults.FaultSpec` injected into dispatches with
        probability ``fault_rate`` per dispatch (deterministic under
        ``fault_seed``).  Struck requests are recovered online over the
        surviving couplers and answered with ``"degraded": true``.
    """

    def __init__(
        self,
        config: RunConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window_ms: float = 2.0,
        max_batch: int = 64,
        max_queue: int = 1024,
        faults: FaultSpec | None = None,
        fault_rate: float = 1.0,
        fault_seed: int = 0,
    ):
        ensure_builtin_backends()
        if config is None:
            config = RunConfig(router_backend="euler-array", sim_backend="batched")
        elif config.sim_backend is None:
            config = config.replace(sim_backend="batched")
        self.config = config
        self.session = Session(config)
        self.telemetry = ServeTelemetry()
        self.batcher = DynamicBatcher(
            self.session,
            self.telemetry,
            batch_window=batch_window_ms / 1e3,
            max_batch=max_batch,
            max_queue=max_queue,
            faults=faults,
            fault_rate=fault_rate,
            fault_seed=fault_seed,
        )
        self._host = host
        self._port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: set[threading.Thread] = set()
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._shutting_down = False
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the daemon is listening on (valid after start)."""
        if self._listener is None:
            raise RuntimeError("daemon is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> tuple[str, int]:
        """Bind, listen, start the batcher and the accept loop."""
        if self._started:
            raise RuntimeError("daemon already started")
        self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(128)
        self._listener = listener
        self.batcher.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="pops-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, drain (or fail) pending work, close connections.

        With ``drain=True`` every request accepted before the call gets a
        real response — in-flight batches complete — before connections are
        torn down; ``drain=False`` fails pending requests fast.  Idempotent.
        """
        if self._shutting_down:
            return
        self._shutting_down = True
        if self._listener is not None:
            try:
                # close() alone does not wake a thread blocked in accept();
                # shutdown() does, making the accept-loop join immediate.
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=_FLUSH_TIMEOUT)
        self.batcher.shutdown(drain=drain, timeout=_FLUSH_TIMEOUT if drain else 1.0)
        # Batcher resolved every future; wait for handler threads to put the
        # responses on the wire before yanking the connections.
        deadline = time.perf_counter() + _FLUSH_TIMEOUT
        with self._inflight_cv:
            while self._inflight > 0 and time.perf_counter() < deadline:
                self._inflight_cv.wait(timeout=0.05)
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        for handler in list(self._handlers):
            handler.join(timeout=1.0)

    def __enter__(self) -> "ServeDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    # -- accept / per-connection handling ----------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                self._connections.add(conn)
            handler = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="pops-serve-conn",
                daemon=True,
            )
            self._handlers.add(handler)
            handler.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = protocol.recv_frame(conn)
                except protocol.MalformedFrameError as exc:
                    # Framing is still aligned: answer and keep serving.
                    self.telemetry.record_error(protocol.ERR_MALFORMED_JSON)
                    if not self._send(conn, protocol.error_response(
                        protocol.ERR_MALFORMED_JSON, str(exc)
                    )):
                        return
                    continue
                except protocol.FrameTooLargeError as exc:
                    # The stream cannot be resynchronised: answer, then close.
                    self.telemetry.record_error(protocol.ERR_OVERSIZED_FRAME)
                    self._send(conn, protocol.error_response(
                        protocol.ERR_OVERSIZED_FRAME, str(exc)
                    ))
                    return
                except OSError:
                    return  # client vanished
                if request is None:
                    return  # clean EOF
                if not self._handle_request(conn, request):
                    return
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._handlers.discard(threading.current_thread())

    def _send(self, conn: socket.socket, payload: dict[str, Any]) -> bool:
        """Write one response frame; ``False`` when the client is gone."""
        try:
            protocol.send_frame(conn, payload)
        except (OSError, protocol.FrameError):
            self.telemetry.record_error("client-disconnected")
            return False
        return True

    def _handle_request(self, conn: socket.socket, request: dict[str, Any]) -> bool:
        """Dispatch one parsed request; ``False`` ends the connection."""
        op = request.get("op")
        if op == "route":
            return self._handle_route(conn, request)
        if op == "stats":
            return self._send(conn, {"ok": True, "stats": self.stats()})
        if op == "metrics":
            return self._send(conn, {"ok": True, "metrics": self.metrics_text()})
        if op == "ping":
            return self._send(conn, {"ok": True, "pong": True})
        if op == "health":
            return self._send(conn, {"ok": True, "health": self.health()})
        self.telemetry.record_error(protocol.ERR_UNKNOWN_OP)
        return self._send(conn, protocol.error_response(
            protocol.ERR_UNKNOWN_OP, f"unknown op {op!r}"
        ))

    # -- the route request ---------------------------------------------------

    def _parse_route(
        self, request: dict[str, Any]
    ) -> tuple[np.ndarray, int, int, str, float | None]:
        """Validate a route request's fields; raises ``ValidationError``."""
        d, g = request.get("d"), request.get("g")
        for name, value in (("d", d), ("g", g)):
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValidationError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        backend = request.get("backend", self.config.router_backend)
        if backend not in ROUTER_BACKENDS.names():
            raise ValidationError(
                f"unknown router backend {backend!r}; registered: "
                f"{', '.join(ROUTER_BACKENDS.names())}"
            )
        pi = request.get("pi")
        if not isinstance(pi, list):
            raise ValidationError(f"pi must be a list of ints, got {type(pi).__name__}")
        try:
            images = np.asarray(pi, dtype=np.int64)
        except (TypeError, ValueError, OverflowError) as exc:
            raise ValidationError(f"pi must be a list of ints: {exc}") from None
        if images.ndim != 1:
            raise ValidationError(f"pi must be one-dimensional, got shape {images.shape}")
        if images.shape[0] != d * g:
            raise ValidationError(
                f"pi has length {images.shape[0]}, the POPS(d={d}, g={g}) "
                f"network needs n = {d * g}"
            )
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None:
            if isinstance(deadline_ms, bool) or not isinstance(
                deadline_ms, (int, float)
            ) or deadline_ms <= 0:
                raise ValidationError(
                    f"deadline_ms must be a positive number, got {deadline_ms!r}"
                )
        deadline_s = float(deadline_ms) / 1e3 if deadline_ms is not None else None
        return images, d, g, backend, deadline_s

    def _handle_route(self, conn: socket.socket, request: dict[str, Any]) -> bool:
        self.telemetry.record_request()
        if self._shutting_down:
            self.telemetry.record_error(protocol.ERR_SHUTTING_DOWN)
            return self._send(conn, protocol.error_response(
                protocol.ERR_SHUTTING_DOWN, "daemon is shutting down"
            ))
        try:
            images, d, g, backend, deadline_s = self._parse_route(request)
        except ValidationError as exc:
            self.telemetry.record_error(protocol.ERR_BAD_REQUEST)
            return self._send(conn, protocol.error_response(
                protocol.ERR_BAD_REQUEST, str(exc)
            ))
        try:
            future = self.batcher.submit(images, d=d, g=g, backend=backend)
        except QueueFullError as exc:
            self.telemetry.record_shed()
            return self._send(conn, protocol.error_response(
                protocol.ERR_QUEUE_FULL, str(exc)
            ))
        except ShuttingDownError as exc:
            self.telemetry.record_error(protocol.ERR_SHUTTING_DOWN)
            return self._send(conn, protocol.error_response(
                protocol.ERR_SHUTTING_DOWN, str(exc)
            ))
        with self._inflight_cv:
            self._inflight += 1
        try:
            try:
                result = future.result(timeout=deadline_s)
            except FutureTimeoutError:
                # The batcher will still resolve the future eventually; only
                # the answer's usefulness expired, so tell the client that
                # with a structured code instead of leaving it hanging.
                self.telemetry.record_error(protocol.ERR_DEADLINE)
                return self._send(conn, protocol.error_response(
                    protocol.ERR_DEADLINE,
                    f"request not routed within deadline_ms={deadline_s * 1e3:g}",
                ))
            except ShuttingDownError as exc:
                self.telemetry.record_error(protocol.ERR_SHUTTING_DOWN)
                return self._send(conn, protocol.error_response(
                    protocol.ERR_SHUTTING_DOWN, str(exc)
                ))
            except (ValidationError, ConfigurationError) as exc:
                # The batcher validated shape, not permutation-ness; the
                # router's own validation surfaces here.
                self.telemetry.record_error(protocol.ERR_BAD_REQUEST)
                return self._send(conn, protocol.error_response(
                    protocol.ERR_BAD_REQUEST, str(exc)
                ))
            except (RoutingError, SimulationError) as exc:
                # The daemon is healthy but the injected fault spec leaves
                # this traffic unroutable on the surviving hardware.
                self.telemetry.record_error(protocol.ERR_DEGRADED)
                return self._send(conn, protocol.error_response(
                    protocol.ERR_DEGRADED, str(exc)
                ))
            except Exception as exc:
                self.telemetry.record_error(protocol.ERR_INTERNAL)
                return self._send(conn, protocol.error_response(
                    protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                ))
            t_respond = time.perf_counter()
            if result.degraded:
                self.telemetry.record_degraded()
            sent = self._send(conn, {
                "ok": True,
                "metrics": result.metrics.to_dict(),
                "batch_size": result.batch_size,
                "degraded": result.degraded,
            })
            if sent:
                stage_seconds = {
                    **result.stage_seconds,
                    "respond": time.perf_counter() - t_respond,
                }
                self.telemetry.record_response(stage_seconds)
                self._emit_request_spans(stage_seconds, result.batch_size)
            return sent
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    def _emit_request_spans(self, stage_seconds: dict[str, float], batch_size: int) -> None:
        """Re-emit one answered request's stage clocks as trace spans.

        The stages were timed by the batcher/handler machinery, not inside
        ``tracer.span`` blocks, so when tracing is enabled they are
        reconstructed retroactively: one ``serve.request`` root whose
        children are the consecutive ``serve.<stage>`` intervals, laid out
        backwards from now.  With the null tracer this is two attribute
        reads and an early return.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        durations = [
            (stage, int(stage_seconds[stage] * 1e9))
            for stage in STAGES
            if stage in stage_seconds
        ]
        total_ns = sum(dur for _stage, dur in durations)
        t_end = time.perf_counter_ns()
        root = tracer.emit(
            "serve.request", t_end - total_ns, total_ns, batch_size=batch_size
        )
        t = t_end - total_ns
        for stage, dur_ns in durations:
            tracer.emit(f"serve.{stage}", t, dur_ns, parent_id=root)
            t += dur_ns

    # -- the stats request ---------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``stats`` response payload: telemetry + cache + store + knobs."""
        store = self.session.cache.store
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "router_backend": self.config.router_backend,
            "sim_backend": self.config.resolved_sim_backend("batched"),
            "batch_window_ms": self.batcher.batch_window * 1e3,
            "max_batch": self.batcher.max_batch,
            "queue_depth": self.batcher.queue_depth,
            "telemetry": self.telemetry.snapshot(),
            "cache": self.session.cache_stats(),
            "plan_store": store.stats() if store is not None else None,
            "faults": (
                self.batcher.faults.describe()
                if self.batcher.faults is not None
                else None
            ),
            "fault_rate": self.batcher.fault_rate,
        }

    # -- the health request --------------------------------------------------

    def health(self) -> dict[str, Any]:
        """The ``health`` response payload: liveness + degradation summary.

        ``status`` is ``"ok"`` while the daemon accepts work and
        ``"shutting-down"`` once drain began; the fault fields surface the
        injected chaos configuration and how many responses were served
        through online recovery, so an operator (or the chaos-smoke CI
        step) can tell a degraded-but-available daemon from a dead one.
        """
        faults = self.batcher.faults
        return {
            "status": "shutting-down" if self._shutting_down else "ok",
            "protocol": protocol.PROTOCOL_VERSION,
            "faults": faults.describe() if faults is not None else None,
            "fault_rate": self.batcher.fault_rate if faults is not None else 0.0,
            "requests": self.telemetry.requests,
            "responses": self.telemetry.responses,
            "shed": self.telemetry.shed,
            "degraded_responses": self.telemetry.degraded,
            "queue_depth": self.batcher.queue_depth,
        }

    # -- the metrics request -------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of the whole daemon's state.

        The serving metrics come straight from the telemetry's registry;
        the cache, plan-store, and queue state are point-in-time values,
        rendered through a transient registry so every series goes out in
        one consistent format.
        """
        gauges = MetricsRegistry()
        gauges.gauge("serve_queue_depth").set(self.batcher.queue_depth)
        for key, value in self.session.cache_stats().items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            gauges.gauge(f"cache_{key}").set(value)
        store = self.session.cache.store
        if store is not None:
            for key, value in store.stats().items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                gauges.gauge(f"store_{key}").set(value)
        return self.telemetry.registry.render_prometheus() + gauges.render_prometheus()
