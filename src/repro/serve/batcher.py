"""The dynamic batcher: coalesce concurrent route requests into megabatches.

The megabatch kernels (:meth:`~repro.api.session.Session.route_batch`) amortise
per-call Python overhead across a ``(B, n)`` permutation stack — but live
traffic arrives one permutation at a time.  This module is the piece between
the two, the same trick inference servers use: requests submitted within a
configurable window (or until a maximum batch size) that share a routing
shape — ``(d, g, n, backend)`` — are stacked and routed as *one*
``route_batch`` call, then fanned back out to their waiting clients.
Requests whose shape matches nobody else's in the window fall through to the
single-request ``Session.route`` fast path; a window of zero disables
coalescing entirely (every request routes singly — the control arm of
``benchmarks/bench_serve.py``).

Concurrency contract:

* **One worker thread owns the session.**  All routing — batched or single —
  happens on the batcher's worker thread, so the session, its schedule cache
  and the attached plan store are never touched concurrently.  Handler
  threads only enqueue and wait on futures.
* **Bounded queue, explicit shedding.**  :meth:`DynamicBatcher.submit`
  raises :class:`QueueFullError` instead of blocking when ``max_queue``
  requests are already waiting; the daemon turns that into a structured
  ``queue-full`` response so clients see backpressure instead of timeouts.
* **Draining shutdown.**  :meth:`DynamicBatcher.shutdown` with
  ``drain=True`` (the daemon's SIGTERM path) stops intake, then the worker
  finishes *every* request already accepted — in batches, as usual — before
  exiting; with ``drain=False`` waiting requests fail fast with
  :class:`ShuttingDownError`.

Batch results are bit-identical to single routes by the megabatch contract
(pinned in ``tests/test_megabatch.py``), so batching is invisible to clients
except in latency — and in the ``batch_size`` field the daemon reports back.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.session import Session
from repro.faults import FaultSpec, route_with_recovery
from repro.obs import get_tracer
from repro.pops.topology import POPSNetwork
from repro.serve.telemetry import ServeTelemetry

__all__ = [
    "BatchResult",
    "DynamicBatcher",
    "QueueFullError",
    "ShuttingDownError",
]


class QueueFullError(Exception):
    """The bounded request queue is full; the request was shed."""


class ShuttingDownError(Exception):
    """The batcher is shutting down and no longer accepts or serves requests."""


@dataclass
class BatchResult:
    """What a resolved request future carries back to its handler thread."""

    metrics: Any               # RoutingMetrics
    batch_size: int            # how many requests shared the kernel call
    stage_seconds: dict[str, float]  # queue_wait / batch_assembly / route
    degraded: bool = False     # routed through fault recovery


@dataclass
class _Pending:
    """One enqueued route request."""

    key: tuple[int, int, int, str]   # (d, g, n, backend)
    pi: np.ndarray
    future: Future = field(default_factory=Future)
    t_submit: float = field(default_factory=time.perf_counter)
    t_collected: float = 0.0


#: Queue sentinel closing the worker loop (enqueued last, after intake stops).
_STOP = object()


class DynamicBatcher:
    """Coalesces same-shape route requests into ``Session.route_batch`` calls.

    Parameters
    ----------
    session:
        The warm session whose config (router backend, engine, cache policy,
        plan store) all routing uses.  Requests naming a different router
        backend get a sibling session sharing this session's cache, so every
        backend benefits from the same plan store.
    telemetry:
        Where batch sizes are recorded (request stages are recorded by the
        daemon when the response is on the wire).
    batch_window:
        Seconds the worker waits for same-shape company after the first
        request of a batch arrives.  ``0`` disables coalescing.
    max_batch:
        A batch closes early once this many requests are collected.
    max_queue:
        Bound of the request queue; beyond it :meth:`submit` sheds.
    faults:
        Optional :class:`~repro.faults.FaultSpec` injected into dispatches
        (chaos testing).  A struck dispatch routes each member through
        :func:`~repro.faults.route_with_recovery` — clean plan, injected
        execution, online reroute over the survivors — and resolves its
        future with ``degraded=True``.
    fault_rate:
        Probability (per dispatch group) that ``faults`` strikes, drawn from
        a deterministic seeded stream; ``1.0`` (default) strikes every
        dispatch.  Ignored when ``faults`` is ``None``.
    fault_seed:
        Seed of the strike stream — same seed, same strike sequence.
    """

    def __init__(
        self,
        session: Session,
        telemetry: ServeTelemetry,
        *,
        batch_window: float = 0.002,
        max_batch: int = 64,
        max_queue: int = 1024,
        faults: FaultSpec | None = None,
        fault_rate: float = 1.0,
        fault_seed: int = 0,
    ):
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        self._session = session
        self._telemetry = telemetry
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.faults = faults
        self.fault_rate = fault_rate
        self._fault_rng = random.Random(fault_seed)
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._sessions: dict[str, Session] = {
            session.config.router_backend: session
        }
        self._closed = False
        self._drain = True
        self._worker: threading.Thread | None = None

    # -- intake (handler threads) ------------------------------------------

    def submit(self, pi: np.ndarray, *, d: int, g: int, backend: str):
        """Enqueue one request; returns a ``Future`` of :class:`BatchResult`.

        Raises :class:`ShuttingDownError` after shutdown began and
        :class:`QueueFullError` when the bounded queue is full (the caller
        sheds the request with an explicit error response).
        """
        if self._closed:
            raise ShuttingDownError("the batcher is shutting down")
        item = _Pending(key=(d, g, int(pi.shape[0]), backend), pi=pi)
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            raise QueueFullError(
                f"request queue is full ({self._queue.maxsize} waiting)"
            ) from None
        return item.future

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting (approximate, lock-free read)."""
        return self._queue.qsize()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._worker is not None:
            raise RuntimeError("batcher already started")
        self._worker = threading.Thread(
            target=self._run, name="pops-serve-batcher", daemon=True
        )
        self._worker.start()

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop intake and end the worker.

        ``drain=True`` lets the worker finish every accepted request before
        exiting (in-flight batches complete; their clients get answers);
        ``drain=False`` fails waiting requests with
        :class:`ShuttingDownError` immediately.  Idempotent.
        """
        self._drain = drain
        if not self._closed:
            self._closed = True
            self._queue.put(_STOP)  # always room for the sentinel eventually
        if self._worker is not None:
            self._worker.join(timeout=timeout)

    # -- worker -------------------------------------------------------------

    def _collect(self) -> tuple[list[_Pending], bool]:
        """One batch off the queue: ``(items, keep_running)``.

        Blocks for the first item, then keeps collecting until the batching
        window expires, ``max_batch`` is reached, or the stop sentinel
        arrives (the sentinel is FIFO-last, so everything accepted before
        shutdown is popped first).
        """
        first = self._queue.get()
        if first is _STOP:
            return [], False
        first.t_collected = time.perf_counter()
        items = [first]
        deadline = first.t_collected + self.batch_window
        while len(items) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _STOP:
                return items, False
            item.t_collected = time.perf_counter()
            items.append(item)
        return items, True

    def _run(self) -> None:
        keep_running = True
        while keep_running:
            items, keep_running = self._collect()
            if items and self._closed and not self._drain:
                for item in items:
                    item.future.set_exception(
                        ShuttingDownError("daemon shut down before routing")
                    )
                continue
            if items:
                self._dispatch(items)
        # Post-sentinel safety net: anything enqueued concurrently with
        # shutdown (submit raced the _closed flag) still gets an answer.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            if self._drain:
                self._dispatch([item])
            else:
                item.future.set_exception(
                    ShuttingDownError("daemon shut down before routing")
                )

    def _session_for(self, backend: str) -> Session:
        session = self._sessions.get(backend)
        if session is None:
            # Sibling session for a per-request backend override, sharing the
            # primary session's cache (and therefore its plan store tier).
            session = Session(
                self._session.config.replace(router_backend=backend),
                cache=self._session.cache,
            )
            self._sessions[backend] = session
        return session

    def _strikes(self) -> bool:
        """Does the fault injector hit this dispatch group?  Deterministic."""
        if self.faults is None or self.fault_rate <= 0.0:
            return False
        return self.fault_rate >= 1.0 or self._fault_rng.random() < self.fault_rate

    def _dispatch(self, items: list[_Pending]) -> None:
        """Group the collected requests by shape and route each group."""
        groups: dict[tuple[int, int, int, str], list[_Pending]] = {}
        for item in items:
            groups.setdefault(item.key, []).append(item)
        for (d, g, _n, backend), members in groups.items():
            network = POPSNetwork(d, g)
            if self._strikes():
                self._dispatch_degraded(members, network, backend)
                continue
            t_route_start = time.perf_counter()
            try:
                with get_tracer().span(
                    "serve.dispatch", d=d, g=g, backend=backend,
                    batch=len(members),
                ):
                    session = self._session_for(backend)
                    if len(members) == 1:
                        metrics_list = [
                            session.route(members[0].pi, network=network)
                        ]
                    else:
                        stack = np.stack([member.pi for member in members])
                        metrics_list = session.route_batch(stack, network=network)
            except Exception as exc:
                self._replay_survivors(members, network, backend, exc)
                continue
            t_route_end = time.perf_counter()
            self._telemetry.record_batch(len(members))
            route_seconds = t_route_end - t_route_start
            for member, metrics in zip(members, metrics_list):
                member.future.set_result(
                    BatchResult(
                        metrics=metrics,
                        batch_size=len(members),
                        stage_seconds={
                            "queue_wait": member.t_collected - member.t_submit,
                            "batch_assembly": t_route_start - member.t_collected,
                            "route": route_seconds,
                        },
                    )
                )

    def _replay_survivors(
        self,
        members: list[_Pending],
        network: POPSNetwork,
        backend: str,
        batch_exc: Exception,
    ) -> None:
        """Graceful degradation of a failed batch: replay members singly.

        One poisoned permutation (or one fault-struck element) must not take
        its batch peers down with it.  A singleton batch just propagates its
        error; a real batch is replayed per element on the single-route path
        so every member that can route still gets a real answer, and only
        the actually-failing members see an exception.
        """
        if len(members) == 1:
            members[0].future.set_exception(batch_exc)
            return
        session = self._session_for(backend)
        for member in members:
            t_start = time.perf_counter()
            try:
                with get_tracer().span(
                    "serve.dispatch", d=network.d, g=network.g,
                    backend=backend, batch=1, replay=True,
                ):
                    metrics = session.route(member.pi, network=network)
            except Exception as exc:
                member.future.set_exception(exc)
                continue
            self._telemetry.record_batch(1)
            member.future.set_result(
                BatchResult(
                    metrics=metrics,
                    batch_size=1,
                    stage_seconds={
                        "queue_wait": member.t_collected - member.t_submit,
                        "batch_assembly": 0.0,
                        "route": time.perf_counter() - t_start,
                    },
                )
            )

    def _dispatch_degraded(
        self, members: list[_Pending], network: POPSNetwork, backend: str
    ) -> None:
        """Route a fault-struck dispatch member-by-member with recovery.

        Each member runs the full pipeline — clean plan, injected execution,
        online reroute over the surviving couplers, verified delivery — and
        gets back real :class:`~repro.analysis.metrics.RoutingMetrics` whose
        ``slots`` is the degraded total (executed before the fault plus the
        reroute), so clients see the true cost of the failure.
        """
        from repro.analysis.metrics import RoutingMetrics
        from repro.routing.lower_bounds import best_known_lower_bound

        assert self.faults is not None
        d, g = network.d, network.g
        for member in members:
            t_start = time.perf_counter()
            try:
                with get_tracer().span(
                    "serve.dispatch", d=d, g=g, backend=backend,
                    batch=1, fault_injected=True,
                ):
                    report = route_with_recovery(
                        network, member.pi, self.faults, router_backend=backend
                    )
                    capacity = report.total_slots * g * g
                    metrics = RoutingMetrics(
                        d=d,
                        g=g,
                        n=network.n,
                        slots=report.total_slots,
                        theorem2_bound=report.theorem2_bound,
                        lower_bound=best_known_lower_bound(network, member.pi),
                        couplers_used_total=report.packets_moved,
                        mean_coupler_utilisation=(
                            report.packets_moved / capacity if capacity else 0.0
                        ),
                    )
            except Exception as exc:
                member.future.set_exception(exc)
                continue
            self._telemetry.record_batch(1)
            member.future.set_result(
                BatchResult(
                    metrics=metrics,
                    batch_size=1,
                    stage_seconds={
                        "queue_wait": member.t_collected - member.t_submit,
                        "batch_assembly": 0.0,
                        "route": time.perf_counter() - t_start,
                    },
                    degraded=report.fault_triggered,
                )
            )
