"""Open-loop Poisson load generation against a serving daemon.

The load model is the classic open-loop one (the simpy traffic generators in
SNIPPETS.md use the same shape): request arrival times are drawn from a
Poisson process of a configured rate *in advance*, and each request is fired
at its scheduled wall-clock instant regardless of how the previous ones are
doing.  Unlike closed-loop clients — which slow their offered load to match
a struggling server and so hide saturation — an open-loop generator keeps
offering, which is what exposes queueing, shedding, and the throughput
ceiling the ``bench_serve.py`` floor is about.

Mechanics: arrivals are pre-drawn (inter-arrival gaps ``Exponential(1/rate)``,
one fresh random permutation per request), dealt round-robin to a pool of
worker threads each owning one :class:`~repro.serve.client.ServeClient`
connection, and released against a shared start instant.  Per-request
client-side latency (send to response) is recorded; shed requests
(``queue-full``) and errors are counted separately from completions.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.obs.stats import percentiles
from repro.serve.client import ServeClient, ServeError

__all__ = ["LoadReport", "run_poisson_load", "sweep_rates"]


@dataclass(frozen=True)
class LoadReport:
    """Summary of one open-loop load run."""

    d: int
    g: int
    n: int
    rate: float                      # offered arrival rate (requests/sec)
    n_requests: int
    completed: int
    shed: int                        # explicit queue-full responses
    errors: int                      # any other failure
    duration_seconds: float          # first release to last completion
    achieved_routes_per_second: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    max_batch_size_seen: int         # largest coalesced batch any request rode

    def to_dict(self) -> dict[str, Any]:
        return {
            "d": self.d, "g": self.g, "n": self.n,
            "rate": self.rate,
            "n_requests": self.n_requests,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "achieved_routes_per_second": self.achieved_routes_per_second,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "max_batch_size_seen": self.max_batch_size_seen,
        }


def _draw_workload(
    rate: float, n_requests: int, n: int, seed: int
) -> tuple[list[float], list[np.ndarray]]:
    """Arrival instants (seconds from start) and fresh permutations."""
    gaps = random.Random(seed)
    arrivals: list[float] = []
    t = 0.0
    for _ in range(n_requests):
        t += gaps.expovariate(rate)
        arrivals.append(t)
    rng = np.random.default_rng(seed)
    pis = [rng.permutation(n).astype(np.int64) for _ in range(n_requests)]
    return arrivals, pis


def run_poisson_load(
    host: str,
    port: int,
    *,
    rate: float,
    n_requests: int,
    d: int,
    g: int,
    seed: int = 2002,
    connections: int = 8,
    backend: str | None = None,
    timeout: float = 60.0,
) -> LoadReport:
    """Fire ``n_requests`` at Poisson ``rate`` (req/sec) against the daemon.

    ``connections`` worker threads each hold one client connection and fire
    the requests dealt to them at their pre-drawn arrival instants.  Returns
    the aggregated :class:`LoadReport`; raises only on setup failures —
    per-request errors are counted, not raised.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    connections = max(1, min(connections, n_requests))
    n = d * g
    arrivals, pis = _draw_workload(rate, n_requests, n, seed)
    assignments: list[list[int]] = [[] for _ in range(connections)]
    for index in range(n_requests):
        assignments[index % connections].append(index)

    latencies: list[list[float]] = [[] for _ in range(connections)]
    batch_sizes: list[int] = [1] * connections
    shed = [0] * connections
    errors = [0] * connections
    last_done = [0.0] * connections
    barrier = threading.Barrier(connections + 1)

    def worker(worker_id: int, t0_holder: list[float]) -> None:
        try:
            client = ServeClient(host, port, timeout=timeout)
        except OSError:
            errors[worker_id] += len(assignments[worker_id])
            barrier.wait()
            return
        try:
            barrier.wait()
            t0 = t0_holder[0]
            for index in assignments[worker_id]:
                delay = t0 + arrivals[index] - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                t_send = time.perf_counter()
                try:
                    outcome = client.route(pis[index], d=d, g=g, backend=backend)
                except ServeError as exc:
                    if exc.code == "queue-full":
                        shed[worker_id] += 1
                    else:
                        errors[worker_id] += 1
                    continue
                except (OSError, ConnectionError):
                    errors[worker_id] += 1
                    return  # connection is gone; remaining requests are lost
                t_done = time.perf_counter()
                latencies[worker_id].append(t_done - t_send)
                last_done[worker_id] = max(last_done[worker_id], t_done)
                batch_sizes[worker_id] = max(
                    batch_sizes[worker_id], outcome.batch_size
                )
        finally:
            client.close()

    t0_holder = [0.0]
    threads = [
        threading.Thread(
            target=worker, args=(i, t0_holder), name=f"loadgen-{i}", daemon=True
        )
        for i in range(connections)
    ]
    for thread in threads:
        thread.start()
    t0_holder[0] = time.perf_counter() + 0.01  # released a beat after the barrier
    barrier.wait()
    for thread in threads:
        thread.join(timeout=timeout + arrivals[-1] + 5.0)

    all_latencies = [lat for bucket in latencies for lat in bucket]
    completed = len(all_latencies)
    t0 = t0_holder[0]
    duration = max((t for t in last_done if t > 0.0), default=t0) - t0
    if all_latencies:
        # The shared percentile reduction (repro.obs.stats) — the same
        # implementation the daemon-side telemetry reports through.
        p50, p95, p99 = percentiles(all_latencies)
        mean = float(np.asarray(all_latencies).mean())
    else:
        p50 = p95 = p99 = mean = 0.0
    return LoadReport(
        d=d, g=g, n=n,
        rate=rate,
        n_requests=n_requests,
        completed=completed,
        shed=sum(shed),
        errors=sum(errors),
        duration_seconds=max(duration, 1e-9),
        achieved_routes_per_second=completed / max(duration, 1e-9),
        latency_p50_ms=float(p50) * 1e3,
        latency_p95_ms=float(p95) * 1e3,
        latency_p99_ms=float(p99) * 1e3,
        latency_mean_ms=mean * 1e3,
        max_batch_size_seen=max(batch_sizes),
    )


def sweep_rates(
    host: str,
    port: int,
    *,
    rates,
    n_requests: int,
    d: int,
    g: int,
    **kwargs: Any,
) -> list[LoadReport]:
    """One :func:`run_poisson_load` per rate, in order — the arrival-rate sweep."""
    return [
        run_poisson_load(
            host, port, rate=rate, n_requests=n_requests, d=d, g=g, **kwargs
        )
        for rate in rates
    ]
