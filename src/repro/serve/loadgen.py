"""Open-loop Poisson load generation against a serving daemon.

The load model is the classic open-loop one (the simpy traffic generators in
SNIPPETS.md use the same shape): request arrival times are drawn from a
Poisson process of a configured rate *in advance*, and each request is fired
at its scheduled wall-clock instant regardless of how the previous ones are
doing.  Unlike closed-loop clients — which slow their offered load to match
a struggling server and so hide saturation — an open-loop generator keeps
offering, which is what exposes queueing, shedding, and the throughput
ceiling the ``bench_serve.py`` floor is about.

Mechanics: arrivals are pre-drawn (inter-arrival gaps ``Exponential(1/rate)``,
one fresh random permutation per request), dealt round-robin to a pool of
worker threads each owning one :class:`~repro.serve.client.ServeClient`
connection, and released against a shared start instant.  Per-request
client-side latency (send to response) is recorded; shed requests
(``queue-full``) and errors are counted separately from completions.

Arrival mix: with ``hotspot_fraction > 0`` that fraction of requests draws a
*hot-spot* permutation instead of a uniform one — every group sends its whole
block to the next group (``a -> (a+1) mod g``, shuffled within the group), the
classic worst case that concentrates all traffic on ``g`` couplers.  Requests
are tagged with their class at draw time and the report carries per-class
latency percentiles, so saturation that only the hot-spot class feels is
visible instead of averaged away.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs.stats import percentiles
from repro.serve.client import ServeClient, ServeError

__all__ = ["LoadReport", "run_poisson_load", "sweep_rates"]


@dataclass(frozen=True)
class LoadReport:
    """Summary of one open-loop load run."""

    d: int
    g: int
    n: int
    rate: float                      # offered arrival rate (requests/sec)
    n_requests: int
    completed: int
    shed: int                        # explicit queue-full responses
    errors: int                      # any other failure
    duration_seconds: float          # first release to last completion
    achieved_routes_per_second: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    max_batch_size_seen: int         # largest coalesced batch any request rode
    hotspot_fraction: float = 0.0    # offered hot-spot share of the mix
    degraded: int = 0                # completions served via fault recovery
    # per-class ("uniform" / "hotspot") latency summaries:
    # {class: {"count", "p50_ms", "p95_ms", "p99_ms", "mean_ms"}}
    class_latency_ms: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "d": self.d, "g": self.g, "n": self.n,
            "rate": self.rate,
            "n_requests": self.n_requests,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "achieved_routes_per_second": self.achieved_routes_per_second,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "max_batch_size_seen": self.max_batch_size_seen,
            "hotspot_fraction": self.hotspot_fraction,
            "degraded": self.degraded,
            "class_latency_ms": self.class_latency_ms,
        }


def _hotspot_permutation(rng: np.random.Generator, d: int, g: int) -> np.ndarray:
    """Group ``a`` sends its whole block to group ``(a+1) mod g``, shuffled.

    A blocked permutation in the paper's sense: all ``d`` packets of a group
    share one destination group, so the whole pattern rides ``g`` couplers —
    maximal per-coupler pressure while staying a legal permutation.
    """
    pi = np.empty(d * g, dtype=np.int64)
    for a in range(g):
        b = (a + 1) % g
        targets = np.arange(b * d, (b + 1) * d, dtype=np.int64)
        rng.shuffle(targets)
        pi[a * d:(a + 1) * d] = targets
    return pi


def _draw_workload(
    rate: float,
    n_requests: int,
    d: int,
    g: int,
    seed: int,
    hotspot_fraction: float,
) -> tuple[list[float], list[np.ndarray], list[str]]:
    """Arrival instants, permutations, and each request's traffic class."""
    gaps = random.Random(seed)
    arrivals: list[float] = []
    t = 0.0
    for _ in range(n_requests):
        t += gaps.expovariate(rate)
        arrivals.append(t)
    rng = np.random.default_rng(seed)
    n = d * g
    pis: list[np.ndarray] = []
    classes: list[str] = []
    for _ in range(n_requests):
        # The fraction==0 guard keeps the draw sequence (and therefore the
        # exact permutations) identical to the pre-hotspot generator.
        if hotspot_fraction > 0 and rng.random() < hotspot_fraction:
            pis.append(_hotspot_permutation(rng, d, g))
            classes.append("hotspot")
        else:
            pis.append(rng.permutation(n).astype(np.int64))
            classes.append("uniform")
    return arrivals, pis, classes


def run_poisson_load(
    host: str,
    port: int,
    *,
    rate: float,
    n_requests: int,
    d: int,
    g: int,
    seed: int = 2002,
    connections: int = 8,
    backend: str | None = None,
    timeout: float = 60.0,
    hotspot_fraction: float = 0.0,
) -> LoadReport:
    """Fire ``n_requests`` at Poisson ``rate`` (req/sec) against the daemon.

    ``connections`` worker threads each hold one client connection and fire
    the requests dealt to them at their pre-drawn arrival instants.
    ``hotspot_fraction`` of the requests (drawn per request) carry the
    hot-spot permutation class instead of a uniform draw.  Returns the
    aggregated :class:`LoadReport`; raises only on setup failures —
    per-request errors are counted, not raised.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}"
        )
    connections = max(1, min(connections, n_requests))
    n = d * g
    arrivals, pis, classes = _draw_workload(
        rate, n_requests, d, g, seed, hotspot_fraction
    )
    assignments: list[list[int]] = [[] for _ in range(connections)]
    for index in range(n_requests):
        assignments[index % connections].append(index)

    latencies: list[list[tuple[str, float]]] = [[] for _ in range(connections)]
    batch_sizes: list[int] = [1] * connections
    shed = [0] * connections
    errors = [0] * connections
    degraded = [0] * connections
    last_done = [0.0] * connections
    barrier = threading.Barrier(connections + 1)

    def worker(worker_id: int, t0_holder: list[float]) -> None:
        try:
            client = ServeClient(host, port, timeout=timeout)
        except OSError:
            errors[worker_id] += len(assignments[worker_id])
            barrier.wait()
            return
        try:
            barrier.wait()
            t0 = t0_holder[0]
            for index in assignments[worker_id]:
                delay = t0 + arrivals[index] - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                t_send = time.perf_counter()
                try:
                    outcome = client.route(pis[index], d=d, g=g, backend=backend)
                except ServeError as exc:
                    if exc.code == "queue-full":
                        shed[worker_id] += 1
                    else:
                        errors[worker_id] += 1
                    continue
                except (OSError, ConnectionError):
                    errors[worker_id] += 1
                    return  # connection is gone; remaining requests are lost
                t_done = time.perf_counter()
                latencies[worker_id].append((classes[index], t_done - t_send))
                last_done[worker_id] = max(last_done[worker_id], t_done)
                if outcome.degraded:
                    degraded[worker_id] += 1
                batch_sizes[worker_id] = max(
                    batch_sizes[worker_id], outcome.batch_size
                )
        finally:
            client.close()

    t0_holder = [0.0]
    threads = [
        threading.Thread(
            target=worker, args=(i, t0_holder), name=f"loadgen-{i}", daemon=True
        )
        for i in range(connections)
    ]
    for thread in threads:
        thread.start()
    t0_holder[0] = time.perf_counter() + 0.01  # released a beat after the barrier
    barrier.wait()
    for thread in threads:
        thread.join(timeout=timeout + arrivals[-1] + 5.0)

    tagged = [entry for bucket in latencies for entry in bucket]
    all_latencies = [lat for _cls, lat in tagged]
    completed = len(all_latencies)
    t0 = t0_holder[0]
    duration = max((t for t in last_done if t > 0.0), default=t0) - t0
    if all_latencies:
        # The shared percentile reduction (repro.obs.stats) — the same
        # implementation the daemon-side telemetry reports through.
        p50, p95, p99 = percentiles(all_latencies)
        mean = float(np.asarray(all_latencies).mean())
    else:
        p50 = p95 = p99 = mean = 0.0
    by_class: dict[str, list[float]] = {}
    for cls, lat in tagged:
        by_class.setdefault(cls, []).append(lat)
    class_latency_ms = {}
    for cls, samples in sorted(by_class.items()):
        c50, c95, c99 = percentiles(samples)
        class_latency_ms[cls] = {
            "count": len(samples),
            "p50_ms": float(c50) * 1e3,
            "p95_ms": float(c95) * 1e3,
            "p99_ms": float(c99) * 1e3,
            "mean_ms": float(np.asarray(samples).mean()) * 1e3,
        }
    return LoadReport(
        d=d, g=g, n=n,
        rate=rate,
        n_requests=n_requests,
        completed=completed,
        shed=sum(shed),
        errors=sum(errors),
        duration_seconds=max(duration, 1e-9),
        achieved_routes_per_second=completed / max(duration, 1e-9),
        latency_p50_ms=float(p50) * 1e3,
        latency_p95_ms=float(p95) * 1e3,
        latency_p99_ms=float(p99) * 1e3,
        latency_mean_ms=mean * 1e3,
        max_batch_size_seen=max(batch_sizes),
        hotspot_fraction=hotspot_fraction,
        degraded=sum(degraded),
        class_latency_ms=class_latency_ms,
    )


def sweep_rates(
    host: str,
    port: int,
    *,
    rates,
    n_requests: int,
    d: int,
    g: int,
    **kwargs: Any,
) -> list[LoadReport]:
    """One :func:`run_poisson_load` per rate, in order — the arrival-rate sweep."""
    return [
        run_poisson_load(
            host, port, rate=rate, n_requests=n_requests, d=d, g=g, **kwargs
        )
        for rate in rates
    ]
