"""Wire format of the serving layer: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON.  The prefix makes message boundaries explicit on a stream
socket (no sentinel scanning, binary-safe payloads later), and JSON keeps the
protocol debuggable with nothing but ``nc`` and ``python -m json.tool``.

Frames are bounded by :data:`MAX_FRAME_BYTES`.  A peer announcing a larger
frame is told so with a structured error and the connection is closed —
after an oversized announcement the stream position is unrecoverable, so
closing is the only safe resynchronisation.  A frame that *parses* but is
not valid JSON gets a structured ``malformed-json`` error and the connection
stays usable: the framing layer already consumed exactly the announced
bytes, so the stream is still aligned.

Request vocabulary (the ``op`` key selects the operation)::

    {"op": "route", "pi": [...], "d": 8, "g": 4}        # optional "backend",
                                                        # optional "deadline_ms"
    {"op": "stats"}
    {"op": "metrics"}    # Prometheus-style text exposition of daemon metrics
    {"op": "ping"}
    {"op": "health"}     # liveness + degradation summary (fault injection)

Responses carry ``{"ok": true, ...}`` on success and
``{"ok": false, "error": {"code": ..., "message": ...}}`` on failure; the
machine-readable codes are the :data:`ERR_*` constants below, part of the
protocol contract (tests and clients match on them, never on messages).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ERR_BAD_REQUEST",
    "ERR_DEADLINE",
    "ERR_DEGRADED",
    "ERR_INTERNAL",
    "ERR_MALFORMED_JSON",
    "ERR_OVERSIZED_FRAME",
    "ERR_QUEUE_FULL",
    "ERR_SHUTTING_DOWN",
    "ERR_UNKNOWN_OP",
    "FrameError",
    "FrameTooLargeError",
    "MalformedFrameError",
    "error_response",
    "recv_frame",
    "send_frame",
]

#: Bump on incompatible wire-format changes; carried in ``stats`` responses
#: so clients can assert what they are talking to.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload.  A route request for n = 65536 is
#: ~0.5 MiB of JSON; 8 MiB leaves an order of magnitude of headroom while
#: still refusing absurd announcements before allocating anything.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Machine-readable error codes (the ``error.code`` field).
ERR_OVERSIZED_FRAME = "oversized-frame"
ERR_MALFORMED_JSON = "malformed-json"
ERR_BAD_REQUEST = "bad-request"
ERR_UNKNOWN_OP = "unknown-op"
ERR_QUEUE_FULL = "queue-full"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_INTERNAL = "internal-error"
#: The request named a deadline (``deadline_ms``) and routing did not finish
#: inside it; the work may still complete server-side but the answer is gone.
ERR_DEADLINE = "deadline-exceeded"
#: Routing could not be completed even on the degraded topology — the fault
#: spec disconnects the traffic (distinct from ``internal-error``: the daemon
#: is healthy, the surviving hardware just cannot carry the request).
ERR_DEGRADED = "degraded"

_HEADER = struct.Struct(">I")


class FrameError(Exception):
    """Base class for framing-level failures."""


class FrameTooLargeError(FrameError):
    """The peer announced a frame larger than the negotiated bound."""

    def __init__(self, announced: int, limit: int):
        super().__init__(
            f"peer announced a {announced}-byte frame; the limit is {limit}"
        )
        self.announced = announced
        self.limit = limit


class MalformedFrameError(FrameError):
    """A complete frame arrived but its payload is not a JSON object."""


def error_response(code: str, message: str) -> dict[str, Any]:
    """The canonical error-response payload."""
    return {"ok": False, "error": {"code": code, "message": message}}


def send_frame(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Encode ``payload`` as one length-prefixed JSON frame and send it all.

    Raises :class:`FrameTooLargeError` when the encoded payload would exceed
    :data:`MAX_FRAME_BYTES` (sending it would make the *receiver* drop the
    connection, so failing locally is strictly better) and ``OSError`` when
    the peer is gone.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(len(body), MAX_FRAME_BYTES)
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exactly(sock: socket.socket, n_bytes: int) -> bytes | None:
    """Read exactly ``n_bytes``; ``None`` on clean EOF at a frame boundary.

    EOF in the *middle* of a frame is a protocol violation and raises
    ``ConnectionResetError`` — the caller must not mistake a truncated
    request for a clean goodbye.
    """
    chunks: list[bytes] = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n_bytes and not chunks:
                return None
            raise ConnectionResetError(
                f"connection closed mid-frame ({n_bytes - remaining} of "
                f"{n_bytes} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, *, max_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Receive one frame; ``None`` on clean EOF before a header.

    Raises :class:`FrameTooLargeError` on an oversized announcement (the
    stream is then unrecoverable — close the connection),
    :class:`MalformedFrameError` when the payload is not a JSON object (the
    stream *is* still aligned — the caller may answer with a structured
    error and keep serving), and ``OSError`` on transport failures.
    """
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLargeError(length, max_bytes)
    body = _recv_exactly(sock, length) if length else b""
    if body is None:  # pragma: no cover - zero-length header then EOF
        raise ConnectionResetError("connection closed between header and body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedFrameError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise MalformedFrameError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload
