"""`ServeClient`: the blocking, retrying client of the serving daemon.

A thin, dependency-free wrapper over one socket speaking the protocol of
:mod:`repro.serve.protocol`.  Responses are surfaced as real objects — a
:class:`RouteOutcome` carries the reconstructed
:class:`~repro.analysis.metrics.RoutingMetrics` (identical, field for field,
to what :meth:`Session.route <repro.api.session.Session.route>` returns for
the same permutation, because the daemon computes exactly that) plus the
``batch_size`` its request was coalesced at.  Structured daemon errors raise
:class:`ServeError` with the protocol's machine-readable ``code``.

Resilience contract (pinned in ``tests/test_serve.py``):

* **Finite deadlines by default.**  Every socket operation is bounded by
  ``timeout`` (default :data:`DEFAULT_TIMEOUT` seconds).  Expiry raises
  :class:`ServeError` with code ``deadline-exceeded`` — never a bare
  ``socket.timeout`` — and drops the connection, because a late response
  left on the stream would desynchronise every frame after it.
* **Retry with exponential backoff.**  With ``retries > 0``, transport
  failures (connection refused / reset, daemon restart) and ``shutting-down``
  responses are retried on a *fresh* connection after an exponentially
  growing, jittered sleep (each attempt emits a ``serve.retry`` span).
  Deadline expiry and structured request errors (``bad-request``,
  ``queue-full``...) are never retried: the former is ambiguous (the daemon
  may have done the work), the latter deterministic.

The client is deliberately synchronous and single-connection: concurrency in
the serving layer comes from many clients (or the load generator's worker
pool), not from multiplexing one.  One client must not be shared across
threads.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.metrics import RoutingMetrics
from repro.obs import get_tracer
from repro.serve import protocol

__all__ = ["DEFAULT_TIMEOUT", "RouteOutcome", "ServeClient", "ServeError"]

#: Default per-operation socket deadline (seconds).  Finite on purpose: a
#: hung daemon must surface as a ``deadline-exceeded`` :class:`ServeError`,
#: not as a client thread blocked forever.
DEFAULT_TIMEOUT = 30.0


class ServeError(Exception):
    """A structured error response from the daemon.

    ``code`` is one of the ``repro.serve.protocol.ERR_*`` constants — match
    on it, not on the human-readable message.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


@dataclass(frozen=True)
class RouteOutcome:
    """One answered route request."""

    metrics: RoutingMetrics   # identical to a local Session.route
    batch_size: int           # peers sharing the kernel call (1 = single path)
    raw: dict[str, Any]       # the full response payload
    degraded: bool = False    # routed over a fault-degraded topology


#: RoutingMetrics constructor fields, as serialised by ``to_dict`` (the
#: derived properties in the payload are recomputed by the dataclass).
_METRIC_FIELDS = (
    "d", "g", "n", "slots", "theorem2_bound", "lower_bound",
    "couplers_used_total", "mean_coupler_utilisation",
)


class ServeClient:
    """Blocking client for one ``pops-repro serve`` daemon.

    Usable as a context manager.

    Parameters
    ----------
    host / port:
        The daemon's address.
    timeout:
        Seconds each socket operation (connect, send, await response) may
        take; expiry raises :class:`ServeError` with code
        ``deadline-exceeded``.  Defaults to :data:`DEFAULT_TIMEOUT`;
        ``None`` waits forever (opt-in, for debugging only).
    retries:
        How many times a *retryable* failure — connect/transport errors and
        ``shutting-down`` responses — is retried on a fresh connection
        before the last error propagates.  ``0`` (default) fails fast.
    backoff_base / backoff_max:
        The retry sleep starts at ``backoff_base`` seconds, doubles per
        attempt, is capped at ``backoff_max``, and carries multiplicative
        jitter in ``[1, 2)`` so restarting clients do not stampede.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float | None = DEFAULT_TIMEOUT,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_base <= 0 or backoff_max <= 0:
            raise ValueError("backoff_base and backoff_max must be positive")
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self._rng = random.Random()
        self._sock: socket.socket | None = None
        if self.retries == 0:
            # Fail-fast clients keep the historical eager-connect behaviour
            # (a wrong port errors at construction, not first use); retrying
            # clients connect lazily so a daemon that is still starting — or
            # restarting — is absorbed by the request retry loop.
            self._connect()

    # -- connection management ----------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request primitives --------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request frame, await one response frame.

        Raises :class:`ServeError` on a structured daemon error (code
        ``deadline-exceeded`` when ``timeout`` expires first) and
        ``ConnectionError``/``OSError`` when the daemon is unreachable after
        all configured retries.
        """
        attempts = self.retries + 1
        delay = self.backoff_base
        for attempt in range(attempts):
            if attempt:
                sleep_s = min(delay, self.backoff_max) * (1.0 + self._rng.random())
                delay *= 2.0
                with get_tracer().span(
                    "serve.retry", attempt=attempt, sleep_ms=round(sleep_s * 1e3, 3)
                ):
                    time.sleep(sleep_s)
            try:
                if self._sock is None:
                    self._connect()
                return self._request_once(payload)
            except socket.timeout as exc:
                # A late response may still arrive on this stream; reusing it
                # would hand the next request the previous answer.  Drop the
                # connection and surface the structured deadline code.
                self._drop()
                raise ServeError(
                    protocol.ERR_DEADLINE,
                    f"no response within {self._timeout}s",
                ) from exc
            except ServeError as exc:
                if exc.code == protocol.ERR_SHUTTING_DOWN and attempt + 1 < attempts:
                    self._drop()  # reconnect: a successor daemon may be up
                    continue
                raise
            except (ConnectionError, OSError) as exc:
                self._drop()
                if attempt + 1 == attempts:
                    raise
                last_exc = exc
        raise last_exc  # pragma: no cover - loop always returns or raises

    def _request_once(self, payload: dict[str, Any]) -> dict[str, Any]:
        assert self._sock is not None
        protocol.send_frame(self._sock, payload)
        response = protocol.recv_frame(self._sock)
        if response is None:
            self._drop()
            raise ConnectionError("daemon closed the connection without answering")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", protocol.ERR_INTERNAL),
                error.get("message", "unspecified error"),
            )
        return response

    # -- operations ----------------------------------------------------------

    def route(
        self,
        pi,
        *,
        d: int,
        g: int,
        backend: str | None = None,
        deadline_ms: float | None = None,
    ) -> RouteOutcome:
        """Route one permutation on the daemon; blocks until answered.

        ``pi`` is any int sequence (list or numpy array).  The returned
        outcome's ``metrics`` equals the daemon session's ``route(pi)``
        bit-for-bit; ``batch_size`` reports how many concurrent requests the
        dynamic batcher coalesced this one with (1 = routed alone);
        ``degraded`` is true when the daemon recovered the route over a
        fault-degraded topology.  ``deadline_ms`` asks the daemon to answer
        ``deadline-exceeded`` rather than route past that many milliseconds.
        """
        images = np.asarray(pi, dtype=np.int64)
        payload: dict[str, Any] = {
            "op": "route",
            "pi": [int(x) for x in images],
            "d": int(d),
            "g": int(g),
        }
        if backend is not None:
            payload["backend"] = backend
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        response = self.request(payload)
        reported = response["metrics"]
        metrics = RoutingMetrics(**{name: reported[name] for name in _METRIC_FIELDS})
        return RouteOutcome(
            metrics=metrics,
            batch_size=int(response["batch_size"]),
            raw=response,
            degraded=bool(response.get("degraded", False)),
        )

    def stats(self) -> dict[str, Any]:
        """The daemon's ``stats`` payload: telemetry, cache, store, knobs."""
        return self.request({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The daemon's metrics as Prometheus-style text exposition."""
        return str(self.request({"op": "metrics"})["metrics"])

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self.request({"op": "ping"}).get("pong"))

    def health(self) -> dict[str, Any]:
        """The daemon's ``health`` payload: status + fault/degradation counts."""
        return self.request({"op": "health"})["health"]
