"""`ServeClient`: the blocking client of the serving daemon.

A thin, dependency-free wrapper over one socket speaking the protocol of
:mod:`repro.serve.protocol`.  Responses are surfaced as real objects — a
:class:`RouteOutcome` carries the reconstructed
:class:`~repro.analysis.metrics.RoutingMetrics` (identical, field for field,
to what :meth:`Session.route <repro.api.session.Session.route>` returns for
the same permutation, because the daemon computes exactly that) plus the
``batch_size`` its request was coalesced at.  Structured daemon errors raise
:class:`ServeError` with the protocol's machine-readable ``code``.

The client is deliberately synchronous and single-connection: concurrency in
the serving layer comes from many clients (or the load generator's worker
pool), not from multiplexing one.  One client must not be shared across
threads.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.metrics import RoutingMetrics
from repro.serve import protocol

__all__ = ["RouteOutcome", "ServeClient", "ServeError"]


class ServeError(Exception):
    """A structured error response from the daemon.

    ``code`` is one of the ``repro.serve.protocol.ERR_*`` constants — match
    on it, not on the human-readable message.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


@dataclass(frozen=True)
class RouteOutcome:
    """One answered route request."""

    metrics: RoutingMetrics   # identical to a local Session.route
    batch_size: int           # peers sharing the kernel call (1 = single path)
    raw: dict[str, Any]       # the full response payload


#: RoutingMetrics constructor fields, as serialised by ``to_dict`` (the
#: derived properties in the payload are recomputed by the dataclass).
_METRIC_FIELDS = (
    "d", "g", "n", "slots", "theorem2_bound", "lower_bound",
    "couplers_used_total", "mean_coupler_utilisation",
)


class ServeClient:
    """Blocking client for one ``pops-repro serve`` daemon.

    Usable as a context manager; ``timeout`` (seconds) bounds every socket
    operation (``None`` = wait forever, the default — a draining daemon may
    legitimately take a while to answer the last requests).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, timeout: float | None = None):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request primitives --------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request frame, await one response frame.

        Raises :class:`ServeError` on a structured daemon error and
        ``ConnectionError`` when the daemon hung up without answering.
        """
        protocol.send_frame(self._sock, payload)
        response = protocol.recv_frame(self._sock)
        if response is None:
            raise ConnectionError("daemon closed the connection without answering")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", protocol.ERR_INTERNAL),
                error.get("message", "unspecified error"),
            )
        return response

    # -- operations ----------------------------------------------------------

    def route(
        self,
        pi,
        *,
        d: int,
        g: int,
        backend: str | None = None,
    ) -> RouteOutcome:
        """Route one permutation on the daemon; blocks until answered.

        ``pi`` is any int sequence (list or numpy array).  The returned
        outcome's ``metrics`` equals the daemon session's ``route(pi)``
        bit-for-bit; ``batch_size`` reports how many concurrent requests the
        dynamic batcher coalesced this one with (1 = routed alone).
        """
        images = np.asarray(pi, dtype=np.int64)
        payload: dict[str, Any] = {
            "op": "route",
            "pi": [int(x) for x in images],
            "d": int(d),
            "g": int(g),
        }
        if backend is not None:
            payload["backend"] = backend
        response = self.request(payload)
        reported = response["metrics"]
        metrics = RoutingMetrics(**{name: reported[name] for name in _METRIC_FIELDS})
        return RouteOutcome(
            metrics=metrics,
            batch_size=int(response["batch_size"]),
            raw=response,
        )

    def stats(self) -> dict[str, Any]:
        """The daemon's ``stats`` payload: telemetry, cache, store, knobs."""
        return self.request({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The daemon's metrics as Prometheus-style text exposition."""
        return str(self.request({"op": "metrics"})["metrics"])

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self.request({"op": "ping"}).get("pong"))
