"""Exception hierarchy for the POPS routing reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration problems (:class:`ConfigurationError`) from
violations of the POPS communication model detected at simulation time
(:class:`SimulationError` and its subclasses) and from internal invariant
failures in the combinatorial machinery (:class:`GraphError`,
:class:`RoutingError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "GraphError",
    "NotRegularError",
    "NoPerfectMatchingError",
    "EdgeColoringError",
    "RoutingError",
    "ImproperListSystemError",
    "FairnessViolationError",
    "NotRoutableInOneSlotError",
    "SimulationError",
    "CouplerFailedError",
    "CouplerConflictError",
    "ReceiverConflictError",
    "TransmitterError",
    "DeliveryError",
    "UnsupportedScheduleError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """Raised when a network, schedule or solver is mis-configured."""


class ValidationError(ReproError):
    """Raised when user-supplied data fails validation (e.g. not a permutation)."""


# ---------------------------------------------------------------------------
# Graph substrate
# ---------------------------------------------------------------------------


class GraphError(ReproError):
    """Base class for errors raised by :mod:`repro.graph`."""


class NotRegularError(GraphError):
    """Raised when an operation requires a regular (multi)graph but the input is not."""


class NoPerfectMatchingError(GraphError):
    """Raised when a perfect matching is required but none exists."""


class EdgeColoringError(GraphError):
    """Raised when an edge colouring cannot be produced or fails verification."""


# ---------------------------------------------------------------------------
# Routing layer
# ---------------------------------------------------------------------------


class RoutingError(ReproError):
    """Base class for errors raised by :mod:`repro.routing`."""


class ImproperListSystemError(RoutingError):
    """Raised when a list system does not satisfy the properness conditions of Theorem 1."""


class FairnessViolationError(RoutingError):
    """Raised when an assignment claimed to be a fair distribution is not."""


class NotRoutableInOneSlotError(RoutingError):
    """Raised when a permutation is routed with the one-slot router but is not
    single-slot routable (Gravenstreter–Melhem characterisation)."""


# ---------------------------------------------------------------------------
# Simulation layer
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for violations of the POPS communication model."""


class CouplerFailedError(SimulationError):
    """Raised when a schedule drives a coupler (or failed processor) that the
    active :class:`~repro.faults.FaultSpec` has taken down.

    Unlike the model-violation errors, this one is *recoverable*: it carries
    the slot at which the fault struck, the failed coupler, and the residual
    packet state (``{packet: current holder}`` for every packet not yet at
    its destination) so callers can re-route the remaining traffic online
    over the surviving couplers (see :mod:`repro.faults.reroute`).
    """

    def __init__(self, message: str, *, slot=None, coupler=None, residual=None):
        super().__init__(message)
        self.slot = slot
        self.coupler = coupler
        self.residual = dict(residual) if residual else {}


class CouplerConflictError(SimulationError):
    """Raised when two processors drive the same coupler in the same slot."""


class ReceiverConflictError(SimulationError):
    """Raised when a processor is asked to read more than one coupler in a slot."""


class TransmitterError(SimulationError):
    """Raised when a processor sends through a coupler it is not wired to."""


class DeliveryError(SimulationError):
    """Raised when, after executing a schedule, packets did not reach their destinations."""


class UnsupportedScheduleError(SimulationError):
    """Raised when a schedule uses features outside a fast-path engine's model
    (packet duplication via non-consuming sends or multi-reader couplers);
    callers fall back to the reference simulator."""
