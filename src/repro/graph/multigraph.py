"""Bipartite multigraph with explicit edge multiplicities.

The fair-distribution construction of Theorem 1 operates on bipartite
*multigraphs*: the list system contributes ``l(s, s')`` parallel edges between
source ``s`` (left side) and element ``s'`` (right side).  Only multiplicities
matter for the algorithms we run (perfect matching, Euler partition, edge
colouring), so the representation is a dense-but-sparse-friendly mapping
``(left, right) -> multiplicity`` plus cached degree vectors.

Left and right vertices are identified by integer indices ``0 .. n_left-1``
and ``0 .. n_right-1`` respectively; they live in separate namespaces (the pair
``(3, 3)`` is an edge between *left* vertex 3 and *right* vertex 3).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import GraphError, NotRegularError
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["BipartiteMultigraph"]


class BipartiteMultigraph:
    """A bipartite multigraph on vertex classes ``L = {0..n_left-1}`` and
    ``R = {0..n_right-1}``.

    Edges carry integer multiplicities.  The class supports the operations the
    routing layer needs: adding/removing edge copies, degree queries,
    regularity checks, extraction of the underlying simple graph, and iteration
    over edge instances (each parallel copy yielded separately).
    """

    __slots__ = ("_n_left", "_n_right", "_mult", "_left_degree", "_right_degree", "_edge_count")

    def __init__(self, n_left: int, n_right: int):
        check_positive_int(n_left, "n_left")
        check_positive_int(n_right, "n_right")
        self._n_left = n_left
        self._n_right = n_right
        self._mult: dict[tuple[int, int], int] = {}
        self._left_degree = [0] * n_left
        self._right_degree = [0] * n_right
        self._edge_count = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(
        cls, n_left: int, n_right: int, edges: Iterable[tuple[int, int]]
    ) -> "BipartiteMultigraph":
        """Build a multigraph from an iterable of ``(left, right)`` edge instances.

        Repeated pairs accumulate multiplicity.
        """
        graph = cls(n_left, n_right)
        for left, right in edges:
            graph.add_edge(left, right)
        return graph

    def copy(self) -> "BipartiteMultigraph":
        """Return an independent copy of the multigraph."""
        clone = BipartiteMultigraph(self._n_left, self._n_right)
        clone._mult = dict(self._mult)
        clone._left_degree = list(self._left_degree)
        clone._right_degree = list(self._right_degree)
        clone._edge_count = self._edge_count
        return clone

    # -- basic accessors ---------------------------------------------------

    @property
    def n_left(self) -> int:
        """Number of left-side vertices."""
        return self._n_left

    @property
    def n_right(self) -> int:
        """Number of right-side vertices."""
        return self._n_right

    @property
    def n_edges(self) -> int:
        """Total number of edge instances (counting multiplicities)."""
        return self._edge_count

    def multiplicity(self, left: int, right: int) -> int:
        """Number of parallel copies of edge ``(left, right)``."""
        return self._mult.get((left, right), 0)

    def left_degree(self, left: int) -> int:
        """Degree (with multiplicity) of left vertex ``left``."""
        return self._left_degree[left]

    def right_degree(self, right: int) -> int:
        """Degree (with multiplicity) of right vertex ``right``."""
        return self._right_degree[right]

    def left_degrees(self) -> list[int]:
        """Degree vector of the left side (copy)."""
        return list(self._left_degree)

    def right_degrees(self) -> list[int]:
        """Degree vector of the right side (copy)."""
        return list(self._right_degree)

    def neighbors(self, left: int) -> list[int]:
        """Distinct right-side neighbours of ``left`` (no multiplicities)."""
        return [r for (l, r), m in self._mult.items() if l == left and m > 0]

    # -- mutation ----------------------------------------------------------

    def add_edge(self, left: int, right: int, multiplicity: int = 1) -> None:
        """Add ``multiplicity`` parallel copies of edge ``(left, right)``."""
        check_non_negative_int(multiplicity, "multiplicity")
        if multiplicity == 0:
            return
        self._check_vertex(left, right)
        self._mult[(left, right)] = self._mult.get((left, right), 0) + multiplicity
        self._left_degree[left] += multiplicity
        self._right_degree[right] += multiplicity
        self._edge_count += multiplicity

    def remove_edge(self, left: int, right: int, multiplicity: int = 1) -> None:
        """Remove ``multiplicity`` copies of edge ``(left, right)``.

        Raises :class:`GraphError` if fewer copies are present.
        """
        check_non_negative_int(multiplicity, "multiplicity")
        if multiplicity == 0:
            return
        current = self._mult.get((left, right), 0)
        if current < multiplicity:
            raise GraphError(
                f"cannot remove {multiplicity} copies of edge ({left}, {right}); "
                f"only {current} present"
            )
        if current == multiplicity:
            del self._mult[(left, right)]
        else:
            self._mult[(left, right)] = current - multiplicity
        self._left_degree[left] -= multiplicity
        self._right_degree[right] -= multiplicity
        self._edge_count -= multiplicity

    def remove_matching(self, matching: dict[int, int]) -> None:
        """Remove one copy of each edge in ``matching`` (left -> right)."""
        for left, right in matching.items():
            self.remove_edge(left, right)

    # -- structure queries ---------------------------------------------------

    def is_regular(self) -> bool:
        """True iff every vertex on both sides has the same degree."""
        degrees = set(self._left_degree) | set(self._right_degree)
        return len(degrees) == 1

    def regular_degree(self) -> int:
        """Return the common degree of a regular multigraph.

        Raises :class:`NotRegularError` when the graph is not regular.
        """
        if not self.is_regular():
            raise NotRegularError(
                "graph is not regular: left degrees "
                f"{sorted(set(self._left_degree))}, right degrees "
                f"{sorted(set(self._right_degree))}"
            )
        return self._left_degree[0]

    def max_degree(self) -> int:
        """Maximum degree over both sides (0 for an empty graph)."""
        left_max = max(self._left_degree, default=0)
        right_max = max(self._right_degree, default=0)
        return max(left_max, right_max)

    def is_biregular(self) -> tuple[bool, int, int]:
        """Check side-wise regularity.

        Returns ``(ok, left_degree, right_degree)``; when ``ok`` is ``False``
        the degree values are -1.
        """
        left_set = set(self._left_degree)
        right_set = set(self._right_degree)
        if len(left_set) == 1 and len(right_set) == 1:
            return True, self._left_degree[0], self._right_degree[0]
        return False, -1, -1

    # -- iteration -----------------------------------------------------------

    def edges_with_multiplicity(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over ``(left, right, multiplicity)`` for every distinct edge."""
        for (left, right), mult in self._mult.items():
            yield left, right, mult

    def edge_instances(self) -> Iterator[tuple[int, int]]:
        """Iterate over every edge instance; parallel copies are yielded repeatedly."""
        for (left, right), mult in self._mult.items():
            for _ in range(mult):
                yield left, right

    def adjacency(self) -> list[list[int]]:
        """Return simple-graph adjacency lists ``left -> [distinct right neighbours]``."""
        adjacency: list[list[int]] = [[] for _ in range(self._n_left)]
        for (left, right), mult in self._mult.items():
            if mult > 0:
                adjacency[left].append(right)
        return adjacency

    def adjacency_with_multiplicity(self) -> list[dict[int, int]]:
        """Return adjacency as ``left -> {right: multiplicity}`` dictionaries."""
        adjacency: list[dict[int, int]] = [dict() for _ in range(self._n_left)]
        for (left, right), mult in self._mult.items():
            if mult > 0:
                adjacency[left][right] = mult
        return adjacency

    # -- misc ------------------------------------------------------------------

    def _check_vertex(self, left: int, right: int) -> None:
        if not (0 <= left < self._n_left):
            raise GraphError(f"left vertex {left} out of range [0, {self._n_left})")
        if not (0 <= right < self._n_right):
            raise GraphError(f"right vertex {right} out of range [0, {self._n_right})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteMultigraph):
            return NotImplemented
        return (
            self._n_left == other._n_left
            and self._n_right == other._n_right
            and self._mult == other._mult
        )

    def __repr__(self) -> str:
        return (
            f"BipartiteMultigraph(n_left={self._n_left}, n_right={self._n_right}, "
            f"edges={self._edge_count})"
        )
