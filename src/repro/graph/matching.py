"""Matchings in bipartite (multi)graphs.

Two entry points matter for the routing layer:

* :func:`maximum_matching` / :func:`hopcroft_karp` — maximum cardinality
  matching in a bipartite graph given as adjacency lists, in
  ``O(E * sqrt(V))`` time.
* :func:`perfect_matching_regular` — a perfect matching in a *regular*
  bipartite multigraph.  By Hall's theorem such a matching always exists; it is
  the work-horse of the König edge colouring used by Theorem 1.

Multiplicities never affect whether a perfect matching exists, so the
multigraph is reduced to its support before matching.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

from repro.exceptions import NoPerfectMatchingError, NotRegularError
from repro.graph.multigraph import BipartiteMultigraph

__all__ = [
    "hopcroft_karp",
    "hopcroft_karp_csr",
    "maximum_matching",
    "perfect_matching_regular",
]

#: Edge-count threshold below which :func:`hopcroft_karp_csr` delegates to
#: the list-based :func:`hopcroft_karp` (numpy per-call overhead dominates
#: vectorization gains on graphs this small).
_SMALL_GRAPH_EDGES = 2048


def hopcroft_karp(adjacency: Sequence[Sequence[int]], n_right: int) -> dict[int, int]:
    """Maximum-cardinality matching via the Hopcroft–Karp algorithm.

    Parameters
    ----------
    adjacency:
        ``adjacency[left]`` lists the distinct right-side neighbours of ``left``.
    n_right:
        Number of right-side vertices.

    Returns
    -------
    dict[int, int]
        Mapping ``left -> right`` for every matched left vertex.
    """
    n_left = len(adjacency)
    match_left: list[int] = [-1] * n_left
    match_right: list[int] = [-1] * n_right
    # BFS levels are small non-negative ints (an alternating path visits each
    # left vertex at most once, so levels stay below n_left); n_left + 1 is a
    # safe "unreached / dead" sentinel that no real level + 1 can equal.
    unreached = n_left + 1
    distance: list[int] = [0] * n_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for left in range(n_left):
            if match_left[left] == -1:
                distance[left] = 0
                queue.append(left)
            else:
                distance[left] = unreached
        found_augmenting = False
        while queue:
            left = queue.popleft()
            for right in adjacency[left]:
                nxt = match_right[right]
                if nxt == -1:
                    found_augmenting = True
                elif distance[nxt] == unreached:
                    distance[nxt] = distance[left] + 1
                    queue.append(nxt)
        return found_augmenting

    def dfs(left: int) -> bool:
        for right in adjacency[left]:
            nxt = match_right[right]
            if nxt == -1 or (distance[nxt] == distance[left] + 1 and dfs(nxt)):
                match_left[left] = right
                match_right[right] = left
                return True
        distance[left] = unreached
        return False

    while bfs():
        for left in range(n_left):
            if match_left[left] == -1:
                dfs(left)

    return {left: right for left, right in enumerate(match_left) if right != -1}


def hopcroft_karp_csr(
    indptr: np.ndarray, indices: np.ndarray, n_right: int
) -> np.ndarray:
    """Hopcroft–Karp on a CSR adjacency, with the heavy phases vectorized.

    Three stages, tuned for the array colouring backends (few vertices, many
    edge instances, called once per colour):

    1. a vectorized greedy seed — every free left vertex proposes its current
       arc, one proposer per right vertex wins, losers advance their arc —
       which matches the bulk of the vertices in whole-array operations;
    2. the layered BFS of Hopcroft–Karp as one multi-row CSR gather per
       layer (integer levels, ``n_left + 1`` as the unreached sentinel);
    3. the augmenting DFS over plain Python lists (the vertex set is small,
       and list indexing beats numpy scalar indexing several-fold there).

    Parameters
    ----------
    indptr / indices:
        CSR adjacency of the left side: row ``v`` lists the distinct
        right-side neighbours ``indices[indptr[v]:indptr[v + 1]]``.
    n_right:
        Number of right-side vertices.

    Returns
    -------
    numpy.ndarray
        ``match_left`` with ``match_left[v]`` the matched right vertex of
        ``v`` (``-1`` when unmatched).
    """
    n_left = int(indptr.shape[0]) - 1
    unreached = n_left + 1
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)

    # Below a few thousand edges the fixed cost of each numpy call exceeds
    # the work it vectorizes; the plain list implementation wins outright.
    if indices.size <= _SMALL_GRAPH_EDGES:
        bounds = indptr.tolist()
        flat = indices.tolist()
        adjacency = [
            flat[bounds[left]:bounds[left + 1]] for left in range(n_left)
        ]
        matching = hopcroft_karp(adjacency, n_right)
        match_left = np.full(n_left, -1, dtype=np.int64)
        for left, right in matching.items():
            match_left[left] = right
        return match_left

    match_left = np.full(n_left, -1, dtype=np.int64)
    match_right = np.full(n_right, -1, dtype=np.int64)

    # -- stage 1: vectorized greedy seed ----------------------------------
    arc = indptr[:-1].copy()
    row_end = indptr[1:]
    while True:
        active = np.flatnonzero((match_left == -1) & (arc < row_end))
        if active.size == 0:
            break
        proposed = indices[arc[active]]
        open_right = match_right[proposed] == -1
        winners_left = active[open_right]
        winners_right = proposed[open_right]
        if winners_left.size:
            _, first = np.unique(winners_right, return_index=True)
            match_left[winners_left[first]] = winners_right[first]
            match_right[winners_right[first]] = winners_left[first]
        still_free = active[match_left[active] == -1]
        arc[still_free] += 1

    # -- stages 2 + 3: Hopcroft–Karp phases -------------------------------
    ml = match_left.tolist()
    mr = match_right.tolist()
    indptr_list = indptr.tolist()
    indices_list = indices.tolist()
    level_list = [unreached] * n_left

    def bfs() -> bool:
        match_right_arr = np.array(mr, dtype=np.int64)
        level = np.full(n_left, unreached, dtype=np.int64)
        frontier = np.flatnonzero(np.array(ml, dtype=np.int64) == -1)
        level[frontier] = 0
        found_augmenting = False
        depth = 0
        while frontier.size:
            depth += 1
            starts = indptr[frontier]
            lens = indptr[frontier + 1] - starts
            total = int(lens.sum())
            if total == 0:
                break
            offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
            gather = (
                np.arange(total) - np.repeat(offsets, lens) + np.repeat(starts, lens)
            )
            nxt = match_right_arr[indices[gather]]
            if (nxt == -1).any():
                found_augmenting = True
            candidates = np.unique(nxt[nxt >= 0])
            candidates = candidates[level[candidates] == unreached]
            level[candidates] = depth
            frontier = candidates
        level_list[:] = level.tolist()
        return found_augmenting

    def dfs(root: int) -> bool:
        # Iterative augmenting search (graphs can have thousands of vertices
        # and an augmenting path may visit most of them, so recursion is out).
        # Each frame is [left vertex, current arc position]; finding a free
        # right vertex augments along every frame's current arc.
        stack = [[root, indptr_list[root]]]
        while stack:
            frame = stack[-1]
            left, position = frame
            end = indptr_list[left + 1]
            descend = -1
            augment = False
            while position < end:
                right = indices_list[position]
                nxt = mr[right]
                if nxt == -1:
                    augment = True
                    break
                if level_list[nxt] == level_list[left] + 1:
                    descend = nxt
                    break
                position += 1
            frame[1] = position
            if augment:
                for vertex, arc in stack:
                    matched_right = indices_list[arc]
                    ml[vertex] = matched_right
                    mr[matched_right] = vertex
                return True
            if descend >= 0:
                stack.append([descend, indptr_list[descend]])
                continue
            # Dead end: mark the vertex unreachable for this phase and let
            # the parent try its next arc.
            level_list[left] = unreached
            stack.pop()
            if stack:
                stack[-1][1] += 1
        return False

    while bfs():
        for left in range(n_left):
            if ml[left] == -1:
                dfs(left)

    return np.array(ml, dtype=np.int64)


def maximum_matching(graph: BipartiteMultigraph) -> dict[int, int]:
    """Maximum-cardinality matching of the support of ``graph`` (left -> right)."""
    return hopcroft_karp(graph.adjacency(), graph.n_right)


def perfect_matching_regular(graph: BipartiteMultigraph) -> dict[int, int]:
    """Return a perfect matching of a regular bipartite multigraph.

    The graph must be regular with equal-sized sides and positive degree; by
    König/Hall such a graph always contains a perfect matching.  The matching
    is computed on the support graph with Hopcroft–Karp.

    Raises
    ------
    NotRegularError
        If the graph is not regular or the sides differ in size.
    NoPerfectMatchingError
        If no perfect matching is found (cannot happen for genuinely regular
        inputs; kept as an internal-consistency guard).
    """
    if graph.n_left != graph.n_right:
        raise NotRegularError(
            f"regular bipartite multigraph must have equal sides, got "
            f"{graph.n_left} and {graph.n_right}"
        )
    degree = graph.regular_degree()
    if degree == 0:
        raise NotRegularError("cannot extract a perfect matching from an empty graph")
    matching = maximum_matching(graph)
    if len(matching) != graph.n_left:
        raise NoPerfectMatchingError(
            f"expected a perfect matching of size {graph.n_left}, found {len(matching)}"
        )
    return matching
