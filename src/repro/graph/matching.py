"""Matchings in bipartite (multi)graphs.

Two entry points matter for the routing layer:

* :func:`maximum_matching` / :func:`hopcroft_karp` — maximum cardinality
  matching in a bipartite graph given as adjacency lists, in
  ``O(E * sqrt(V))`` time.
* :func:`perfect_matching_regular` — a perfect matching in a *regular*
  bipartite multigraph.  By Hall's theorem such a matching always exists; it is
  the work-horse of the König edge colouring used by Theorem 1.

Multiplicities never affect whether a perfect matching exists, so the
multigraph is reduced to its support before matching.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.exceptions import NoPerfectMatchingError, NotRegularError
from repro.graph.multigraph import BipartiteMultigraph

__all__ = ["hopcroft_karp", "maximum_matching", "perfect_matching_regular"]

_INFINITY = float("inf")


def hopcroft_karp(adjacency: Sequence[Sequence[int]], n_right: int) -> dict[int, int]:
    """Maximum-cardinality matching via the Hopcroft–Karp algorithm.

    Parameters
    ----------
    adjacency:
        ``adjacency[left]`` lists the distinct right-side neighbours of ``left``.
    n_right:
        Number of right-side vertices.

    Returns
    -------
    dict[int, int]
        Mapping ``left -> right`` for every matched left vertex.
    """
    n_left = len(adjacency)
    match_left: list[int] = [-1] * n_left
    match_right: list[int] = [-1] * n_right
    distance: list[float] = [0.0] * n_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for left in range(n_left):
            if match_left[left] == -1:
                distance[left] = 0.0
                queue.append(left)
            else:
                distance[left] = _INFINITY
        found_augmenting = False
        while queue:
            left = queue.popleft()
            for right in adjacency[left]:
                nxt = match_right[right]
                if nxt == -1:
                    found_augmenting = True
                elif distance[nxt] == _INFINITY:
                    distance[nxt] = distance[left] + 1
                    queue.append(nxt)
        return found_augmenting

    def dfs(left: int) -> bool:
        for right in adjacency[left]:
            nxt = match_right[right]
            if nxt == -1 or (distance[nxt] == distance[left] + 1 and dfs(nxt)):
                match_left[left] = right
                match_right[right] = left
                return True
        distance[left] = _INFINITY
        return False

    while bfs():
        for left in range(n_left):
            if match_left[left] == -1:
                dfs(left)

    return {left: right for left, right in enumerate(match_left) if right != -1}


def maximum_matching(graph: BipartiteMultigraph) -> dict[int, int]:
    """Maximum-cardinality matching of the support of ``graph`` (left -> right)."""
    return hopcroft_karp(graph.adjacency(), graph.n_right)


def perfect_matching_regular(graph: BipartiteMultigraph) -> dict[int, int]:
    """Return a perfect matching of a regular bipartite multigraph.

    The graph must be regular with equal-sized sides and positive degree; by
    König/Hall such a graph always contains a perfect matching.  The matching
    is computed on the support graph with Hopcroft–Karp.

    Raises
    ------
    NotRegularError
        If the graph is not regular or the sides differ in size.
    NoPerfectMatchingError
        If no perfect matching is found (cannot happen for genuinely regular
        inputs; kept as an internal-consistency guard).
    """
    if graph.n_left != graph.n_right:
        raise NotRegularError(
            f"regular bipartite multigraph must have equal sides, got "
            f"{graph.n_left} and {graph.n_right}"
        )
    degree = graph.regular_degree()
    if degree == 0:
        raise NotRegularError("cannot extract a perfect matching from an empty graph")
    matching = maximum_matching(graph)
    if len(matching) != graph.n_left:
        raise NoPerfectMatchingError(
            f"expected a perfect matching of size {graph.n_left}, found {len(matching)}"
        )
    return matching
