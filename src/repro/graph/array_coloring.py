"""Array-native edge-colouring kernels for regular bipartite multigraphs.

The object backends in :mod:`repro.graph.edge_coloring` walk Python dicts one
edge instance at a time; at routing scale (``n = d·g`` instances for a handful
of vertices) that per-instance interpreter cost dominates plan construction.
The two kernels here keep the edge instances as parallel ``int64`` arrays end
to end and are registered as the ``"konig-array"`` and ``"euler-array"``
router backends:

``konig_array_colors``
    König's 1-factorisation by repeated perfect matching, with the matching
    computed by the numpy-backed :func:`repro.graph.matching.
    hopcroft_karp_csr` on the (small) support graph and all multiplicity
    bookkeeping done with ``bincount``/``searchsorted``.  Handles every
    regular degree.

``euler_array_colors``
    The Gabow-style recursion made iterative: even degrees are halved by a
    *vectorized* Euler split (:func:`euler_split_instances`) and odd degrees
    peel one perfect matching first.  A ``2^k``-regular graph — the common
    power-of-two ``d`` of the benchmarks — is coloured by ``k`` splits with no
    matching call at all.

The vectorized Euler split replaces trail-walking with the classic parallel
formulation: pair consecutive edge instances at every (even-degree) vertex on
both sides; the union of the two pairings decomposes the instances into even
cycles, and a proper 2-colouring of those cycles — computed with pointer
doubling, no Python loop over edges — puts exactly half of every vertex's
instances in each half.

Both kernels are *deterministic* pure functions of the canonical
:class:`~repro.graph.array_multigraph.ArrayMultigraph` arrays.  The compiled
routing front end (:meth:`repro.routing.permutation_router.PermutationRouter.
route_compiled`) relies on that determinism to stay bit-identical to the
object pipeline run with the same backend.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import ROUTER_BACKENDS
from repro.exceptions import (
    EdgeColoringError,
    GraphError,
    NoPerfectMatchingError,
    NotRegularError,
)
from repro.graph.array_multigraph import ArrayMultigraph
from repro.graph.edge_coloring import COLORING_BACKENDS, EdgeColoring
from repro.graph.matching import hopcroft_karp_csr
from repro.graph.multigraph import BipartiteMultigraph
from repro.utils.arrayops import shrink_sort_key

__all__ = [
    "ARRAY_COLORING_KERNELS",
    "ARRAY_COLORING_STACK_KERNELS",
    "euler_split_instances",
    "konig_array_colors",
    "euler_array_colors",
    "konig_array_colors_stack",
    "euler_array_colors_stack",
    "konig_array_edge_coloring",
    "euler_array_edge_coloring",
    "coloring_from_instances",
    "verify_instance_coloring",
    "verify_instance_coloring_stack",
]


def _check_equal_sides(graph: ArrayMultigraph) -> None:
    if graph.n_left != graph.n_right:
        raise NotRegularError(
            f"regular bipartite multigraph must have equal sides, got "
            f"{graph.n_left} and {graph.n_right}"
        )


def _pairing_from_order(order: np.ndarray) -> np.ndarray:
    """Pair consecutive entries of a by-vertex ordering into an involution."""
    partner = np.empty(order.size, dtype=np.int64)
    partner[order[0::2]] = order[1::2]
    partner[order[1::2]] = order[0::2]
    return partner


def _alternate_mask(
    partner_left: np.ndarray,
    partner_right: np.ndarray,
    orbit_bound: int | None = None,
) -> np.ndarray:
    """Proper 2-colouring of the union of two instance pairings.

    The union decomposes the instances into even cycles alternating left and
    right pairings; orbits of the two-step map ``partner_right ∘
    partner_left`` are the alternate instances of a cycle, found by pointer
    doubling (orbit minima), no Python loop over edges.

    ``orbit_bound`` caps the doubling window when the caller knows no cycle
    is longer (e.g. cycles confined to one row of a flattened stack); the
    dropped iterations are idempotent, so the mask is unchanged.
    """
    m = partner_left.size
    limit = m if orbit_bound is None else min(orbit_bound, m)
    step = partner_right[partner_left]
    representative = _orbit_minima(step, limit)
    # An instance and its left partner sit in complementary orbits of the
    # same cycle; the orbit holding the cycle's smallest instance goes first.
    return representative > representative[partner_left]


def _iota(m: int, dtype) -> np.ndarray:
    """Cached read-only ``arange(m, dtype=dtype)`` for the doubling kernels.

    The stack kernels call :func:`_orbit_minima` once per split level with
    one flat union size per problem shape, so a tiny keyed cache removes the
    repeated arange allocation.  The array is marked read-only; callers only
    feed it to allocating ufuncs.
    """
    key = (m, np.dtype(dtype).str)
    iota = _IOTA_CACHE.get(key)
    if iota is None:
        if len(_IOTA_CACHE) >= 16:
            _IOTA_CACHE.clear()
        iota = np.arange(m, dtype=dtype)
        iota.setflags(write=False)
        _IOTA_CACHE[key] = iota
    return iota


_IOTA_CACHE: dict[tuple[int, str], np.ndarray] = {}


def _orbit_minima(step: np.ndarray, limit: int) -> np.ndarray:
    """Minimum instance index over each orbit of the permutation ``step``.

    Pointer doubling; ``limit`` bounds the orbit sizes (extra iterations are
    idempotent, so any upper bound yields the exact minima).
    """
    m = step.size
    if 1 << 13 <= m <= 1 << 16:
        # Pack (jump, representative) into one uint32 word so each doubling
        # iteration costs a single gather instead of two; both fields are
        # instance indices < 2**16, so the packed arithmetic is exact and the
        # orbit minima are unchanged.  Below ~8k instances the extra
        # elementwise passes cost more than the saved gather, so small
        # problems keep the plain two-gather loop.
        low = np.uint32(0xFFFF)
        if step.dtype != np.uint32:
            step = step.astype(np.uint32)
        representative = np.minimum(_iota(m, np.uint32), step)
        # Gather indices stay int64: numpy re-casts non-native index arrays
        # on every fancy index, so a single explicit conversion per
        # iteration is cheaper than indexing with uint32 directly.
        fetched = step[step]
        packed = (fetched << np.uint32(16)) | representative
        jump = fetched.astype(np.int64)
        window = 2
        while window < limit:
            fetched = packed[jump]
            representative = np.minimum(representative, fetched & low)
            window *= 2
            if window < limit:
                packed = (fetched & ~low) | representative
                jump = (fetched >> np.uint32(16)).astype(np.int64)
    elif m > 1 << 16:
        # Same packing in int64 (jump << 32 | rep): the shifted fetch is
        # already a valid index, so each iteration is one gather plus
        # elementwise word surgery.
        low = np.int64(0xFFFFFFFF)
        representative = np.minimum(_iota(m, np.int64), step)
        jump = step[step]
        packed = (jump << np.int64(32)) | representative
        window = 2
        while window < limit:
            fetched = packed[jump]
            representative = np.minimum(representative, fetched & low)
            window *= 2
            if window < limit:
                packed = (fetched & ~low) | representative
                jump = fetched >> np.int64(32)
    else:
        representative = np.minimum(_iota(m, np.int64), step)
        jump = step[step]
        window = 2
        while window < limit:
            representative = np.minimum(representative, representative[jump])
            window *= 2
            if window < limit:
                jump = jump[jump]
    return representative


def euler_split_instances(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Vectorized Euler split of edge instances with all-even degrees.

    Returns a boolean mask assigning each instance to one of two halves such
    that every vertex's degree is exactly halved.  Pair consecutive instances
    at each vertex (sorted by vertex, blocks start at even offsets because
    all degrees are even); the two pairings form disjoint even cycles over
    the instances, and a proper 2-colouring along each cycle
    (:func:`_alternate_mask`) puts one instance of every pair in each half.

    Raises
    ------
    GraphError
        If some vertex has odd degree (the split would be unbalanced).
    """
    m = left.size
    if m == 0:
        return np.zeros(0, dtype=bool)
    if m % 2 or (np.bincount(left) % 2).any() or (np.bincount(right) % 2).any():
        raise GraphError("cannot Euler-split instances: a vertex has odd degree")
    partner_left = _pairing_from_order(np.argsort(left, kind="stable"))
    partner_right = _pairing_from_order(np.argsort(right, kind="stable"))
    return _alternate_mask(partner_left, partner_right)


def _unique_edges(
    left: np.ndarray, right: np.ndarray, n_right: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sorted distinct-edge view of instance arrays.

    Returns ``(order, first_position, unique_key)`` where ``order`` stably
    sorts instances by ``(left, right)``, ``first_position`` indexes the
    first sorted instance of each distinct edge and ``unique_key`` is the
    sorted distinct ``left * n_right + right`` key array.
    """
    key = left * np.int64(n_right) + right
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    first = np.flatnonzero(
        np.concatenate(([True], sorted_key[1:] != sorted_key[:-1]))
    )
    return order, first, sorted_key[first]


def _perfect_matching_positions(
    unique_key: np.ndarray, n_left: int, n_right: int
) -> np.ndarray:
    """One perfect-matching edge per left vertex, as positions into the
    sorted distinct-edge key array ``unique_key`` (``left * n_right + right``).

    Raises :class:`NoPerfectMatchingError` when some left vertex stays
    unmatched (cannot happen for genuinely regular inputs).
    """
    unique_left = unique_key // n_right
    counts = np.bincount(unique_left, minlength=n_left)
    indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    match_left = hopcroft_karp_csr(indptr, unique_key % n_right, n_right)
    if (match_left < 0).any():
        matched = int((match_left >= 0).sum())
        raise NoPerfectMatchingError(
            f"expected a perfect matching of size {n_left}, found {matched}"
        )
    matched_key = np.arange(n_left, dtype=np.int64) * n_right + match_left
    return np.searchsorted(unique_key, matched_key)


def _peel_perfect_matching(
    left: np.ndarray, right: np.ndarray, n_left: int, n_right: int
) -> tuple[np.ndarray, np.ndarray]:
    """Extract one perfect matching from regular instance arrays.

    Returns ``(keep_mask, removed)``: ``removed`` holds one instance index
    per matched edge (the first copy, for determinism) and ``keep_mask``
    drops exactly those instances.
    """
    order, first, unique_key = _unique_edges(left, right, n_right)
    positions = _perfect_matching_positions(unique_key, n_left, n_right)
    removed = order[first[positions]]
    keep_mask = np.ones(left.size, dtype=bool)
    keep_mask[removed] = False
    return keep_mask, removed


def konig_array_colors(graph: ArrayMultigraph) -> np.ndarray:
    """König 1-factorisation; returns a colour per canonical edge instance.

    ``colors[i]`` is the colour of the ``i``-th instance of
    ``graph.instances()``; parallel copies of an edge receive their colours
    in ascending order, matching how the object pipeline reads colour
    classes back.
    """
    _check_equal_sides(graph)
    degree = graph.regular_degree()
    n_left, n_right = graph.n_left, graph.n_right
    if degree == 0:
        return np.zeros(0, dtype=np.int64)
    mult = graph.mult.copy()
    unique_key = graph.left * np.int64(n_right) + graph.right
    edge_record = np.empty(degree * n_left, dtype=np.int64)
    color_record = np.empty(degree * n_left, dtype=np.int64)
    for color in range(degree):
        live_index = np.flatnonzero(mult > 0)
        positions = _perfect_matching_positions(
            unique_key[live_index], n_left, n_right
        )
        edge_id = live_index[positions]
        mult[edge_id] -= 1
        segment = slice(color * n_left, (color + 1) * n_left)
        edge_record[segment] = edge_id
        color_record[segment] = color
    if (mult != 0).any():
        raise EdgeColoringError("König colouring left uncoloured edges behind")
    # Instances are canonical (copies of an edge consecutive) and each edge's
    # recorded colours appear in ascending round order, so a stable sort of
    # the records by edge id aligns them 1:1 with the instance expansion.
    return color_record[np.argsort(edge_record, kind="stable")]


def euler_array_colors(graph: ArrayMultigraph) -> np.ndarray:
    """Euler-split 1-factorisation; returns a colour per canonical instance.

    Iterative Gabow recursion over instance arrays: even degrees are halved
    by :func:`euler_split_instances` (colour block split in two), odd degrees
    peel one perfect matching into the lowest colour of the block.  Unlike
    :func:`konig_array_colors`, parallel copies of an edge receive colours in
    split order, not ascending order — consumers that need ascending colours
    per edge sort afterwards (``np.lexsort``), as the fair-distribution
    readback does.

    B=1 front of :func:`euler_array_colors_stack`; the stacked kernel is
    bit-identical per batch row, so a single graph routes through the same
    code the megabatch pipeline runs.
    """
    _check_equal_sides(graph)
    degree = graph.regular_degree()
    if graph.n_edges == 0:
        return np.empty(0, dtype=np.int64)
    left, right = graph.instances()
    return euler_array_colors_stack(
        left[None, :], right[None, :], graph.n_left, graph.n_right, degree
    )[0]


def _alternate_mask_stack(order: np.ndarray, m: int) -> np.ndarray:
    """Row-wise :func:`_alternate_mask` against the consecutive left pairing.

    ``order`` is a ``(rows, seg_len)`` stack of per-segment right-pairing
    orderings covering segments of ``m`` instances; the left pairing is
    ``i ^ 1`` in every segment — globally too, since segment offsets are
    even.  The flat disjoint union keeps cycles confined to their segment,
    orbit minima are offset-invariant within a segment, and the extra
    pointer-doubling iterations of the larger union are idempotent, so each
    output row is bit-identical to a standalone call on that row.

    The two-step walk ``step(i) = partner_right[i ^ 1]`` is scattered
    directly (no intermediate pairing array): consecutive order entries are
    right partners, so ``step[a ^ 1] = b`` and ``step[b ^ 1] = a`` for each
    ordered pair ``(a, b)``.  Likewise the mask needs no swapped gather:
    ``i`` and ``i ^ 1`` sit in complementary orbits of the same cycle with
    distinct minima, so the odd mask is the negated even mask.
    """
    rows, seg_len = order.shape
    size = rows * seg_len
    flat = (order + (np.arange(rows, dtype=np.int64) * seg_len)[:, None]).ravel()
    first = flat[0::2]
    second = flat[1::2]
    # 16-bit-indexable unions feed the packed pointer-doubling tier directly.
    step_dtype = np.uint32 if size <= 1 << 16 else np.int64
    step = np.empty(size, dtype=step_dtype)
    step[first ^ 1] = second
    step[second ^ 1] = first
    # Cycles are confined to a segment, so they have at most m instances and
    # the two-step orbits at most m // 2 — far below the flattened union.
    representative = _orbit_minima(step, min(max(2, m // 2), size))
    even = representative[0::2] > representative[1::2]
    mask = np.empty(size, dtype=bool)
    mask[0::2] = even
    mask[1::2] = ~even
    return mask


def euler_array_colors_stack(
    left: np.ndarray,
    right: np.ndarray,
    n_left: int,
    n_right: int,
    degree: int | None = None,
) -> np.ndarray:
    """Batched :func:`euler_array_colors` over ``(B, m)`` instance stacks.

    ``left`` / ``right`` hold the *canonical* (left-sorted) instance arrays
    of ``B`` regular bipartite multigraphs sharing the vertex sets and the
    regular degree.  Returns a ``(B, m)`` colour stack; row ``b`` is
    bit-identical to ``euler_array_colors`` on row ``b`` alone.

    The even-degree split is fully batched: the structural left pairing is
    shared, the right pairing is a row-wise stable argsort, and one
    pointer-doubling pass over the flattened disjoint union 2-colours every
    row's cycles at once.  Exactly half of each row survives either side of
    a split (vertex degrees halve row-wise), so boolean-mask selection
    reshapes back to a dense stack.  Odd degrees peel a perfect matching
    per row (matching is the one stage that does not batch).
    """
    left = np.asarray(left)
    right = np.asarray(right)
    batch, m = left.shape
    colors = np.empty((batch, m), dtype=np.int64)
    if m == 0:
        return colors
    if degree is None:
        degree = m // n_left
    # Right endpoints are < n_right and original positions are < m; 16-bit
    # working copies turn every row-wise stable argsort below into a radix
    # sort (an order-of-magnitude faster) and quarter masked-copy traffic.
    # Stable argsort yields the same ordering for any dtype holding the same
    # values and positions are only ever scattered through, so colours are
    # unchanged bit for bit.
    int16_max = np.iinfo(np.int16).max
    if n_right <= np.iinfo(np.uint8).max:
        right = right.astype(np.uint8, copy=False)
    elif n_right <= int16_max:
        right = right.astype(np.int16, copy=False)
    else:
        right = right.astype(np.int64, copy=False)
    index_dtype = np.int16 if m <= int16_max else np.int64
    index = np.broadcast_to(np.arange(m, dtype=index_dtype), (batch, m))
    # The split tree is processed level-synchronously: all 2^k subproblems of
    # depth k share one degree and one segment length, so each level is a
    # single batched pass over a ``(batch * n_seg, seg_len)`` view — the flat
    # union keeps its full ``batch * m`` size at every depth (one argsort,
    # one pointer-doubling pass, one reorder per level instead of one per
    # node).  Masks and peels are computed per segment exactly as the
    # node-at-a-time recursion would, so the colours are unchanged bit for
    # bit; only the call count drops.
    n_seg, seg_len, deg = 1, m, degree
    bases = np.zeros(1, dtype=np.int64)
    while deg > 1:
        view_r = right.reshape(batch * n_seg, seg_len)
        view_i = index.reshape(batch * n_seg, seg_len)
        if deg % 2:
            # Segments stay sorted by left endpoint through every reorder and
            # every vertex keeps exactly ``deg`` instances, so the left array
            # is the shared canonical expansion — no need to carry it.
            # Matching is the one stage that does not batch.
            lefts_row = np.repeat(np.arange(n_left, dtype=np.int64), deg)
            keep = np.ones((batch * n_seg, seg_len), dtype=bool)
            for r in range(batch * n_seg):
                keep_r, removed_r = _peel_perfect_matching(
                    lefts_row, view_r[r], n_left, n_right
                )
                keep[r] = keep_r
                colors[r // n_seg, view_i[r, removed_r]] = bases[r % n_seg]
            seg_len -= n_left
            right = view_r[keep].reshape(batch, n_seg * seg_len)
            index = view_i[keep].reshape(batch, n_seg * seg_len)
            bases = bases + 1
            deg -= 1
            continue
        # Sorted-by-left segments make the left pairing consecutive indices —
        # handled implicitly by the consecutive-pairing mask kernel.
        second = _alternate_mask_stack(
            np.argsort(view_r, axis=1, kind="stable"), seg_len
        ).reshape(batch * n_seg, seg_len)
        # Stable argsort of the half mask lists each segment's first half
        # (in order) then its second half (in order): exactly the two child
        # segments, laid out contiguously.  Folding the row offsets in once
        # lets both planes reuse a single flat gather index.
        pos = np.argsort(second, axis=1, kind="stable")
        pos += (np.arange(batch * n_seg, dtype=np.int64) * seg_len)[:, None]
        flat_pos = pos.ravel()
        right = right.ravel()[flat_pos].reshape(batch, -1)
        index = index.ravel()[flat_pos].reshape(batch, -1)
        half = deg // 2
        bases = np.stack([bases, bases + half], axis=1).ravel()
        n_seg *= 2
        seg_len //= 2
        deg = half
    # Every surviving segment is one colour class.
    np.put_along_axis(colors, index, np.repeat(bases, seg_len)[None, :], axis=1)
    return colors


def konig_array_colors_stack(
    left: np.ndarray,
    right: np.ndarray,
    n_left: int,
    n_right: int,
    degree: int | None = None,
) -> np.ndarray:
    """Batched König kernel: a vectorized-per-row loop over the stack.

    König's round structure is matching-bound, so the batch axis cannot be
    folded into the pointer-doubling trick; each row runs the (already
    array-native) single-graph kernel.  Shares the stack-kernel signature so
    the megabatch pipeline dispatches both backends uniformly.
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    batch, m = left.shape
    colors = np.empty((batch, m), dtype=np.int64)
    for b in range(batch):
        graph = ArrayMultigraph.from_instances(n_left, n_right, left[b], right[b])
        colors[b] = konig_array_colors(graph)
    return colors


#: Kernels usable by the compiled routing front end, keyed by backend name.
ARRAY_COLORING_KERNELS = {
    "konig-array": konig_array_colors,
    "euler-array": euler_array_colors,
}

#: Batched twins over ``(B, m)`` canonical instance stacks, same keys.
ARRAY_COLORING_STACK_KERNELS = {
    "konig-array": konig_array_colors_stack,
    "euler-array": euler_array_colors_stack,
}


def verify_instance_coloring(graph: ArrayMultigraph, colors: np.ndarray) -> None:
    """Vectorized properness check of an instance colouring.

    The multiset condition of :func:`repro.graph.edge_coloring.
    verify_edge_coloring` holds by construction (colours annotate exactly the
    graph's instances); what remains is properness — no colour repeats a
    vertex on either side — checked with two sorted-key passes.

    Raises
    ------
    EdgeColoringError
        On the first violation, naming the offending colour and vertex.
    """
    left, right = graph.instances()
    if colors.shape != left.shape:
        raise EdgeColoringError(
            f"colouring annotates {colors.size} instances, graph has {left.size}"
        )
    for side, vertices, n_vertices in (
        ("left", left, graph.n_left),
        ("right", right, graph.n_right),
    ):
        key = np.sort(colors * np.int64(n_vertices) + vertices)
        duplicate = np.flatnonzero(key[1:] == key[:-1])
        if duplicate.size:
            clash = int(key[duplicate[0]])
            raise EdgeColoringError(
                f"colour {clash // n_vertices} uses {side} vertex "
                f"{clash % n_vertices} more than once"
            )


def verify_instance_coloring_stack(
    left: np.ndarray,
    right: np.ndarray,
    n_left: int,
    n_right: int,
    colors: np.ndarray,
) -> None:
    """Row-wise :func:`verify_instance_coloring` over ``(B, m)`` stacks.

    Raises with the single-graph message for the row-major first violation.
    """
    if colors.shape != left.shape:
        raise EdgeColoringError(
            f"colouring annotates {colors.size} instances, graph has {left.size}"
        )
    for side, vertices, n_vertices in (
        ("left", left, n_left),
        ("right", right, n_right),
    ):
        flat = colors * np.int64(n_vertices) + vertices
        bound = int(flat.max()) if flat.size else -1
        key = np.sort(shrink_sort_key(flat, bound), axis=1)
        duplicate = key[:, 1:] == key[:, :-1]
        if duplicate.any():
            b, i = np.unravel_index(int(np.argmax(duplicate)), duplicate.shape)
            clash = int(key[b, i])
            raise EdgeColoringError(
                f"colour {clash // n_vertices} uses {side} vertex "
                f"{clash % n_vertices} more than once"
            )


def coloring_from_instances(
    graph: ArrayMultigraph, colors: np.ndarray
) -> EdgeColoring:
    """Package an instance colouring as an object-level :class:`EdgeColoring`.

    Colour classes come out sorted by left vertex, the same normal form the
    ``"konig"`` backend produces.
    """
    degree = graph.regular_degree()
    left, right = graph.instances()
    order = np.lexsort((left, colors))
    counts = np.bincount(colors, minlength=degree)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    pairs = list(zip(left[order].tolist(), right[order].tolist()))
    classes = [
        pairs[bounds[color]:bounds[color + 1]] for color in range(degree)
    ]
    return EdgeColoring(n_colors=degree, classes=classes)


def konig_array_edge_coloring(graph: BipartiteMultigraph) -> EdgeColoring:
    """Array-kernel König colouring of a dict-based multigraph."""
    array_graph = ArrayMultigraph.from_bipartite(graph)
    return coloring_from_instances(array_graph, konig_array_colors(array_graph))


def euler_array_edge_coloring(graph: BipartiteMultigraph) -> EdgeColoring:
    """Array-kernel Euler-split colouring of a dict-based multigraph."""
    array_graph = ArrayMultigraph.from_bipartite(graph)
    return coloring_from_instances(array_graph, euler_array_colors(array_graph))


#: Object-level wrappers, keyed like COLORING_BACKENDS / ROUTER_BACKENDS.
_ARRAY_BACKENDS = {
    "konig-array": konig_array_edge_coloring,
    "euler-array": euler_array_edge_coloring,
}

for _name, _algorithm in _ARRAY_BACKENDS.items():
    COLORING_BACKENDS.setdefault(_name, _algorithm)
    if _name not in ROUTER_BACKENDS:
        ROUTER_BACKENDS.register(_name, _algorithm)
