"""Array-native edge-colouring kernels for regular bipartite multigraphs.

The object backends in :mod:`repro.graph.edge_coloring` walk Python dicts one
edge instance at a time; at routing scale (``n = d·g`` instances for a handful
of vertices) that per-instance interpreter cost dominates plan construction.
The two kernels here keep the edge instances as parallel ``int64`` arrays end
to end and are registered as the ``"konig-array"`` and ``"euler-array"``
router backends:

``konig_array_colors``
    König's 1-factorisation by repeated perfect matching, with the matching
    computed by the numpy-backed :func:`repro.graph.matching.
    hopcroft_karp_csr` on the (small) support graph and all multiplicity
    bookkeeping done with ``bincount``/``searchsorted``.  Handles every
    regular degree.

``euler_array_colors``
    The Gabow-style recursion made iterative: even degrees are halved by a
    *vectorized* Euler split (:func:`euler_split_instances`) and odd degrees
    peel one perfect matching first.  A ``2^k``-regular graph — the common
    power-of-two ``d`` of the benchmarks — is coloured by ``k`` splits with no
    matching call at all.

The vectorized Euler split replaces trail-walking with the classic parallel
formulation: pair consecutive edge instances at every (even-degree) vertex on
both sides; the union of the two pairings decomposes the instances into even
cycles, and a proper 2-colouring of those cycles — computed with pointer
doubling, no Python loop over edges — puts exactly half of every vertex's
instances in each half.

Both kernels are *deterministic* pure functions of the canonical
:class:`~repro.graph.array_multigraph.ArrayMultigraph` arrays.  The compiled
routing front end (:meth:`repro.routing.permutation_router.PermutationRouter.
route_compiled`) relies on that determinism to stay bit-identical to the
object pipeline run with the same backend.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import ROUTER_BACKENDS
from repro.exceptions import (
    EdgeColoringError,
    GraphError,
    NoPerfectMatchingError,
    NotRegularError,
)
from repro.graph.array_multigraph import ArrayMultigraph
from repro.graph.edge_coloring import COLORING_BACKENDS, EdgeColoring
from repro.graph.matching import hopcroft_karp_csr
from repro.graph.multigraph import BipartiteMultigraph

__all__ = [
    "ARRAY_COLORING_KERNELS",
    "euler_split_instances",
    "konig_array_colors",
    "euler_array_colors",
    "konig_array_edge_coloring",
    "euler_array_edge_coloring",
    "coloring_from_instances",
    "verify_instance_coloring",
]


def _check_equal_sides(graph: ArrayMultigraph) -> None:
    if graph.n_left != graph.n_right:
        raise NotRegularError(
            f"regular bipartite multigraph must have equal sides, got "
            f"{graph.n_left} and {graph.n_right}"
        )


def _pairing_from_order(order: np.ndarray) -> np.ndarray:
    """Pair consecutive entries of a by-vertex ordering into an involution."""
    partner = np.empty(order.size, dtype=np.int64)
    partner[order[0::2]] = order[1::2]
    partner[order[1::2]] = order[0::2]
    return partner


def _alternate_mask(partner_left: np.ndarray, partner_right: np.ndarray) -> np.ndarray:
    """Proper 2-colouring of the union of two instance pairings.

    The union decomposes the instances into even cycles alternating left and
    right pairings; orbits of the two-step map ``partner_right ∘
    partner_left`` are the alternate instances of a cycle, found by pointer
    doubling (orbit minima), no Python loop over edges.
    """
    m = partner_left.size
    step = partner_right[partner_left]
    representative = np.minimum(np.arange(m, dtype=np.int64), step)
    jump = step[step]
    window = 2
    while window < m:
        representative = np.minimum(representative, representative[jump])
        jump = jump[jump]
        window *= 2
    # An instance and its left partner sit in complementary orbits of the
    # same cycle; the orbit holding the cycle's smallest instance goes first.
    return representative > representative[partner_left]


def euler_split_instances(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Vectorized Euler split of edge instances with all-even degrees.

    Returns a boolean mask assigning each instance to one of two halves such
    that every vertex's degree is exactly halved.  Pair consecutive instances
    at each vertex (sorted by vertex, blocks start at even offsets because
    all degrees are even); the two pairings form disjoint even cycles over
    the instances, and a proper 2-colouring along each cycle
    (:func:`_alternate_mask`) puts one instance of every pair in each half.

    Raises
    ------
    GraphError
        If some vertex has odd degree (the split would be unbalanced).
    """
    m = left.size
    if m == 0:
        return np.zeros(0, dtype=bool)
    if m % 2 or (np.bincount(left) % 2).any() or (np.bincount(right) % 2).any():
        raise GraphError("cannot Euler-split instances: a vertex has odd degree")
    partner_left = _pairing_from_order(np.argsort(left, kind="stable"))
    partner_right = _pairing_from_order(np.argsort(right, kind="stable"))
    return _alternate_mask(partner_left, partner_right)


def _unique_edges(
    left: np.ndarray, right: np.ndarray, n_right: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sorted distinct-edge view of instance arrays.

    Returns ``(order, first_position, unique_key)`` where ``order`` stably
    sorts instances by ``(left, right)``, ``first_position`` indexes the
    first sorted instance of each distinct edge and ``unique_key`` is the
    sorted distinct ``left * n_right + right`` key array.
    """
    key = left * np.int64(n_right) + right
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    first = np.flatnonzero(
        np.concatenate(([True], sorted_key[1:] != sorted_key[:-1]))
    )
    return order, first, sorted_key[first]


def _perfect_matching_positions(
    unique_key: np.ndarray, n_left: int, n_right: int
) -> np.ndarray:
    """One perfect-matching edge per left vertex, as positions into the
    sorted distinct-edge key array ``unique_key`` (``left * n_right + right``).

    Raises :class:`NoPerfectMatchingError` when some left vertex stays
    unmatched (cannot happen for genuinely regular inputs).
    """
    unique_left = unique_key // n_right
    counts = np.bincount(unique_left, minlength=n_left)
    indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    match_left = hopcroft_karp_csr(indptr, unique_key % n_right, n_right)
    if (match_left < 0).any():
        matched = int((match_left >= 0).sum())
        raise NoPerfectMatchingError(
            f"expected a perfect matching of size {n_left}, found {matched}"
        )
    matched_key = np.arange(n_left, dtype=np.int64) * n_right + match_left
    return np.searchsorted(unique_key, matched_key)


def _peel_perfect_matching(
    left: np.ndarray, right: np.ndarray, n_left: int, n_right: int
) -> tuple[np.ndarray, np.ndarray]:
    """Extract one perfect matching from regular instance arrays.

    Returns ``(keep_mask, removed)``: ``removed`` holds one instance index
    per matched edge (the first copy, for determinism) and ``keep_mask``
    drops exactly those instances.
    """
    order, first, unique_key = _unique_edges(left, right, n_right)
    positions = _perfect_matching_positions(unique_key, n_left, n_right)
    removed = order[first[positions]]
    keep_mask = np.ones(left.size, dtype=bool)
    keep_mask[removed] = False
    return keep_mask, removed


def konig_array_colors(graph: ArrayMultigraph) -> np.ndarray:
    """König 1-factorisation; returns a colour per canonical edge instance.

    ``colors[i]`` is the colour of the ``i``-th instance of
    ``graph.instances()``; parallel copies of an edge receive their colours
    in ascending order, matching how the object pipeline reads colour
    classes back.
    """
    _check_equal_sides(graph)
    degree = graph.regular_degree()
    n_left, n_right = graph.n_left, graph.n_right
    if degree == 0:
        return np.zeros(0, dtype=np.int64)
    mult = graph.mult.copy()
    unique_key = graph.left * np.int64(n_right) + graph.right
    edge_record = np.empty(degree * n_left, dtype=np.int64)
    color_record = np.empty(degree * n_left, dtype=np.int64)
    for color in range(degree):
        live_index = np.flatnonzero(mult > 0)
        positions = _perfect_matching_positions(
            unique_key[live_index], n_left, n_right
        )
        edge_id = live_index[positions]
        mult[edge_id] -= 1
        segment = slice(color * n_left, (color + 1) * n_left)
        edge_record[segment] = edge_id
        color_record[segment] = color
    if (mult != 0).any():
        raise EdgeColoringError("König colouring left uncoloured edges behind")
    # Instances are canonical (copies of an edge consecutive) and each edge's
    # recorded colours appear in ascending round order, so a stable sort of
    # the records by edge id aligns them 1:1 with the instance expansion.
    return color_record[np.argsort(edge_record, kind="stable")]


def euler_array_colors(graph: ArrayMultigraph) -> np.ndarray:
    """Euler-split 1-factorisation; returns a colour per canonical instance.

    Iterative Gabow recursion over instance arrays: even degrees are halved
    by :func:`euler_split_instances` (colour block split in two), odd degrees
    peel one perfect matching into the lowest colour of the block.  Unlike
    :func:`konig_array_colors`, parallel copies of an edge receive colours in
    split order, not ascending order — consumers that need ascending colours
    per edge sort afterwards (``np.lexsort``), as the fair-distribution
    readback does.
    """
    _check_equal_sides(graph)
    degree = graph.regular_degree()
    m = graph.n_edges
    colors = np.empty(m, dtype=np.int64)
    if m == 0:
        return colors
    left, right = graph.instances()
    stack = [(left, right, np.arange(m, dtype=np.int64), degree, 0)]
    while stack:
        lefts, rights, index, deg, base = stack.pop()
        if deg == 1:
            colors[index] = base
            continue
        if deg % 2:
            keep, removed = _peel_perfect_matching(
                lefts, rights, graph.n_left, graph.n_right
            )
            colors[index[removed]] = base
            stack.append((lefts[keep], rights[keep], index[keep], deg - 1, base + 1))
            continue
        # Instances stay sorted by left endpoint through every mask/peel (the
        # canonical expansion is sorted and subsetting preserves order), so
        # the left pairing is just consecutive indices; degrees are even by
        # construction, no re-validation needed.
        partner_left = np.arange(lefts.size, dtype=np.int64) ^ 1
        partner_right = _pairing_from_order(np.argsort(rights, kind="stable"))
        second = _alternate_mask(partner_left, partner_right)
        half = deg // 2
        first = ~second
        stack.append((lefts[first], rights[first], index[first], half, base))
        stack.append((lefts[second], rights[second], index[second], half, base + half))
    return colors


#: Kernels usable by the compiled routing front end, keyed by backend name.
ARRAY_COLORING_KERNELS = {
    "konig-array": konig_array_colors,
    "euler-array": euler_array_colors,
}


def verify_instance_coloring(graph: ArrayMultigraph, colors: np.ndarray) -> None:
    """Vectorized properness check of an instance colouring.

    The multiset condition of :func:`repro.graph.edge_coloring.
    verify_edge_coloring` holds by construction (colours annotate exactly the
    graph's instances); what remains is properness — no colour repeats a
    vertex on either side — checked with two sorted-key passes.

    Raises
    ------
    EdgeColoringError
        On the first violation, naming the offending colour and vertex.
    """
    left, right = graph.instances()
    if colors.shape != left.shape:
        raise EdgeColoringError(
            f"colouring annotates {colors.size} instances, graph has {left.size}"
        )
    for side, vertices, n_vertices in (
        ("left", left, graph.n_left),
        ("right", right, graph.n_right),
    ):
        key = np.sort(colors * np.int64(n_vertices) + vertices)
        duplicate = np.flatnonzero(key[1:] == key[:-1])
        if duplicate.size:
            clash = int(key[duplicate[0]])
            raise EdgeColoringError(
                f"colour {clash // n_vertices} uses {side} vertex "
                f"{clash % n_vertices} more than once"
            )


def coloring_from_instances(
    graph: ArrayMultigraph, colors: np.ndarray
) -> EdgeColoring:
    """Package an instance colouring as an object-level :class:`EdgeColoring`.

    Colour classes come out sorted by left vertex, the same normal form the
    ``"konig"`` backend produces.
    """
    degree = graph.regular_degree()
    left, right = graph.instances()
    order = np.lexsort((left, colors))
    counts = np.bincount(colors, minlength=degree)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    pairs = list(zip(left[order].tolist(), right[order].tolist()))
    classes = [
        pairs[bounds[color]:bounds[color + 1]] for color in range(degree)
    ]
    return EdgeColoring(n_colors=degree, classes=classes)


def konig_array_edge_coloring(graph: BipartiteMultigraph) -> EdgeColoring:
    """Array-kernel König colouring of a dict-based multigraph."""
    array_graph = ArrayMultigraph.from_bipartite(graph)
    return coloring_from_instances(array_graph, konig_array_colors(array_graph))


def euler_array_edge_coloring(graph: BipartiteMultigraph) -> EdgeColoring:
    """Array-kernel Euler-split colouring of a dict-based multigraph."""
    array_graph = ArrayMultigraph.from_bipartite(graph)
    return coloring_from_instances(array_graph, euler_array_colors(array_graph))


#: Object-level wrappers, keyed like COLORING_BACKENDS / ROUTER_BACKENDS.
_ARRAY_BACKENDS = {
    "konig-array": konig_array_edge_coloring,
    "euler-array": euler_array_edge_coloring,
}

for _name, _algorithm in _ARRAY_BACKENDS.items():
    COLORING_BACKENDS.setdefault(_name, _algorithm)
    if _name not in ROUTER_BACKENDS:
        ROUTER_BACKENDS.register(_name, _algorithm)
