"""Euler partitions and degree-halving splits of bipartite multigraphs.

The classical fast edge-colouring algorithms for regular bipartite graphs
(Gabow; Cole–Ost–Schirra; Kapoor–Rizzi; Rizzi — the latter two are the ones
cited in Remark 1 of the paper) rely on *Euler splits*: when every vertex has
even degree, the edge set decomposes into closed trails, and colouring edges
of each trail alternately yields two sub-multigraphs in which every vertex
degree is exactly halved.  Applying the split recursively colours a
``2^k``-regular graph in ``k`` rounds; for general degrees it is combined with
perfect-matching extraction (see :mod:`repro.graph.edge_coloring`).
"""

from __future__ import annotations

from repro.exceptions import GraphError
from repro.graph.multigraph import BipartiteMultigraph

__all__ = ["euler_partition", "euler_split"]


def euler_partition(graph: BipartiteMultigraph) -> list[list[tuple[int, int]]]:
    """Partition the edge instances of ``graph`` into trails.

    Every vertex of odd degree is the endpoint of exactly one open trail; if
    all degrees are even the partition consists of closed trails only.  Each
    trail is returned as a list of ``(left, right)`` edge instances in
    traversal order.
    """
    # Mutable multiplicity map and per-vertex iteration state.
    remaining = {
        (left, right): mult
        for left, right, mult in graph.edges_with_multiplicity()
    }
    left_adj: list[dict[int, int]] = [dict() for _ in range(graph.n_left)]
    right_adj: list[dict[int, int]] = [dict() for _ in range(graph.n_right)]
    for (left, right), mult in remaining.items():
        left_adj[left][right] = mult
        right_adj[right][left] = mult

    def consume(left: int, right: int) -> None:
        remaining[(left, right)] -= 1
        if remaining[(left, right)] == 0:
            del remaining[(left, right)]
        left_adj[left][right] -= 1
        if left_adj[left][right] == 0:
            del left_adj[left][right]
        right_adj[right][left] -= 1
        if right_adj[right][left] == 0:
            del right_adj[right][left]

    def walk_from(start: int, start_is_left: bool) -> list[tuple[int, int]]:
        """Greedily walk unused edges starting at ``start`` until stuck."""
        trail: list[tuple[int, int]] = []
        vertex = start
        is_left = start_is_left
        while True:
            adj = left_adj[vertex] if is_left else right_adj[vertex]
            if not adj:
                return trail
            other = next(iter(adj))
            edge = (vertex, other) if is_left else (other, vertex)
            consume(*edge)
            trail.append(edge)
            vertex = other
            is_left = not is_left

    trails: list[list[tuple[int, int]]] = []

    # Open trails first: start from odd-degree vertices so that they terminate
    # at another odd-degree vertex, never in the middle of an even component.
    for left in range(graph.n_left):
        while graph.left_degree(left) % 2 == 1 and left_adj[left]:
            trail = walk_from(left, True)
            if trail:
                trails.append(trail)
            break
    for right in range(graph.n_right):
        while graph.right_degree(right) % 2 == 1 and right_adj[right]:
            trail = walk_from(right, False)
            if trail:
                trails.append(trail)
            break

    # Greedy walks may still leave odd-degree vertices with unused edges (the
    # first walk from an odd vertex uses only some of them); keep draining.
    changed = True
    while changed:
        changed = False
        for left in range(graph.n_left):
            if left_adj[left]:
                trail = walk_from(left, True)
                if trail:
                    trails.append(trail)
                    changed = True

    if remaining:
        raise GraphError("euler_partition failed to consume every edge instance")
    return trails


def euler_split(
    graph: BipartiteMultigraph,
) -> tuple[BipartiteMultigraph, BipartiteMultigraph]:
    """Split a multigraph in which every vertex has even degree into two halves.

    Returns two multigraphs ``(g1, g2)`` on the same vertex sets such that each
    vertex's degree is exactly half of its degree in ``graph``.  Edges of every
    closed trail of an Euler partition are assigned alternately to the halves.

    Raises
    ------
    GraphError
        If some vertex has odd degree.
    """
    for left in range(graph.n_left):
        if graph.left_degree(left) % 2 != 0:
            raise GraphError(f"left vertex {left} has odd degree; cannot Euler-split")
    for right in range(graph.n_right):
        if graph.right_degree(right) % 2 != 0:
            raise GraphError(f"right vertex {right} has odd degree; cannot Euler-split")

    first = BipartiteMultigraph(graph.n_left, graph.n_right)
    second = BipartiteMultigraph(graph.n_left, graph.n_right)
    for trail in euler_partition(graph):
        # With all degrees even every trail is closed and of even length, so
        # alternating assignment splits each vertex's trail-degree evenly.
        for index, (left, right) in enumerate(trail):
            target = first if index % 2 == 0 else second
            target.add_edge(left, right)

    # Defensive verification: the split must halve every degree exactly.
    for left in range(graph.n_left):
        expected = graph.left_degree(left) // 2
        if first.left_degree(left) != expected or second.left_degree(left) != expected:
            raise GraphError(
                f"euler_split produced unbalanced degrees at left vertex {left}"
            )
    for right in range(graph.n_right):
        expected = graph.right_degree(right) // 2
        if first.right_degree(right) != expected or second.right_degree(right) != expected:
            raise GraphError(
                f"euler_split produced unbalanced degrees at right vertex {right}"
            )
    return first, second
