"""Bipartite multigraphs as parallel integer arrays.

:class:`~repro.graph.multigraph.BipartiteMultigraph` stores multiplicities in
a Python dict, which is convenient for the object-based algorithms but puts a
per-edge Python cost on every pass.  The routing fast path keeps the same
mathematical object — a bipartite multigraph with integer multiplicities — as
three parallel numpy arrays instead: ``left``/``right`` list the *distinct*
edges in canonical ``(left, right)`` lexicographic order and ``mult`` holds
their multiplicities.  Degrees are ``bincount``\\ s, regularity checks are
reductions, and the array colouring kernels in
:mod:`repro.graph.array_coloring` operate on the expanded instance arrays
directly.

The canonical ordering matters beyond aesthetics: the compiled routing front
end promises that the array pipeline and the object pipeline produce
*identical* fair distributions for the same backend, which holds because both
feed the colouring kernels the same canonical arrays —
:meth:`ArrayMultigraph.from_bipartite` and the scatter-built constructors
normalise to the same form.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError, NotRegularError
from repro.graph.multigraph import BipartiteMultigraph
from repro.utils.validation import check_positive_int

__all__ = ["ArrayMultigraph"]


class ArrayMultigraph:
    """A bipartite multigraph held as parallel edge arrays.

    Attributes
    ----------
    n_left / n_right:
        Vertex-class sizes (identical namespaces to
        :class:`~repro.graph.multigraph.BipartiteMultigraph`).
    left / right / mult:
        Distinct edges in ascending ``(left, right)`` order with positive
        multiplicities, as ``int64`` arrays.  Treat them as immutable —
        algorithms copy what they mutate.
    """

    __slots__ = ("n_left", "n_right", "left", "right", "mult")

    def __init__(
        self,
        n_left: int,
        n_right: int,
        left: np.ndarray,
        right: np.ndarray,
        mult: np.ndarray,
    ):
        check_positive_int(n_left, "n_left")
        check_positive_int(n_right, "n_right")
        self.n_left = n_left
        self.n_right = n_right
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.mult = np.asarray(mult, dtype=np.int64)
        if not (self.left.size == self.right.size == self.mult.size):
            raise GraphError("left/right/mult arrays must have equal length")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_instances(
        cls, n_left: int, n_right: int, left: np.ndarray, right: np.ndarray
    ) -> "ArrayMultigraph":
        """Build from edge-instance arrays; repeated pairs accumulate multiplicity."""
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.size and (
            left.min() < 0
            or left.max() >= n_left
            or right.min() < 0
            or right.max() >= n_right
        ):
            raise GraphError(
                f"edge endpoint outside [0, {n_left}) x [0, {n_right})"
            )
        key = left * np.int64(n_right) + right
        ukey, mult = np.unique(key, return_counts=True)
        return cls(
            n_left,
            n_right,
            ukey // n_right,
            ukey % n_right,
            mult.astype(np.int64),
        )

    @classmethod
    def from_bipartite(cls, graph: BipartiteMultigraph) -> "ArrayMultigraph":
        """Canonical array view of a dict-based multigraph."""
        items = graph.edges_with_multiplicity()
        pairs = np.array(
            [(left, right, mult) for left, right, mult in items], dtype=np.int64
        ).reshape(-1, 3)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        pairs = pairs[order]
        return cls(
            graph.n_left, graph.n_right, pairs[:, 0], pairs[:, 1], pairs[:, 2]
        )

    def to_bipartite(self) -> BipartiteMultigraph:
        """Materialise the equivalent dict-based multigraph."""
        graph = BipartiteMultigraph(self.n_left, self.n_right)
        for left, right, mult in zip(
            self.left.tolist(), self.right.tolist(), self.mult.tolist()
        ):
            graph.add_edge(left, right, mult)
        return graph

    # -- accessors ---------------------------------------------------------

    @property
    def n_edges(self) -> int:
        """Total edge instances (counting multiplicities)."""
        return int(self.mult.sum())

    def left_degrees(self) -> np.ndarray:
        """Degree vector (with multiplicity) of the left side."""
        return np.bincount(
            self.left, weights=self.mult, minlength=self.n_left
        ).astype(np.int64)

    def right_degrees(self) -> np.ndarray:
        """Degree vector (with multiplicity) of the right side."""
        return np.bincount(
            self.right, weights=self.mult, minlength=self.n_right
        ).astype(np.int64)

    def is_regular(self) -> bool:
        """True iff every vertex on both sides has the same degree."""
        left_deg = self.left_degrees()
        right_deg = self.right_degrees()
        degree = left_deg[0] if left_deg.size else 0
        return bool((left_deg == degree).all() and (right_deg == degree).all())

    def regular_degree(self) -> int:
        """Common degree of a regular multigraph; raises otherwise."""
        left_deg = self.left_degrees()
        right_deg = self.right_degrees()
        if not self.is_regular():
            raise NotRegularError(
                "graph is not regular: left degrees "
                f"{sorted(set(left_deg.tolist()))}, right degrees "
                f"{sorted(set(right_deg.tolist()))}"
            )
        return int(left_deg[0])

    def instances(self) -> tuple[np.ndarray, np.ndarray]:
        """Edge instances in canonical order (copies of an edge consecutive)."""
        return np.repeat(self.left, self.mult), np.repeat(self.right, self.mult)

    def support_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The simple support graph as CSR ``(indptr, indices)`` over left rows.

        Rows are sorted (the canonical edge order groups by ``left`` with
        ascending ``right``), which :func:`repro.graph.matching.
        hopcroft_karp_csr` relies on only for determinism, not correctness.
        """
        counts = np.bincount(self.left, minlength=self.n_left)
        indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        return indptr, self.right

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrayMultigraph):
            return NotImplemented
        return (
            self.n_left == other.n_left
            and self.n_right == other.n_right
            and np.array_equal(self.left, other.left)
            and np.array_equal(self.right, other.right)
            and np.array_equal(self.mult, other.mult)
        )

    def __repr__(self) -> str:
        return (
            f"ArrayMultigraph(n_left={self.n_left}, n_right={self.n_right}, "
            f"edges={self.n_edges})"
        )
