"""Padding constructions that make bipartite multigraphs regular.

Theorem 1 of the paper colours the list-system graph ``G = (S, S'; E)`` (every
vertex of degree ``Δ1``) with ``n2 >= Δ1`` colours such that every colour class
has exactly ``Δ2 = n1 Δ1 / n2`` edges.  The proof pads ``G`` with

* a set ``V`` of ``n1 - Δ2`` new left vertices joined to ``S'`` by an
  ``(n2, n2 - Δ1)``-biregular graph ``H1``, and
* a mirrored set ``V'`` of new right vertices joined to ``S`` by an
  ``(n2, n2 - Δ1)``-biregular graph ``H2``,

so that the padded graph is ``n2``-regular and König's theorem applies.  This
module provides those constructions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import GraphError, NotRegularError
from repro.graph.array_multigraph import ArrayMultigraph
from repro.graph.multigraph import BipartiteMultigraph
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = [
    "biregular_pad",
    "biregular_pad_arrays",
    "pad_to_regular",
    "pad_to_regular_arrays",
    "PaddedGraph",
    "PaddedArrayGraph",
]


def biregular_pad(
    n_new: int, n_existing: int, new_degree: int, existing_degree: int
) -> BipartiteMultigraph:
    """Construct an ``(new_degree, existing_degree)``-biregular bipartite multigraph.

    The graph has ``n_new`` left vertices of degree ``new_degree`` and
    ``n_existing`` right vertices of degree ``existing_degree``.  Such a graph
    exists iff ``n_new * new_degree == n_existing * existing_degree``; it is
    built by laying out the required edge endpoints of both sides in round-robin
    order and zipping them, which distributes multiplicities as evenly as
    possible (a plain multigraph is sufficient for the König argument).

    A graph with zero left vertices (or zero required degree) is represented by
    an empty multigraph with a single phantom vertex per empty side, because
    :class:`BipartiteMultigraph` requires positive vertex counts; callers treat
    ``n_new == 0`` as "no padding needed" and never consult the result, so
    :func:`pad_to_regular` special-cases it instead of calling this function.
    """
    check_positive_int(n_new, "n_new")
    check_positive_int(n_existing, "n_existing")
    check_non_negative_int(new_degree, "new_degree")
    check_non_negative_int(existing_degree, "existing_degree")
    if n_new * new_degree != n_existing * existing_degree:
        raise GraphError(
            "biregular graph does not exist: "
            f"{n_new} * {new_degree} != {n_existing} * {existing_degree}"
        )
    graph = BipartiteMultigraph(n_new, n_existing)
    total = n_new * new_degree
    # Left endpoint sequence: vertex i repeated new_degree times (blocks);
    # right endpoint sequence: round-robin over existing vertices.  Zipping the
    # two sequences gives every left vertex exactly new_degree incidences and
    # every right vertex exactly existing_degree incidences.
    for slot in range(total):
        left = slot // new_degree if new_degree > 0 else 0
        right = slot % n_existing
        graph.add_edge(left, right)
    # Round-robin is only guaranteed to balance the right side when the block
    # structure and the modulus interact benignly; verify and rebalance if not.
    ok, _, right_deg = graph.is_biregular()
    if not ok or right_deg != existing_degree:
        graph = _rebalanced_pad(n_new, n_existing, new_degree, existing_degree)
    return graph


def _rebalanced_pad(
    n_new: int, n_existing: int, new_degree: int, existing_degree: int
) -> BipartiteMultigraph:
    """Fallback construction pairing explicit endpoint multisets."""
    left_slots = [i for i in range(n_new) for _ in range(new_degree)]
    right_slots = [j for j in range(n_existing) for _ in range(existing_degree)]
    if len(left_slots) != len(right_slots):
        raise GraphError("internal error: endpoint multisets differ in size")
    graph = BipartiteMultigraph(n_new, n_existing)
    for left, right in zip(left_slots, right_slots):
        graph.add_edge(left, right)
    return graph


def biregular_pad_arrays(
    n_new: int, n_existing: int, new_degree: int, existing_degree: int
) -> tuple[np.ndarray, np.ndarray]:
    """Array twin of :func:`biregular_pad`: edge-instance arrays, same multiset.

    Returns ``(left, right)`` instance arrays of the
    ``(new_degree, existing_degree)``-biregular multigraph.  The construction
    mirrors the dict version exactly — round-robin zip first, endpoint-multiset
    fallback when the moduli interact badly — so the two produce identical
    edge multisets, which the compiled routing front end relies on for
    bit-identical plans.
    """
    check_positive_int(n_new, "n_new")
    check_positive_int(n_existing, "n_existing")
    check_non_negative_int(new_degree, "new_degree")
    check_non_negative_int(existing_degree, "existing_degree")
    if n_new * new_degree != n_existing * existing_degree:
        raise GraphError(
            "biregular graph does not exist: "
            f"{n_new} * {new_degree} != {n_existing} * {existing_degree}"
        )
    if new_degree == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    slots = np.arange(n_new * new_degree, dtype=np.int64)
    left = slots // new_degree
    right = slots % n_existing
    right_degrees = np.bincount(right, minlength=n_existing)
    if not (right_degrees == existing_degree).all():
        left = np.repeat(np.arange(n_new, dtype=np.int64), new_degree)
        right = np.repeat(np.arange(n_existing, dtype=np.int64), existing_degree)
    return left, right


@dataclass(frozen=True)
class PaddedGraph:
    """Result of :func:`pad_to_regular`.

    Attributes
    ----------
    graph:
        The padded ``target_degree``-regular bipartite multigraph.  Left
        vertices ``0 .. n_core_left-1`` and right vertices ``0 .. n_core_right-1``
        are the original ("core") vertices; any further vertices are padding.
    n_core_left, n_core_right:
        Sizes of the original vertex classes.
    target_degree:
        The regular degree of the padded graph.
    """

    graph: BipartiteMultigraph
    n_core_left: int
    n_core_right: int
    target_degree: int

    def is_core_edge(self, left: int, right: int) -> bool:
        """True iff both endpoints belong to the original (un-padded) graph."""
        return left < self.n_core_left and right < self.n_core_right


def pad_to_regular(core: BipartiteMultigraph, target_degree: int) -> PaddedGraph:
    """Pad ``core`` (a ``Δ1``-regular bipartite multigraph on equal-sized sides)
    to a ``target_degree``-regular multigraph following the Theorem 1 proof.

    Parameters
    ----------
    core:
        The list-system graph ``G = (S, S'; E)``; it must be regular (every
        vertex of degree ``Δ1``) with ``n_left == n_right == n1``.
    target_degree:
        The number of colours ``n2``; must satisfy ``target_degree >= Δ1`` and
        ``target_degree | n1 * Δ1``.

    Returns
    -------
    PaddedGraph
        The padded regular multigraph together with the bookkeeping needed to
        recognise core edges when reading colour classes back.
    """
    if core.n_left != core.n_right:
        raise NotRegularError(
            "pad_to_regular expects equal-sized sides, got "
            f"{core.n_left} and {core.n_right}"
        )
    n1 = core.n_left
    delta1 = core.regular_degree()
    n2 = check_positive_int(target_degree, "target_degree")
    if n2 < delta1:
        raise GraphError(
            f"target degree {n2} is smaller than the core degree {delta1}"
        )
    if (n1 * delta1) % n2 != 0:
        raise GraphError(
            f"target degree {n2} does not divide n1*Δ1 = {n1 * delta1}; "
            "the list system is not proper"
        )
    delta2 = (n1 * delta1) // n2
    n_pad = n1 - delta2
    pad_degree = n2 - delta1

    if n_pad == 0 or pad_degree == 0:
        # Already n2-regular (n2 == Δ1 forces Δ2 == n1 and vice versa).
        if delta1 != n2:
            raise GraphError(
                "inconsistent padding parameters: no padding vertices required "
                f"but core degree {delta1} != target {n2}"
            )
        return PaddedGraph(core.copy(), n1, n1, n2)

    padded = BipartiteMultigraph(n1 + n_pad, n1 + n_pad)
    for left, right, mult in core.edges_with_multiplicity():
        padded.add_edge(left, right, mult)

    # H1 joins the new left vertices V (degree n2 each) to the original right
    # side S' (degree n2 - Δ1 each); H2 mirrors it on the other side.
    h1 = biregular_pad(n_pad, n1, n2, pad_degree)
    for left, right, mult in h1.edges_with_multiplicity():
        padded.add_edge(n1 + left, right, mult)
    h2 = biregular_pad(n_pad, n1, n2, pad_degree)
    for left, right, mult in h2.edges_with_multiplicity():
        padded.add_edge(right, n1 + left, mult)

    if not padded.is_regular() or padded.regular_degree() != n2:
        raise GraphError("padding failed to produce an n2-regular multigraph")
    return PaddedGraph(padded, n1, n1, n2)


@dataclass(frozen=True)
class PaddedArrayGraph:
    """Result of :func:`pad_to_regular_arrays`; see :class:`PaddedGraph`."""

    graph: ArrayMultigraph
    n_core_left: int
    n_core_right: int
    target_degree: int


def pad_to_regular_arrays(
    core: ArrayMultigraph, target_degree: int
) -> PaddedArrayGraph:
    """Array twin of :func:`pad_to_regular`, producing the same padded multiset.

    The padding parameters, validation messages and the ``H1``/``H2``
    constructions mirror the dict pipeline, so
    ``ArrayMultigraph.from_bipartite(pad_to_regular(g, n2).graph)`` equals the
    graph returned here for the equivalent ``g`` — the property that keeps the
    array and object fair distributions identical per backend.
    """
    if core.n_left != core.n_right:
        raise NotRegularError(
            "pad_to_regular expects equal-sized sides, got "
            f"{core.n_left} and {core.n_right}"
        )
    n1 = core.n_left
    delta1 = core.regular_degree()
    n2 = check_positive_int(target_degree, "target_degree")
    if n2 < delta1:
        raise GraphError(
            f"target degree {n2} is smaller than the core degree {delta1}"
        )
    if (n1 * delta1) % n2 != 0:
        raise GraphError(
            f"target degree {n2} does not divide n1*Δ1 = {n1 * delta1}; "
            "the list system is not proper"
        )
    delta2 = (n1 * delta1) // n2
    n_pad = n1 - delta2
    pad_degree = n2 - delta1

    if n_pad == 0 or pad_degree == 0:
        if delta1 != n2:
            raise GraphError(
                "inconsistent padding parameters: no padding vertices required "
                f"but core degree {delta1} != target {n2}"
            )
        return PaddedArrayGraph(core, n1, n1, n2)

    core_left, core_right = core.instances()
    pad_left, pad_right = biregular_pad_arrays(n_pad, n1, n2, pad_degree)
    padded = ArrayMultigraph.from_instances(
        n1 + n_pad,
        n1 + n_pad,
        np.concatenate((core_left, n1 + pad_left, pad_right)),
        np.concatenate((core_right, pad_right, n1 + pad_left)),
    )
    if not padded.is_regular() or padded.regular_degree() != n2:
        raise GraphError("padding failed to produce an n2-regular multigraph")
    return PaddedArrayGraph(padded, n1, n1, n2)
