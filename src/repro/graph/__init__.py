"""Bipartite multigraph substrate.

This package implements the combinatorial machinery behind Theorem 1 of the
paper: bipartite multigraphs with multiplicity bookkeeping
(:mod:`~repro.graph.multigraph`), maximum/perfect matching
(:mod:`~repro.graph.matching`), Euler partitions and degree-halving splits
(:mod:`~repro.graph.euler`), the padding construction that turns the list
system graph into a regular bipartite multigraph
(:mod:`~repro.graph.regularize`), and proper edge colourings of regular
bipartite multigraphs via König's theorem
(:mod:`~repro.graph.edge_coloring`).
"""

from repro.graph.multigraph import BipartiteMultigraph
from repro.graph.matching import (
    hopcroft_karp,
    maximum_matching,
    perfect_matching_regular,
)
from repro.graph.euler import euler_partition, euler_split
from repro.graph.regularize import biregular_pad, pad_to_regular
from repro.graph.edge_coloring import (
    EdgeColoring,
    konig_edge_coloring,
    euler_split_edge_coloring,
    edge_color,
    verify_edge_coloring,
)
from repro.graph.degree_coloring import edge_color_bounded, embed_into_regular

__all__ = [
    "edge_color_bounded",
    "embed_into_regular",
    "BipartiteMultigraph",
    "hopcroft_karp",
    "maximum_matching",
    "perfect_matching_regular",
    "euler_partition",
    "euler_split",
    "biregular_pad",
    "pad_to_regular",
    "EdgeColoring",
    "konig_edge_coloring",
    "euler_split_edge_coloring",
    "edge_color",
    "verify_edge_coloring",
]
