"""Bipartite multigraph substrate.

This package implements the combinatorial machinery behind Theorem 1 of the
paper: bipartite multigraphs with multiplicity bookkeeping
(:mod:`~repro.graph.multigraph`) and as parallel integer arrays
(:mod:`~repro.graph.array_multigraph`), maximum/perfect matching
(:mod:`~repro.graph.matching`), Euler partitions and degree-halving splits
(:mod:`~repro.graph.euler`), the padding construction that turns the list
system graph into a regular bipartite multigraph
(:mod:`~repro.graph.regularize`), and proper edge colourings of regular
bipartite multigraphs via König's theorem — both the object backends
(:mod:`~repro.graph.edge_coloring`) and the vectorized array kernels
(:mod:`~repro.graph.array_coloring`).
"""

from repro.graph.multigraph import BipartiteMultigraph
from repro.graph.array_multigraph import ArrayMultigraph
from repro.graph.matching import (
    hopcroft_karp,
    hopcroft_karp_csr,
    maximum_matching,
    perfect_matching_regular,
)
from repro.graph.euler import euler_partition, euler_split
from repro.graph.regularize import (
    biregular_pad,
    biregular_pad_arrays,
    pad_to_regular,
    pad_to_regular_arrays,
)
from repro.graph.edge_coloring import (
    EdgeColoring,
    konig_edge_coloring,
    euler_split_edge_coloring,
    edge_color,
    verify_edge_coloring,
)
from repro.graph.array_coloring import (
    euler_array_colors,
    euler_split_instances,
    konig_array_colors,
    verify_instance_coloring,
)
from repro.graph.degree_coloring import edge_color_bounded, embed_into_regular

__all__ = [
    "edge_color_bounded",
    "embed_into_regular",
    "ArrayMultigraph",
    "BipartiteMultigraph",
    "hopcroft_karp",
    "hopcroft_karp_csr",
    "maximum_matching",
    "perfect_matching_regular",
    "euler_partition",
    "euler_split",
    "euler_split_instances",
    "biregular_pad",
    "biregular_pad_arrays",
    "pad_to_regular",
    "pad_to_regular_arrays",
    "EdgeColoring",
    "konig_edge_coloring",
    "euler_split_edge_coloring",
    "konig_array_colors",
    "euler_array_colors",
    "edge_color",
    "verify_edge_coloring",
    "verify_instance_coloring",
]
