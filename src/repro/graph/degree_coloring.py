"""Edge colouring of arbitrary (not necessarily regular) bipartite multigraphs.

König's edge-colouring theorem guarantees a proper colouring with ``Δ``
colours for *any* bipartite multigraph of maximum degree ``Δ``; the regular
case handled by :mod:`repro.graph.edge_coloring` is the special case where
every colour class is a perfect matching.  The general case is needed by the
h-relation router (:mod:`repro.routing.relation`): the traffic graph of an
h-relation has maximum degree ``h`` but is rarely regular.

The reduction is classical: embed the graph into a ``Δ``-regular bipartite
multigraph on max(n_left, n_right) + padding vertices by repeatedly adding
dummy edges between a left and a right vertex of (currently) minimum degree,
colour the regular supergraph, and drop the dummy edges.
"""

from __future__ import annotations

import heapq

from repro.exceptions import EdgeColoringError
from repro.graph.edge_coloring import EdgeColoring, edge_color
from repro.graph.multigraph import BipartiteMultigraph

__all__ = ["edge_color_bounded", "embed_into_regular"]


def embed_into_regular(graph: BipartiteMultigraph) -> tuple[BipartiteMultigraph, int]:
    """Embed ``graph`` into a ``Δ``-regular bipartite multigraph.

    The returned graph has ``max(n_left, n_right)`` vertices per side (the
    original vertices keep their indices) and every vertex has degree exactly
    ``Δ``, the maximum degree of the input.  Added edges are "dummy" edges; the
    caller distinguishes them by comparing multiplicities with the original
    graph.

    Returns
    -------
    (regular_graph, delta)
    """
    delta = graph.max_degree()
    if delta == 0:
        raise EdgeColoringError("cannot embed an empty graph into a regular one")
    size = max(graph.n_left, graph.n_right)
    regular = BipartiteMultigraph(size, size)
    for left, right, mult in graph.edges_with_multiplicity():
        regular.add_edge(left, right, mult)

    # Repeatedly join the lowest-degree left vertex with the lowest-degree
    # right vertex.  Both sides have the same total deficiency, and pairing the
    # two minima never overshoots Δ, so the loop terminates with an exactly
    # Δ-regular multigraph.
    left_heap = [(regular.left_degree(v), v) for v in range(size)]
    right_heap = [(regular.right_degree(v), v) for v in range(size)]
    heapq.heapify(left_heap)
    heapq.heapify(right_heap)

    def pop_deficient(heap, degree_of) -> int | None:
        while heap:
            recorded_degree, vertex = heapq.heappop(heap)
            current = degree_of(vertex)
            if current != recorded_degree:
                heapq.heappush(heap, (current, vertex))
                continue
            if current < delta:
                return vertex
            # Vertex already full: drop it permanently.
        return None

    while True:
        left = pop_deficient(left_heap, regular.left_degree)
        if left is None:
            break
        right = pop_deficient(right_heap, regular.right_degree)
        if right is None:
            raise EdgeColoringError(
                "internal error: left side deficient but right side saturated"
            )
        missing = min(
            delta - regular.left_degree(left), delta - regular.right_degree(right)
        )
        regular.add_edge(left, right, missing)
        heapq.heappush(left_heap, (regular.left_degree(left), left))
        heapq.heappush(right_heap, (regular.right_degree(right), right))

    if not regular.is_regular() or regular.regular_degree() != delta:
        raise EdgeColoringError("embedding failed to produce a Δ-regular multigraph")
    return regular, delta


def edge_color_bounded(
    graph: BipartiteMultigraph, backend: str = "konig"
) -> EdgeColoring:
    """Properly edge-colour an arbitrary bipartite multigraph with ``Δ`` colours.

    The result's colour classes are matchings of the *original* graph (dummy
    edges introduced by the regular embedding are removed); class sizes are in
    general unequal.
    """
    regular, delta = embed_into_regular(graph)
    full_coloring = edge_color(regular, backend=backend)

    # Keep, for every original edge, exactly as many coloured copies as its
    # original multiplicity (the embedding may have added parallel dummies on
    # top of existing edges as well as brand-new pairs).
    remaining = {
        (left, right): mult for left, right, mult in graph.edges_with_multiplicity()
    }
    classes: list[list[tuple[int, int]]] = []
    for edges in full_coloring.classes:
        kept: list[tuple[int, int]] = []
        for edge in edges:
            if remaining.get(edge, 0) > 0:
                kept.append(edge)
                remaining[edge] -= 1
        classes.append(kept)
    if any(count > 0 for count in remaining.values()):
        raise EdgeColoringError("general edge colouring dropped original edges")
    return EdgeColoring(n_colors=delta, classes=classes)
