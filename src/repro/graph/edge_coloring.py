"""Proper edge colourings of regular bipartite multigraphs.

König's edge-colouring theorem states that a bipartite multigraph of maximum
degree ``Δ`` admits a proper edge colouring with ``Δ`` colours; for a
``Δ``-regular bipartite multigraph the colour classes are perfect matchings
(a 1-factorisation).  Theorem 1 of the paper reduces the fair-distribution
problem to exactly this 1-factorisation, and Remark 1 cites the
``O(Δ m)`` algorithm of Schrijver and the near-linear algorithms of
Kapoor–Rizzi/Rizzi as the computational bottleneck.

Two complete backends are provided (both exact, differing only in running
time), selectable by name through :func:`edge_color`:

``"konig"``
    Repeatedly extract a perfect matching with Hopcroft–Karp and remove it.
    Simple and robust; ``O(Δ · E · sqrt(V))``.

``"euler"``
    A Gabow-style recursion: when the degree is even, an Euler split halves the
    degree and the two halves are coloured recursively; when the degree is odd,
    one perfect matching is peeled first.  Matches the spirit of the algorithms
    cited in Remark 1 and is markedly faster for large degrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.registry import ROUTER_BACKENDS
from repro.exceptions import EdgeColoringError
from repro.graph.euler import euler_split
from repro.graph.matching import perfect_matching_regular
from repro.graph.multigraph import BipartiteMultigraph

__all__ = [
    "EdgeColoring",
    "konig_edge_coloring",
    "euler_split_edge_coloring",
    "edge_color",
    "verify_edge_coloring",
    "COLORING_BACKENDS",
]


@dataclass
class EdgeColoring:
    """A proper edge colouring of a regular bipartite multigraph.

    Attributes
    ----------
    n_colors:
        Number of colours used (equals the regular degree of the graph).
    classes:
        ``classes[c]`` is the list of ``(left, right)`` edge instances coloured
        ``c``; for a regular graph each class is a perfect matching.
    """

    n_colors: int
    classes: list[list[tuple[int, int]]] = field(default_factory=list)

    def color_of_class(self, color: int) -> dict[int, int]:
        """Return colour class ``color`` as a ``left -> right`` mapping."""
        return dict(self.classes[color])

    def as_edge_map(self) -> dict[tuple[int, int], list[int]]:
        """Return ``(left, right) -> [colours]`` with one colour per parallel copy."""
        mapping: dict[tuple[int, int], list[int]] = {}
        for color, edges in enumerate(self.classes):
            for edge in edges:
                mapping.setdefault(edge, []).append(color)
        return mapping

    @property
    def n_edges(self) -> int:
        """Total number of coloured edge instances."""
        return sum(len(edges) for edges in self.classes)


def konig_edge_coloring(graph: BipartiteMultigraph) -> EdgeColoring:
    """1-factorise a regular bipartite multigraph by repeated perfect matching."""
    degree = graph.regular_degree()
    working = graph.copy()
    classes: list[list[tuple[int, int]]] = []
    for _ in range(degree):
        matching = perfect_matching_regular(working)
        classes.append(sorted(matching.items()))
        working.remove_matching(matching)
    if working.n_edges != 0:
        raise EdgeColoringError("König colouring left uncoloured edges behind")
    return EdgeColoring(n_colors=degree, classes=classes)


def euler_split_edge_coloring(graph: BipartiteMultigraph) -> EdgeColoring:
    """1-factorise a regular bipartite multigraph by Euler splitting (Gabow style).

    Even degrees are halved with an Euler split and the halves are coloured
    recursively; odd degrees peel a single perfect matching first.
    """
    degree = graph.regular_degree()
    classes = _euler_color_recursive(graph.copy(), degree)
    coloring = EdgeColoring(n_colors=degree, classes=classes)
    if coloring.n_edges != graph.n_edges:
        raise EdgeColoringError("Euler-split colouring lost or duplicated edges")
    return coloring


def _euler_color_recursive(
    graph: BipartiteMultigraph, degree: int
) -> list[list[tuple[int, int]]]:
    if degree == 0:
        return []
    if degree == 1:
        return [list(graph.edge_instances())]
    if degree % 2 == 1:
        matching = perfect_matching_regular(graph)
        graph.remove_matching(matching)
        rest = _euler_color_recursive(graph, degree - 1)
        return [sorted(matching.items())] + rest
    first, second = euler_split(graph)
    return _euler_color_recursive(first, degree // 2) + _euler_color_recursive(
        second, degree // 2
    )


#: Built-in backends; kept as a plain dict for backwards compatibility.  The
#: authoritative table is the ROUTER_BACKENDS registry below — new backends
#: registered there (e.g. by plugins) are dispatchable without touching this
#: module.
COLORING_BACKENDS = {
    "konig": konig_edge_coloring,
    "euler": euler_split_edge_coloring,
}

for _name, _algorithm in COLORING_BACKENDS.items():
    if _name not in ROUTER_BACKENDS:
        ROUTER_BACKENDS.register(_name, _algorithm)


def edge_color(graph: BipartiteMultigraph, backend: str = "konig") -> EdgeColoring:
    """Edge-colour a regular bipartite multigraph with the chosen backend.

    Parameters
    ----------
    graph:
        A regular bipartite multigraph.
    backend:
        Any backend registered in
        :data:`repro.api.registry.ROUTER_BACKENDS`; the built-ins are
        ``"konig"`` and ``"euler"`` (see module docstring).
    """
    if backend not in ROUTER_BACKENDS:
        raise EdgeColoringError(
            f"unknown edge-colouring backend {backend!r}; "
            f"available: {sorted(ROUTER_BACKENDS.names())}"
        )
    algorithm = ROUTER_BACKENDS.get(backend)
    return algorithm(graph)


def verify_edge_coloring(graph: BipartiteMultigraph, coloring: EdgeColoring) -> None:
    """Verify that ``coloring`` is a proper edge colouring of ``graph``.

    Checks that (a) the multiset of coloured edges equals the multiset of edges
    of ``graph`` and (b) within each colour class no vertex appears twice.

    Raises
    ------
    EdgeColoringError
        If any check fails.
    """
    counted: dict[tuple[int, int], int] = {}
    for color, edges in enumerate(coloring.classes):
        lefts_seen: set[int] = set()
        rights_seen: set[int] = set()
        for left, right in edges:
            if left in lefts_seen:
                raise EdgeColoringError(
                    f"colour {color} uses left vertex {left} more than once"
                )
            if right in rights_seen:
                raise EdgeColoringError(
                    f"colour {color} uses right vertex {right} more than once"
                )
            lefts_seen.add(left)
            rights_seen.add(right)
            counted[(left, right)] = counted.get((left, right), 0) + 1

    # Multiset equality in a single counting pass: drain the colouring's
    # counts against the graph's multiplicities; whatever disagrees or
    # survives is exactly the mismatch (no expected/extra dict rebuilds).
    mismatched: dict[tuple[int, int], tuple[int, int]] = {}
    for left, right, mult in graph.edges_with_multiplicity():
        found = counted.pop((left, right), 0)
        if found != mult:
            mismatched[(left, right)] = (mult, found)
    if mismatched or counted:
        raise EdgeColoringError(
            "colouring does not match graph edges; "
            f"(edge: expected, coloured) {mismatched}, unexpected {counted}"
        )
