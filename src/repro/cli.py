"""Command-line interface: run the reproduction experiments from a terminal.

Examples
--------
Run every experiment and print their reports::

    pops-repro run-all

Run a single experiment::

    pops-repro run E1

Route a named permutation family on a chosen network and show the metrics::

    pops-repro route --d 8 --g 4 --family vector_reversal

Route on the vectorized batched simulator backend::

    pops-repro route --d 32 --g 32 --family perfect_shuffle --sim-backend batched

Fan the Theorem 2 sweep across worker processes::

    pops-repro sweep --configs 8:4,16:8,32:32 --workers 4

Shard a single huge configuration's trials across all cores and report the
compiled-schedule cache counters::

    pops-repro sweep --configs 128:128 --trials 16 --shard-trials 2 --cache-stats
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.analysis.experiments import ALL_EXPERIMENTS, run_parallel_sweep
from repro.analysis.metrics import measure_routing
from repro.patterns.families import NAMED_FAMILIES, family_by_name
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``pops-repro`` entry point."""
    parser = argparse.ArgumentParser(
        prog="pops-repro",
        description=(
            "Reproduction of 'Routing Permutations in Partitioned Optical "
            "Passive Stars Networks' (Mei & Rizzi, IPPS 2002)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one experiment by id (E1..E8)")
    run.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS))

    subparsers.add_parser("run-all", help="run every experiment")

    route = subparsers.add_parser(
        "route", help="route one permutation family and print the metrics"
    )
    route.add_argument("--d", type=int, required=True, help="processors per group")
    route.add_argument("--g", type=int, required=True, help="number of groups")
    route.add_argument(
        "--family",
        choices=sorted(NAMED_FAMILIES),
        default="vector_reversal",
        help="named permutation family to route",
    )
    route.add_argument(
        "--backend",
        choices=("konig", "euler"),
        default="konig",
        help="edge-colouring backend for the fair distribution",
    )
    route.add_argument(
        "--sim-backend",
        choices=POPSSimulator.BACKENDS,
        default="reference",
        help="simulator backend (batched = vectorized fast path)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="run the Theorem 2 sweep fanned across worker processes",
    )
    sweep.add_argument(
        "--configs",
        type=_parse_sweep_configs,
        default=None,
        help="comma-separated d:g pairs (e.g. 8:4,16:4); default: the E1 sweep",
    )
    sweep.add_argument("--trials", type=int, default=3, help="trials per configuration")
    sweep.add_argument("--seed", type=int, default=2002, help="RNG seed")
    sweep.add_argument(
        "--backend",
        choices=("konig", "euler"),
        default="konig",
        help="edge-colouring backend for the fair distribution",
    )
    sweep.add_argument(
        "--sim-backend",
        choices=POPSSimulator.BACKENDS,
        default="batched",
        help="simulator backend (batched = vectorized fast path)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 = serial; default: one per core)",
    )
    sweep.add_argument(
        "--shard-trials",
        type=int,
        default=None,
        metavar="K",
        help=(
            "split each configuration's trials into shards of at most K "
            "trials so a single huge configuration saturates all workers; "
            "results are bit-identical to the unsharded sweep"
        ),
    )
    sweep.add_argument(
        "--cache-stats",
        action="store_true",
        help="report compiled-schedule cache hits/misses in the sweep notes",
    )

    subparsers.add_parser("list", help="list experiments and permutation families")
    return parser


def _command_run(experiment: str) -> int:
    result = ALL_EXPERIMENTS[experiment]()
    print(result.to_report())
    return 0 if result.all_pass else 1


def _command_run_all() -> int:
    status = 0
    for experiment_id in sorted(ALL_EXPERIMENTS):
        result = ALL_EXPERIMENTS[experiment_id]()
        print(result.to_report())
        print()
        if not result.all_pass:
            status = 1
    return status


def _command_route(
    d: int, g: int, family: str, backend: str, sim_backend: str = "reference"
) -> int:
    network = POPSNetwork(d, g)
    pi = family_by_name(family, network.n)
    metrics = measure_routing(network, pi, backend=backend, sim_backend=sim_backend)
    print(f"network          : POPS(d={d}, g={g}), n={network.n}")
    print(f"family           : {family}")
    print(f"simulator        : {sim_backend}")
    print(f"slots used       : {metrics.slots}")
    print(f"theorem 2 bound  : {metrics.theorem2_bound}")
    print(f"lower bound      : {metrics.lower_bound}")
    print(f"coupler use/slot : {metrics.mean_coupler_utilisation:.3f}")
    return 0 if metrics.meets_theorem2_bound else 1


def _parse_sweep_configs(spec: str) -> list[tuple[int, int]]:
    """Parse ``"8:4,16:4"`` into [(8, 4), (16, 4)].

    Raises ``argparse.ArgumentTypeError`` on malformed input so argparse
    reports a clean usage error instead of a traceback.
    """
    configs = []
    for part in spec.split(","):
        d_text, sep, g_text = part.partition(":")
        try:
            if not sep:
                raise ValueError
            d, g = int(d_text), int(g_text)
            if d < 1 or g < 1:
                raise ValueError
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected comma-separated d:g pairs of positive integers "
                f"(e.g. 8:4,16:4), got {part!r}"
            ) from None
        configs.append((d, g))
    return configs


def _command_sweep(
    configs: list[tuple[int, int]] | None,
    trials: int,
    seed: int,
    backend: str,
    sim_backend: str,
    workers: int | None,
    shard_trials: int | None = None,
    cache_stats: bool = False,
) -> int:
    kwargs = {}
    if configs is not None:
        kwargs["configs"] = configs
    result = run_parallel_sweep(
        trials=trials,
        seed=seed,
        backend=backend,
        sim_backend=sim_backend,
        max_workers=workers,
        shard_trials=shard_trials,
        cache_stats=cache_stats,
        **kwargs,
    )
    print(result.to_report())
    return 0 if result.all_pass else 1


def _command_list() -> int:
    print("experiments:")
    for experiment_id, runner in sorted(ALL_EXPERIMENTS.items()):
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"  {experiment_id}: {doc}")
    print("permutation families:")
    for name in sorted(NAMED_FAMILIES):
        print(f"  {name}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args.experiment)
        if args.command == "run-all":
            return _command_run_all()
        if args.command == "route":
            return _command_route(
                args.d, args.g, args.family, args.backend, args.sim_backend
            )
        if args.command == "sweep":
            return _command_sweep(
                args.configs,
                args.trials,
                args.seed,
                args.backend,
                args.sim_backend,
                args.workers,
                args.shard_trials,
                args.cache_stats,
            )
        if args.command == "list":
            return _command_list()
    except BrokenPipeError:
        # Reports are routinely piped into head/less; a closed pipe is not an
        # error worth a traceback.  Point stdout at devnull so the interpreter
        # does not fail again flushing on shutdown.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
