"""Command-line interface: run the reproduction experiments from a terminal.

Every subcommand lowers its flags into one validated
:class:`~repro.api.config.RunConfig` (flags map 1:1 to config fields) and
calls the :class:`~repro.api.session.Session` facade — the same entry point
the Python API uses — so the CLI exercises no deprecated code paths.

Examples
--------
Run every experiment and print their reports::

    pops-repro run-all

Run a single experiment::

    pops-repro run E1

Route a named permutation family on a chosen network and show the metrics::

    pops-repro route --d 8 --g 4 --family vector_reversal

Route on the vectorized batched simulator backend, as JSON::

    pops-repro route --d 32 --g 32 --family perfect_shuffle \\
        --sim-backend batched --format json

Let the engine be picked by schedule shape (batched for consuming
permutation schedules, batched-collective for packet-duplicating
broadcast/collective schedules, reference as the last resort)::

    pops-repro route --d 32 --g 32 --sim-backend auto

Route with the array-native front end end to end — vectorized edge colouring
(``konig-array`` / ``euler-array``) feeding the compiled-schedule fast path of
the batched engine, no per-packet Python objects::

    pops-repro route --d 32 --g 32 --backend euler-array --sim-backend batched

Run the collective-scale experiment on the multi-location engine::

    pops-repro run E9

Fan the Theorem 2 sweep across worker processes::

    pops-repro sweep --configs 8:4,16:8,32:32 --workers 4

Shard a single huge configuration's trials across all cores and report the
compiled-schedule cache counters::

    pops-repro sweep --configs 128:128 --trials 16 --shard-trials 2 --cache-stats

Share one persistent compiled-plan store across the pool workers (and any
later process pointed at the same directory — a second sweep, a CI job
restored from cache, a future serving daemon starting warm)::

    pops-repro sweep --configs 64:64 --trials 8 --plan-store .plan-store

Serve live route requests from one warm session, dynamically batching
concurrent same-shape requests onto the megabatch kernels (SIGTERM drains
in-flight batches and exits; ``stats`` requests report per-stage latency
percentiles, routes/sec and the batch-size histogram)::

    pops-repro serve --port 8472 --plan-store .plan-store \\
        --batch-window-ms 2 --max-batch 64

Profile where a run spends its time (``--profile`` prints the per-stage
time/percentage tree; ``--trace-out`` exports the raw spans, in JSONL or
chrome://tracing format — both also work on ``sweep`` and ``run``)::

    pops-repro route --d 32 --g 32 --sim-backend batched --profile
    pops-repro sweep --configs 16:16 --trace-out trace.jsonl
    pops-repro route --d 8 --g 4 --trace-out trace.json --trace-format chrome

Route under an injected fault spec — the clean schedule executes until the
failure bites, then the residual traffic is re-routed online over the
surviving couplers and delivery is verified on the degraded topology
(grammar: ``cB.A`` failed coupler, ``pN`` failed processor, ``gN`` failed
group, ``onset=K``, ``transient=K``)::

    pops-repro route --d 8 --g 4 --faults c1.2,onset=1
    pops-repro route --d 8 --g 4 --faults c1.2,c3.1,transient=2 --format json

Serve with chaos injection — every dispatch (or a ``--fault-rate`` fraction)
executes under the fault spec and is answered through online recovery with
``"degraded": true``::

    pops-repro serve --port 8472 --faults c1.2 --fault-rate 0.5

Fetch a running daemon's metrics (Prometheus-style text exposition by
default, the full JSON stats payload with ``--format json``; ``--retries``
and ``--deadline-ms`` make the fetch resilient to a restarting daemon)::

    pops-repro stats --port 8472
    pops-repro stats --port 8472 --format json
    pops-repro stats --port 8472 --retries 3 --deadline-ms 2000

Inspect, pre-warm, garbage-collect or integrity-check that store::

    pops-repro cache stats --plan-store .plan-store --format json
    pops-repro cache warm --plan-store .plan-store --configs 64:64 --trials 8
    pops-repro cache gc --plan-store .plan-store --max-bytes 268435456
    pops-repro cache verify --plan-store .plan-store
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence

import repro.analysis.experiments  # noqa: F401  (registers E1..E12)
from repro.api.config import RunConfig
from repro.api.registry import (
    EXPERIMENTS,
    ROUTER_BACKENDS,
    SIM_ENGINES,
    ensure_builtin_backends,
)
from repro.api.session import Session
from repro.patterns.families import NAMED_FAMILIES, family_by_name
from repro.pops.topology import POPSNetwork

ensure_builtin_backends()

__all__ = ["main", "build_parser"]


def _add_format_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json = machine-readable)",
    )


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    """``--profile`` / ``--trace-out`` / ``--trace-format``: enable tracing."""
    subparser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "trace the pipeline and print a per-stage time/percentage tree "
            "(merged under a 'profile' key with --format json)"
        ),
    )
    subparser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the recorded trace spans to PATH (implies tracing on)",
    )
    subparser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help=(
            "trace file format: jsonl = one span per line (schema-versioned), "
            "chrome = a chrome://tracing / Perfetto JSON document"
        ),
    )


def _tracer_from_args(args: argparse.Namespace):
    """Install a real tracer when ``--profile``/``--trace-out`` ask for one."""
    if not (getattr(args, "profile", False) or getattr(args, "trace_out", None)):
        return None
    from repro.obs import Tracer, set_tracer

    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def _conclude_tracing(args: argparse.Namespace, tracer) -> dict | None:
    """Disable tracing, write ``--trace-out``, return the profile dict (or None)."""
    if tracer is None:
        return None
    from repro.obs import profile_dict, set_tracer, write_chrome, write_jsonl

    set_tracer(None)
    spans = tracer.finished()
    if args.trace_out:
        if args.trace_format == "chrome":
            write_chrome(spans, args.trace_out)
        else:
            write_jsonl(spans, args.trace_out)
    return profile_dict(spans) if args.profile else None


def _parse_fault_spec(text: str):
    """argparse type for ``--faults``: the :meth:`FaultSpec.parse` grammar."""
    from repro.exceptions import ConfigurationError
    from repro.faults import FaultSpec

    try:
        return FaultSpec.parse(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_plan_store_flag(subparser: argparse.ArgumentParser, required: bool = False) -> None:
    subparser.add_argument(
        "--plan-store",
        default=None,
        required=required,
        metavar="DIR",
        help=(
            "directory of the persistent compiled-plan store shared across "
            "processes and runs (created if absent)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``pops-repro`` entry point."""
    parser = argparse.ArgumentParser(
        prog="pops-repro",
        description=(
            "Reproduction of 'Routing Permutations in Partitioned Optical "
            "Passive Stars Networks' (Mei & Rizzi, IPPS 2002)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one experiment by id (E1..E12)")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS.names()))
    _add_obs_flags(run)
    _add_format_flag(run)

    run_all = subparsers.add_parser("run-all", help="run every experiment")
    _add_format_flag(run_all)

    route = subparsers.add_parser(
        "route", help="route one permutation family and print the metrics"
    )
    route.add_argument("--d", type=int, required=True, help="processors per group")
    route.add_argument("--g", type=int, required=True, help="number of groups")
    route.add_argument(
        "--family",
        choices=sorted(NAMED_FAMILIES),
        default="vector_reversal",
        help="named permutation family to route",
    )
    route.add_argument(
        "--backend",
        choices=ROUTER_BACKENDS.names(),
        default="konig",
        help="edge-colouring backend for the fair distribution",
    )
    route.add_argument(
        "--sim-backend",
        choices=SIM_ENGINES.names(),
        default="reference",
        help=(
            "simulator backend (batched = vectorized fast path, "
            "batched-collective = vectorized multi-location engine for "
            "broadcast/collective schedules, auto = pick by schedule shape)"
        ),
    )
    route.add_argument(
        "--faults",
        type=_parse_fault_spec,
        default=None,
        metavar="SPEC",
        help=(
            "inject a fault spec (cB.A failed coupler, pN failed processor, "
            "gN failed group, onset=K, transient=K; comma-separated) and "
            "recover the residual traffic online over the survivors"
        ),
    )
    _add_plan_store_flag(route)
    _add_obs_flags(route)
    _add_format_flag(route)

    sweep = subparsers.add_parser(
        "sweep",
        help="run the Theorem 2 sweep fanned across worker processes",
    )
    sweep.add_argument(
        "--configs",
        type=_parse_sweep_configs,
        default=None,
        help="comma-separated d:g pairs (e.g. 8:4,16:4); default: the E1 sweep",
    )
    sweep.add_argument("--trials", type=int, default=3, help="trials per configuration")
    sweep.add_argument("--seed", type=int, default=2002, help="RNG seed")
    sweep.add_argument(
        "--backend",
        choices=ROUTER_BACKENDS.names(),
        default="konig",
        help="edge-colouring backend for the fair distribution",
    )
    sweep.add_argument(
        "--sim-backend",
        choices=SIM_ENGINES.names(),
        default="batched",
        help="simulator backend (batched = vectorized fast path)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 = serial; default: one per core)",
    )
    sweep.add_argument(
        "--shard-trials",
        type=int,
        default=None,
        metavar="K",
        help=(
            "split each configuration's trials into shards of at most K "
            "trials so a single huge configuration saturates all workers; "
            "results are bit-identical to the unsharded sweep"
        ),
    )
    sweep.add_argument(
        "--cache-stats",
        action="store_true",
        help=(
            "report compiled-schedule cache counters in the sweep notes "
            "(memory and disk tiers reported separately with --plan-store)"
        ),
    )
    _add_plan_store_flag(sweep)
    _add_obs_flags(sweep)
    _add_format_flag(sweep)

    serve = subparsers.add_parser(
        "serve",
        help=(
            "long-lived routing daemon: concurrent route requests over a "
            "local socket, dynamically batched onto the megabatch kernels"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 = pick an ephemeral port)"
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help=(
            "write the bound port number to PATH once listening (for "
            "scripts starting the daemon with --port 0)"
        ),
    )
    serve.add_argument(
        "--backend",
        choices=ROUTER_BACKENDS.names(),
        default="euler-array",
        help="edge-colouring backend requests use unless they name one",
    )
    serve.add_argument(
        "--sim-backend",
        choices=SIM_ENGINES.names(),
        default="batched",
        help="simulator engine (batched = the megabatch fast path)",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help=(
            "dynamic-batching window: how long to hold a request waiting "
            "for same-shape company (0 disables coalescing)"
        ),
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="B",
        help="close a batch early once this many requests coalesced",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        metavar="N",
        help=(
            "bound of the request queue; beyond it requests are shed with "
            "an explicit queue-full response"
        ),
    )
    serve.add_argument(
        "--faults",
        type=_parse_fault_spec,
        default=None,
        metavar="SPEC",
        help=(
            "chaos testing: inject this fault spec into dispatches; struck "
            "requests are recovered online and answered degraded=true"
        ),
    )
    serve.add_argument(
        "--fault-rate",
        type=float,
        default=1.0,
        metavar="P",
        help=(
            "probability a dispatch is fault-struck (deterministic seeded "
            "stream; only meaningful with --faults; default 1.0)"
        ),
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault-strike stream",
    )
    _add_plan_store_flag(serve)
    _add_format_flag(serve)

    stats = subparsers.add_parser(
        "stats",
        help=(
            "fetch a running daemon's metrics: Prometheus-style text by "
            "default, the full stats payload with --format json"
        ),
    )
    stats.add_argument("--host", default="127.0.0.1", help="daemon address")
    stats.add_argument("--port", type=int, required=True, help="daemon port")
    stats.add_argument(
        "--deadline-ms",
        type=float,
        default=10_000.0,
        metavar="MS",
        help="per-operation deadline; expiry is a structured deadline error",
    )
    stats.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "retry transport failures up to N times with exponential "
            "backoff on a fresh connection (daemon restarts are absorbed)"
        ),
    )
    _add_format_flag(stats)

    cache = subparsers.add_parser(
        "cache",
        help="manage the persistent compiled-plan store (stats/warm/gc/verify)",
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_commands.add_parser(
        "stats",
        help=(
            "blob count, byte total and cumulative disk hit/miss counters "
            "aggregated over every process that used the store"
        ),
    )
    _add_plan_store_flag(cache_stats, required=True)
    _add_format_flag(cache_stats)

    cache_warm = cache_commands.add_parser(
        "warm",
        help=(
            "pre-populate the store by routing the Theorem 2 sweep "
            "permutations for the given configs/seed into it"
        ),
    )
    _add_plan_store_flag(cache_warm, required=True)
    cache_warm.add_argument(
        "--configs",
        type=_parse_sweep_configs,
        default=None,
        help="comma-separated d:g pairs (e.g. 8:4,16:4); default: the E1 sweep",
    )
    cache_warm.add_argument("--trials", type=int, default=3, help="trials per configuration")
    cache_warm.add_argument("--seed", type=int, default=2002, help="RNG seed")
    cache_warm.add_argument(
        "--backend",
        choices=ROUTER_BACKENDS.names(),
        default="konig",
        help="edge-colouring backend for the fair distribution",
    )
    cache_warm.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (default 0 = serial)",
    )
    _add_format_flag(cache_warm)

    cache_gc = cache_commands.add_parser(
        "gc", help="delete oldest blobs until the store fits a byte budget"
    )
    _add_plan_store_flag(cache_gc, required=True)
    cache_gc.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        metavar="N",
        help="byte budget the store must fit after collection",
    )
    _add_format_flag(cache_gc)

    cache_verify = cache_commands.add_parser(
        "verify",
        help=(
            "open and checksum every blob, quarantining corrupt ones "
            "(exit 1 if any blob failed)"
        ),
    )
    _add_plan_store_flag(cache_verify, required=True)
    _add_format_flag(cache_verify)

    subparsers.add_parser("list", help="list experiments and permutation families")
    return parser


def _print_json(payload: object) -> None:
    print(json.dumps(payload, indent=2))


def _command_run(args: argparse.Namespace) -> int:
    session = Session(RunConfig.from_cli_args(args))
    tracer = _tracer_from_args(args)
    result = session.experiment(args.experiment)
    profile = _conclude_tracing(args, tracer)
    if args.format == "json":
        payload = result.to_dict()
        if profile is not None:
            payload["profile"] = profile
        _print_json(payload)
    else:
        print(result.to_report())
        if profile is not None:
            from repro.obs import render_profile

            print()
            print(render_profile(profile))
    return 0 if result.all_pass else 1


def _command_run_all(args: argparse.Namespace) -> int:
    session = Session(RunConfig.from_cli_args(args))
    if args.format == "json":
        results = session.run_all()
        _print_json({eid: result.to_dict() for eid, result in results.items()})
        return 0 if all(r.all_pass for r in results.values()) else 1
    # Text mode streams: print each report as its experiment finishes, so a
    # long run shows progress and a mid-sequence failure leaves the completed
    # reports on stdout.
    status = 0
    for experiment_id in sorted(EXPERIMENTS.names()):
        result = session.experiment(experiment_id)
        print(result.to_report())
        print()
        if not result.all_pass:
            status = 1
    return status


def _command_route(args: argparse.Namespace) -> int:
    config = RunConfig.from_cli_args(args)
    session = Session(config)
    network = POPSNetwork(args.d, args.g)
    pi = family_by_name(args.family, network.n)
    if args.faults is not None:
        return _route_with_faults(args, config, session, network, pi)
    tracer = _tracer_from_args(args)
    metrics = session.route(pi, network=network)
    profile = _conclude_tracing(args, tracer)
    if args.format == "json":
        payload = {
            "network": {"d": args.d, "g": args.g, "n": network.n},
            "family": args.family,
            "config": config.to_dict(),
            "metrics": metrics.to_dict(),
        }
        if profile is not None:
            payload["profile"] = profile
        _print_json(payload)
    else:
        print(f"network          : POPS(d={args.d}, g={args.g}), n={network.n}")
        print(f"family           : {args.family}")
        print(f"simulator        : {config.resolved_sim_backend()}")
        print(f"slots used       : {metrics.slots}")
        print(f"theorem 2 bound  : {metrics.theorem2_bound}")
        print(f"lower bound      : {metrics.lower_bound}")
        print(f"coupler use/slot : {metrics.mean_coupler_utilisation:.3f}")
        if profile is not None:
            from repro.obs import render_profile

            print()
            print(render_profile(profile))
    return 0 if metrics.meets_theorem2_bound else 1


def _route_with_faults(args, config, session, network, pi) -> int:
    """``route --faults``: inject, recover online, verify, report."""
    from repro.exceptions import ConfigurationError, RoutingError

    tracer = _tracer_from_args(args)
    try:
        report = session.route_degraded(pi, network=network, faults=args.faults)
    except (ConfigurationError, RoutingError) as exc:
        _conclude_tracing(args, tracer)
        print(f"route: {exc}", file=sys.stderr)
        return 2
    profile = _conclude_tracing(args, tracer)
    if args.format == "json":
        payload = {
            "network": {"d": args.d, "g": args.g, "n": network.n},
            "family": args.family,
            "faults": args.faults.to_dict(),
            "config": config.to_dict(),
            "report": report.to_dict(),
        }
        if profile is not None:
            payload["profile"] = profile
        _print_json(payload)
    else:
        print(f"network          : POPS(d={args.d}, g={args.g}), n={network.n}")
        print(f"family           : {args.family}")
        print(f"faults           : {args.faults.describe()}")
        print(f"fault triggered  : {report.fault_triggered}")
        print(f"executed slots   : {report.executed_slots}")
        print(f"residual packets : {report.residual_packets}")
        print(f"reroute slots    : {report.reroute_slots}")
        print(f"total slots      : {report.total_slots}")
        print(f"theorem 2 bound  : {report.theorem2_bound}")
        print(f"overhead ratio   : {report.overhead_ratio:.3f}")
        print(f"delivered        : {report.delivered}")
        if profile is not None:
            from repro.obs import render_profile

            print()
            print(render_profile(profile))
    return 0 if report.delivered else 1


def _parse_sweep_configs(spec: str) -> list[tuple[int, int]]:
    """Parse ``"8:4,16:4"`` into [(8, 4), (16, 4)].

    Raises ``argparse.ArgumentTypeError`` on malformed input so argparse
    reports a clean usage error instead of a traceback.
    """
    configs = []
    for part in spec.split(","):
        d_text, sep, g_text = part.partition(":")
        try:
            if not sep:
                raise ValueError
            d, g = int(d_text), int(g_text)
            if d < 1 or g < 1:
                raise ValueError
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected comma-separated d:g pairs of positive integers "
                f"(e.g. 8:4,16:4), got {part!r}"
            ) from None
        configs.append((d, g))
    return configs


def _command_sweep(args: argparse.Namespace) -> int:
    session = Session(RunConfig.from_cli_args(args))
    tracer = _tracer_from_args(args)
    result = session.sweep(args.configs)
    profile = _conclude_tracing(args, tracer)
    if args.format == "json":
        payload = result.to_dict()
        if profile is not None:
            payload["profile"] = profile
        _print_json(payload)
    else:
        print(result.to_report())
        if profile is not None:
            from repro.obs import render_profile

            print()
            print(render_profile(profile))
    return 0 if result.all_pass else 1


def _command_serve(args: argparse.Namespace) -> int:
    """Run the serving daemon until SIGTERM/SIGINT, then drain and report."""
    import signal
    import threading

    from repro.serve.daemon import ServeDaemon

    config = RunConfig(
        router_backend=args.backend,
        sim_backend=args.sim_backend,
        plan_store_path=args.plan_store,
    )
    try:
        daemon = ServeDaemon(
            config,
            host=args.host,
            port=args.port,
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            faults=args.faults,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
        )
        host, port = daemon.start()
    except (OSError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    if args.port_file:
        # Write-then-rename so a polling starter never reads a torn file.
        tmp_path = f"{args.port_file}.tmp"
        with open(tmp_path, "w") as fh:
            fh.write(f"{port}\n")
        os.replace(tmp_path, args.port_file)
    if args.format == "json":
        print(json.dumps({"listening": {"host": host, "port": port}}), flush=True)
    else:
        print(f"listening on {host}:{port} (SIGTERM drains and exits)", flush=True)

    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    stop.wait()
    # Drain: every request accepted before the signal still gets a response.
    daemon.shutdown(drain=True)
    stats = daemon.stats()
    if args.format == "json":
        _print_json(stats)
    else:
        telemetry = stats["telemetry"]
        route_stage = telemetry["stages"]["route"]
        print("serve session summary")
        print(f"requests           : {telemetry['requests']}")
        print(f"responses          : {telemetry['responses']}")
        print(f"shed (queue-full)  : {telemetry['shed']}")
        print(f"degraded (faults)  : {telemetry['degraded']}")
        print(f"batched requests   : {telemetry['batched_requests']}")
        print(f"routes/sec         : {telemetry['routes_per_second']:.1f}")
        print(
            f"route stage        : p50 {route_stage['p50_ms']:.2f} ms, "
            f"p99 {route_stage['p99_ms']:.2f} ms"
        )
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    """Fetch a running daemon's metrics over the wire."""
    from repro.serve.client import ServeClient, ServeError

    try:
        with ServeClient(
            args.host,
            args.port,
            timeout=args.deadline_ms / 1e3,
            retries=args.retries,
        ) as client:
            if args.format == "json":
                _print_json(client.stats())
            else:
                sys.stdout.write(client.metrics())
    except (OSError, ConnectionError, ServeError) as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    return 0


def _print_store_summary(stats: dict[str, object]) -> None:
    for name, value in stats.items():
        print(f"{name:<19}: {value}")


def _command_cache(args: argparse.Namespace) -> int:
    """The ``pops-repro cache`` store-management subcommands."""
    from repro.pops.plan_store import PlanStore

    if args.cache_command == "warm":
        config = RunConfig(
            router_backend=args.backend,
            sim_backend="batched",
            trials=args.trials,
            seed=args.seed,
            workers=args.workers,
            plan_store_path=args.plan_store,
        )
        session = Session(config)
        store = session.cache.store
        before = store.stats()
        result = session.sweep(args.configs)
        after = store.stats()
        payload = {
            "path": after["path"],
            "written": after["writes"] - before["writes"],
            "disk_hits": after["disk_hits"] - before["disk_hits"],
            "entries": after["entries"],
            "total_bytes": after["total_bytes"],
            "all_pass": result.all_pass,
        }
        if args.format == "json":
            _print_json(payload)
        else:
            _print_store_summary(payload)
        return 0 if result.all_pass else 1

    store = PlanStore(args.plan_store)
    if args.cache_command == "stats":
        payload = store.stats()
        if args.format == "json":
            _print_json(payload)
        else:
            _print_store_summary(payload)
        return 0
    if args.cache_command == "gc":
        if args.max_bytes < 0:
            print("--max-bytes must be >= 0", file=sys.stderr)
            return 2
        payload = {"path": str(store.path), **store.gc(args.max_bytes)}
        if args.format == "json":
            _print_json(payload)
        else:
            _print_store_summary(payload)
        return 0
    # verify
    payload = {"path": str(store.path), **store.verify()}
    if args.format == "json":
        _print_json(payload)
    else:
        _print_store_summary(payload)
    return 0 if payload["quarantined"] == 0 else 1


def _command_list() -> int:
    print("experiments:")
    for experiment_id in sorted(EXPERIMENTS.names()):
        runner = EXPERIMENTS.get(experiment_id)
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"  {experiment_id}: {doc}")
    print("permutation families:")
    for name in sorted(NAMED_FAMILIES):
        print(f"  {name}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "run-all":
            return _command_run_all(args)
        if args.command == "route":
            return _command_route(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "stats":
            return _command_stats(args)
        if args.command == "cache":
            return _command_cache(args)
        if args.command == "list":
            return _command_list()
    except BrokenPipeError:
        # Reports are routinely piped into head/less; a closed pipe is not an
        # error worth a traceback.  Point stdout at devnull so the interpreter
        # does not fail again flushing on shutdown.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
