"""Command-line interface: run the reproduction experiments from a terminal.

Examples
--------
Run every experiment and print their reports::

    pops-repro run-all

Run a single experiment::

    pops-repro run E1

Route a named permutation family on a chosen network and show the metrics::

    pops-repro route --d 8 --g 4 --family vector_reversal
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.analysis.metrics import measure_routing
from repro.patterns.families import NAMED_FAMILIES, family_by_name
from repro.pops.topology import POPSNetwork

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``pops-repro`` entry point."""
    parser = argparse.ArgumentParser(
        prog="pops-repro",
        description=(
            "Reproduction of 'Routing Permutations in Partitioned Optical "
            "Passive Stars Networks' (Mei & Rizzi, IPPS 2002)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one experiment by id (E1..E8)")
    run.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS))

    subparsers.add_parser("run-all", help="run every experiment")

    route = subparsers.add_parser(
        "route", help="route one permutation family and print the metrics"
    )
    route.add_argument("--d", type=int, required=True, help="processors per group")
    route.add_argument("--g", type=int, required=True, help="number of groups")
    route.add_argument(
        "--family",
        choices=sorted(NAMED_FAMILIES),
        default="vector_reversal",
        help="named permutation family to route",
    )
    route.add_argument(
        "--backend",
        choices=("konig", "euler"),
        default="konig",
        help="edge-colouring backend for the fair distribution",
    )

    subparsers.add_parser("list", help="list experiments and permutation families")
    return parser


def _command_run(experiment: str) -> int:
    result = ALL_EXPERIMENTS[experiment]()
    print(result.to_report())
    return 0 if result.all_pass else 1


def _command_run_all() -> int:
    status = 0
    for experiment_id in sorted(ALL_EXPERIMENTS):
        result = ALL_EXPERIMENTS[experiment_id]()
        print(result.to_report())
        print()
        if not result.all_pass:
            status = 1
    return status


def _command_route(d: int, g: int, family: str, backend: str) -> int:
    network = POPSNetwork(d, g)
    pi = family_by_name(family, network.n)
    metrics = measure_routing(network, pi, backend=backend)
    print(f"network          : POPS(d={d}, g={g}), n={network.n}")
    print(f"family           : {family}")
    print(f"slots used       : {metrics.slots}")
    print(f"theorem 2 bound  : {metrics.theorem2_bound}")
    print(f"lower bound      : {metrics.lower_bound}")
    print(f"coupler use/slot : {metrics.mean_coupler_utilisation:.3f}")
    return 0 if metrics.meets_theorem2_bound else 1


def _command_list() -> int:
    print("experiments:")
    for experiment_id, runner in sorted(ALL_EXPERIMENTS.items()):
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"  {experiment_id}: {doc}")
    print("permutation families:")
    for name in sorted(NAMED_FAMILIES):
        print(f"  {name}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args.experiment)
    if args.command == "run-all":
        return _command_run_all()
    if args.command == "route":
        return _command_route(args.d, args.g, args.family, args.backend)
    if args.command == "list":
        return _command_list()
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
