"""Fault model tests: specs, degraded views, injected execution, rerouting.

The fault-tolerance contract layered over the clean Theorem 2 pipeline:

* :class:`FaultSpec` is a frozen, normalised, parseable description of what
  fails and when;
* ``network.degrade(spec)`` masks the failed hardware out of every wiring
  predicate and compares unequal to the clean network (cache safety);
* both engines trip on driven failed hardware with the *same*
  :class:`CouplerFailedError` — same slot, same coupler, same residual, same
  message — so recovery code is engine-agnostic;
* the online rerouter delivers every residual packet over the survivors, and
  :func:`route_with_recovery` verifies that delivery end to end.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import RunConfig
from repro.api.session import Session
from repro.cli import main
from repro.exceptions import (
    ConfigurationError,
    CouplerFailedError,
    RoutingError,
    TransmitterError,
)
from repro.faults import (
    DegradedNetwork,
    FaultSpec,
    full_reroute,
    reroute_residual,
    route_on_survivors,
    route_with_recovery,
)
from repro.pops.engine import BatchedSimulator
from repro.pops.packet import Packet
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import Coupler, POPSNetwork
from repro.routing.permutation_router import PermutationRouter, theorem2_slot_bound
from repro.utils.permutations import random_permutation


class TestFaultSpec:
    def test_normalises_sorted_and_deduped(self):
        spec = FaultSpec(
            failed_couplers=((2, 1), (1, 2), (2, 1)),
            failed_processors=(5, 3, 5),
            failed_groups=(1, 1),
        )
        assert spec.failed_couplers == ((1, 2), (2, 1))
        assert spec.failed_processors == (3, 5)
        assert spec.failed_groups == (1,)

    def test_specs_are_hashable_and_compare_by_value(self):
        a = FaultSpec(failed_couplers=((1, 2), (2, 1)))
        b = FaultSpec(failed_couplers=((2, 1), (1, 2)))
        assert a == b
        assert hash(a) == hash(b)

    def test_negative_onset_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(onset_slot=-1)

    def test_nonpositive_transient_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(transient_slots=0)

    def test_active_window_permanent(self):
        spec = FaultSpec(failed_couplers=((1, 1),), onset_slot=2)
        assert [spec.active_at(s) for s in range(5)] == [
            False, False, True, True, True,
        ]

    def test_active_window_transient(self):
        spec = FaultSpec(
            failed_couplers=((1, 1),), onset_slot=1, transient_slots=2
        )
        assert [spec.active_at(s) for s in range(5)] == [
            False, True, True, False, False,
        ]

    def test_group_expansion_masks_both_directions(self):
        spec = FaultSpec(failed_groups=(1,))
        pairs = spec.failed_coupler_pairs(3)
        assert (1, 0) in pairs and (0, 1) in pairs and (1, 1) in pairs
        assert (2, 0) not in pairs

    def test_failed_coupler_ids_match_engine_encoding(self):
        spec = FaultSpec(failed_couplers=((2, 1),))
        assert spec.failed_coupler_ids(4) == frozenset({2 * 4 + 1})

    def test_validate_for_rejects_absent_hardware(self, square_network):
        with pytest.raises(ConfigurationError):
            FaultSpec(failed_couplers=((5, 0),)).validate_for(square_network)
        with pytest.raises(ConfigurationError):
            FaultSpec(failed_processors=(99,)).validate_for(square_network)
        with pytest.raises(ConfigurationError):
            FaultSpec(failed_groups=(7,)).validate_for(square_network)

    def test_parse_grammar_roundtrip(self):
        spec = FaultSpec.parse("c1.2, c3.1, p5, g2, onset=1, transient=3")
        assert spec.failed_couplers == ((1, 2), (3, 1))
        assert spec.failed_processors == (5,)
        assert spec.failed_groups == (2,)
        assert spec.onset_slot == 1
        assert spec.transient_slots == 3

    @pytest.mark.parametrize("bad", ["x9", "c1", "c1.", "p", "onset=x", "qq=3"])
    def test_parse_rejects_bad_tokens(self, bad):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse(bad)

    def test_random_is_seed_deterministic(self, square_network):
        a = FaultSpec.random(square_network, coupler_fraction=0.3, seed=7)
        b = FaultSpec.random(square_network, coupler_fraction=0.3, seed=7)
        c = FaultSpec.random(square_network, coupler_fraction=0.3, seed=8)
        assert a == b
        assert a != c or a.is_empty

    def test_random_never_touches_the_hub_group(self):
        network = POPSNetwork(4, 5)
        spec = FaultSpec.random(network, coupler_fraction=1.0, seed=3)
        for b, a in spec.failed_couplers:
            assert b != 0 and a != 0
        # The draw is therefore capped at (g-1)^2 couplers.
        assert len(spec.failed_couplers) == (network.g - 1) ** 2

    def test_describe_mentions_every_component(self):
        spec = FaultSpec.parse("c1.2,p3,g2,onset=4,transient=2")
        text = spec.describe()
        assert "c(1,2)" in text and "3" in text and "slot 4" in text
        assert "transient 2" in text


class TestDegradedNetwork:
    def test_degrade_masks_wiring_predicates(self, square_network):
        degraded = square_network.degrade(FaultSpec(failed_couplers=((1, 2),)))
        dead = Coupler(1, 2)
        assert degraded.coupler_failed(dead)
        assert dead not in degraded.couplers()
        sender = degraded.processors_in_group(2)[0]
        receiver = degraded.processors_in_group(1)[0]
        assert not degraded.can_transmit(sender, dead)
        assert not degraded.can_receive(receiver, dead)
        assert dead not in degraded.transmit_couplers(sender)
        assert dead not in degraded.receive_couplers(receiver)

    def test_failed_processor_loses_all_wiring(self, square_network):
        degraded = square_network.degrade(FaultSpec(failed_processors=(4,)))
        assert degraded.processor_failed(4)
        assert degraded.transmit_couplers(4) == []
        assert degraded.receive_couplers(4) == []

    def test_degraded_view_compares_unequal_to_clean(self, square_network):
        spec = FaultSpec(failed_couplers=((1, 2),))
        degraded = square_network.degrade(spec)
        assert degraded != square_network
        assert hash(degraded) != hash(square_network)
        assert degraded == square_network.degrade(spec)
        # Degraded and clean networks must never alias in dict/cache keys.
        lookup = {square_network: "clean", degraded: "degraded"}
        assert len(lookup) == 2

    def test_nested_degradation_rejected(self, square_network):
        degraded = square_network.degrade(FaultSpec(failed_couplers=((1, 2),)))
        with pytest.raises(ConfigurationError):
            degraded.degrade(FaultSpec(failed_couplers=((2, 1),)))

    def test_degrade_requires_a_spec(self, square_network):
        with pytest.raises(ConfigurationError):
            square_network.degrade({"failed_couplers": [(1, 2)]})

    def test_clean_network_predicates_default_false(self, square_network):
        assert square_network.fault_spec is None
        assert not square_network.coupler_failed(Coupler(1, 2))
        assert not square_network.processor_failed(0)

    def test_schedule_validation_proves_fault_avoidance(self, square_network):
        """A schedule driving a failed coupler fails *static* validation."""
        pi = [(i + 3) % square_network.n for i in range(square_network.n)]
        plan = PermutationRouter(square_network).route(pi)
        driven = plan.schedule.slots[0].transmissions[0].coupler
        spec = FaultSpec(
            failed_couplers=((driven.dest_group, driven.source_group),)
        )
        degraded_plan = PermutationRouter(square_network).route(pi)
        degraded_plan.schedule.network = square_network.degrade(spec)
        with pytest.raises(TransmitterError):
            degraded_plan.schedule.validate()


def _injected_outcomes(network, plan, spec):
    """Run both engines under ``spec``; return their CouplerFailedErrors."""
    reference_error = batched_error = None
    try:
        POPSSimulator(network).run_reference(
            plan.schedule, plan.packets, faults=spec
        )
    except CouplerFailedError as exc:
        reference_error = exc
    engine = BatchedSimulator(network)
    compiled = engine.compile(plan.schedule, plan.packets)
    try:
        engine.execute(compiled, faults=spec)
    except CouplerFailedError as exc:
        batched_error = exc
    return reference_error, batched_error


class TestEngineFaultParity:
    """Fault-aware execution is bit-identical between the engines."""

    @given(seed=st.integers(min_value=0, max_value=2**20),
           onset=st.integers(min_value=0, max_value=2))
    @settings(max_examples=15, deadline=None)
    def test_random_specs_trip_identically(self, seed, onset):
        network = POPSNetwork(4, 4)
        pi = random_permutation(network.n, random.Random(seed))
        plan = PermutationRouter(network).route(pi)
        spec = FaultSpec.random(
            network, coupler_fraction=0.25, seed=seed, onset_slot=onset
        )
        ref, bat = _injected_outcomes(network, plan, spec)
        assert (ref is None) == (bat is None)
        if ref is not None:
            assert bat.slot == ref.slot
            assert bat.coupler == ref.coupler
            assert bat.residual == ref.residual
            assert str(bat) == str(ref)

    def test_failed_driven_coupler_trips_with_residual(self):
        network = POPSNetwork(8, 4)
        pi = [(i + 8) % network.n for i in range(network.n)]
        plan = PermutationRouter(network).route(pi)
        driven = plan.schedule.slots[1].transmissions[0].coupler
        spec = FaultSpec(
            failed_couplers=((driven.dest_group, driven.source_group),),
            onset_slot=1,
        )
        ref, bat = _injected_outcomes(network, plan, spec)
        assert ref is not None and bat is not None
        assert ref.slot == 1
        assert ref.coupler == driven
        # The residual snapshot is taken at the START of the failing slot:
        # every packet short of its destination, mapped to its live holder.
        assert ref.residual == bat.residual
        assert all(
            holder != packet.destination for packet, holder in ref.residual.items()
        )
        assert "failed under the active fault spec" in str(ref)

    def test_failed_processor_parity(self):
        network = POPSNetwork(4, 4)
        pi = [(i + 4) % network.n for i in range(network.n)]
        plan = PermutationRouter(network).route(pi)
        sender = plan.schedule.slots[0].transmissions[0].sender
        spec = FaultSpec(failed_processors=(sender,))
        ref, bat = _injected_outcomes(network, plan, spec)
        assert ref is not None and bat is not None
        assert str(ref) == str(bat)
        assert "failed processor" in str(ref)

    def test_onset_after_schedule_end_never_trips(self):
        network = POPSNetwork(4, 4)
        pi = [(i + 4) % network.n for i in range(network.n)]
        plan = PermutationRouter(network).route(pi)
        spec = FaultSpec(failed_couplers=((1, 1),), onset_slot=10_000)
        ref, bat = _injected_outcomes(network, plan, spec)
        assert ref is None and bat is None

    def test_transient_window_that_misses_never_trips(self):
        # A heavily-driven coupler whose transient fault window opens only
        # after the schedule has finished never intersects any drive — while
        # the same coupler under a window covering the schedule does trip.
        # That isolates the *window* arithmetic as the thing under test.
        network = POPSNetwork(8, 4)
        pi = [(i + 8) % network.n for i in range(network.n)]
        plan = PermutationRouter(network).route(pi)
        driven = plan.schedule.slots[0].transmissions[0].coupler
        pair = (driven.dest_group, driven.source_group)
        n_slots = len(plan.schedule.slots)
        missing = FaultSpec(
            failed_couplers=(pair,), onset_slot=n_slots, transient_slots=3
        )
        ref, bat = _injected_outcomes(network, plan, missing)
        assert ref is None and bat is None
        covering = FaultSpec(
            failed_couplers=(pair,), onset_slot=0, transient_slots=n_slots
        )
        ref, bat = _injected_outcomes(network, plan, covering)
        assert ref is not None and bat is not None

    def test_empty_spec_is_a_no_op(self):
        network = POPSNetwork(4, 4)
        pi = [(i + 4) % network.n for i in range(network.n)]
        plan = PermutationRouter(network).route(pi)
        ref, bat = _injected_outcomes(network, plan, FaultSpec())
        assert ref is None and bat is None


class TestOnlineReroute:
    @pytest.mark.parametrize("shape", [(3, 3), (8, 4), (2, 8), (4, 5)])
    def test_survivor_routing_delivers_on_degraded_networks(self, shape, rng):
        d, g = shape
        network = POPSNetwork(d, g)
        spec = FaultSpec.random(network, coupler_fraction=0.25, seed=d * 31 + g)
        degraded = network.degrade(spec)
        pi = random_permutation(network.n, rng)
        packets = [Packet(i, pi[i]) for i in range(network.n) if pi[i] != i]
        schedule = route_on_survivors(degraded, packets)
        schedule.validate()  # statically proves no failed hardware is used
        result = POPSSimulator(degraded).run_reference(schedule, packets)
        result.verify_permutation_delivery(packets)

    def test_packet_on_failed_processor_is_unroutable(self, square_network):
        degraded = square_network.degrade(FaultSpec(failed_processors=(0,)))
        with pytest.raises(RoutingError, match="failed processor"):
            route_on_survivors(degraded, [Packet(0, 5)])
        with pytest.raises(RoutingError, match="destined for"):
            route_on_survivors(degraded, [Packet(5, 0)])

    def test_disconnecting_faults_raise_routing_error(self):
        # g=2 with c(1,0) dead: nothing can reach group 1 from group 0,
        # directly or through any intermediate.
        network = POPSNetwork(2, 2)
        degraded = network.degrade(FaultSpec(failed_couplers=((1, 0),)))
        with pytest.raises(RoutingError, match="unroutable"):
            route_on_survivors(degraded, [Packet(0, 2)])

    def test_reroute_residual_counts_overhead_against_clean_bound(self):
        network = POPSNetwork(8, 4)
        degraded = network.degrade(FaultSpec(failed_couplers=((1, 2),)))
        residual = {Packet(16, 8): 16, Packet(17, 9): 17}
        plan = reroute_residual(degraded, residual)
        assert plan.clean_bound == theorem2_slot_bound(8, 4)
        assert plan.n_slots >= 1
        assert plan.overhead_ratio == plan.n_slots / plan.clean_bound

    def test_reroute_residual_skips_already_delivered(self):
        network = POPSNetwork(4, 4)
        degraded = network.degrade(FaultSpec(failed_couplers=((1, 2),)))
        plan = reroute_residual(degraded, {Packet(3, 7): 7})
        assert plan.packets == ()
        assert plan.n_slots == 0


class TestRouteWithRecovery:
    def test_fault_path_delivers_and_reports(self):
        network = POPSNetwork(8, 4)
        pi = [(i + 8) % network.n for i in range(network.n)]
        spec = FaultSpec(failed_couplers=((1, 0),), onset_slot=1)
        report = route_with_recovery(network, pi, spec)
        assert report.fault_triggered
        assert report.delivered
        assert report.executed_slots == 1
        assert report.total_slots == report.executed_slots + report.reroute_slots
        assert report.overhead_ratio == report.total_slots / report.theorem2_bound
        payload = report.to_dict()
        assert payload["delivered"] is True
        assert payload["overhead_ratio"] == report.overhead_ratio

    def test_untriggered_fault_reports_clean_run(self):
        network = POPSNetwork(4, 4)
        pi = [(i + 4) % network.n for i in range(network.n)]
        spec = FaultSpec(failed_couplers=((1, 1),), onset_slot=10_000)
        report = route_with_recovery(network, pi, spec)
        assert not report.fault_triggered
        assert report.delivered
        assert report.residual_packets == 0
        assert report.total_slots == report.clean_slots

    def test_full_reroute_control_arm_delivers(self):
        network = POPSNetwork(8, 4)
        pi = [(i + 8) % network.n for i in range(network.n)]
        spec = FaultSpec(failed_couplers=((1, 0),))
        plan = full_reroute(network, pi, spec)
        assert len(plan.packets) == network.n
        result = POPSSimulator(plan.network).run_reference(
            plan.schedule, list(plan.packets)
        )
        result.verify_permutation_delivery(list(plan.packets))

    def test_spec_naming_absent_hardware_rejected(self, square_network):
        with pytest.raises(ConfigurationError):
            route_with_recovery(
                square_network,
                list(range(square_network.n)),
                FaultSpec(failed_couplers=((9, 9),)),
            )


class TestSessionAndCLI:
    def test_session_route_degraded(self):
        session = Session(RunConfig())
        spec = FaultSpec(failed_couplers=((1, 0),), onset_slot=1)
        report = session.route_degraded(
            [(i + 8) % 32 for i in range(32)], d=8, g=4, faults=spec
        )
        assert report.delivered
        assert report.fault_triggered

    def test_session_route_degraded_requires_fault_spec(self):
        session = Session(RunConfig())
        with pytest.raises(ConfigurationError):
            session.route_degraded(
                list(range(9)), d=3, g=3, faults="c1.0"
            )

    def test_cli_route_with_faults_exits_zero(self, capsys):
        status = main(
            ["route", "--d", "6", "--g", "3", "--faults", "c1.2,onset=1"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "delivered        : True" in out

    def test_cli_rejects_malformed_fault_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["route", "--d", "6", "--g", "3", "--faults", "zz"])

    def test_experiment_e10_passes(self):
        session = Session(RunConfig())
        result = session.experiment("E10")
        assert result.all_pass

    def test_experiment_e11_passes(self):
        session = Session(RunConfig())
        result = session.experiment("E11")
        assert result.all_pass
