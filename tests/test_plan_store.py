"""Tests for the persistent content-addressed compiled-plan store.

Pinned here:

* Exact round-trip: a plan written to the store and loaded back is
  bit-identical — every array's values *and* dtype — for both
  ``CompiledSchedule`` and ``CompiledScheduleBatch``, over
  hypothesis-generated permutations (broadcast batch planes included).
* The two-tier cache: memory miss → disk probe → promote, write-through on
  fill, counters that keep the tiers separate, and the historical three-key
  ``stats()`` shape when no store is attached.
* Robustness: corrupted blobs are quarantined and fall back to recompile,
  schema mismatches refuse to open, undigestible keys skip the disk tier.
* Concurrency: N processes racing writes to one key never produce a torn
  blob (atomic rename isolation), and readers racing GC see clean misses,
  never crashes.
* The CLI surface: ``pops-repro cache stats/warm/gc/verify`` and the
  ``sweep --plan-store --cache-stats`` note distinguishing memory from disk
  hits.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import routing_cache_key, routing_cache_key_batch
from repro.api import RunConfig, Session
from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.pops.engine import CompiledSchedule, CompiledScheduleBatch, ScheduleCache
from repro.pops.plan_store import PlanStore, plan_key_digest
from repro.pops.topology import POPSNetwork
from repro.routing.permutation_router import PermutationRouter
from repro.utils.permutations import random_permutation

#: Array fields of the compiled dataclasses (network/packets/scalars excluded).
_ARRAY_FIELDS = [
    f.name
    for f in dataclasses.fields(CompiledSchedule)
    if f.name not in ("network", "packets", "n_slots")
]
_BATCH_ARRAY_FIELDS = [
    f.name
    for f in dataclasses.fields(CompiledScheduleBatch)
    if f.name not in ("network", "n_batch", "n_slots")
]


def _assert_bit_identical(a, b, fields):
    for name in fields:
        va, vb = getattr(a, name), getattr(b, name)
        assert va.dtype == vb.dtype, f"{name}: {va.dtype} != {vb.dtype}"
        assert va.shape == vb.shape, f"{name}: {va.shape} != {vb.shape}"
        assert np.array_equal(va, vb), name


def _compiled_plan(network: POPSNetwork, seed: int) -> tuple[CompiledSchedule, tuple]:
    pi = np.asarray(random_permutation(network.n, random.Random(seed)), dtype=np.int64)
    compiled = PermutationRouter(network, backend="euler-array").route_compiled(pi)
    return compiled, routing_cache_key("euler-array", network, pi)


# ---------------------------------------------------------------------------
# Round-trip bit-identity
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(
        st.tuples(
            st.sampled_from([(1, 3), (2, 2), (3, 3), (4, 4), (6, 3), (4, 8)]),
            st.randoms(use_true_random=False),
        )
    )
    def test_schedule_round_trip_bit_identical(self, tmp_path_factory, case):
        """A stored CompiledSchedule loads back value- and dtype-identical."""
        (d, g), rng = case
        store = PlanStore(tmp_path_factory.mktemp("store"))
        network = POPSNetwork(d, g)
        pi = np.asarray(random_permutation(network.n, rng), dtype=np.int64)
        compiled = PermutationRouter(network, backend="euler-array").route_compiled(pi)
        key = routing_cache_key("euler-array", network, pi)
        assert store.put(key, compiled)
        loaded = store.get(key)
        assert isinstance(loaded, CompiledSchedule)
        assert loaded.network == network
        assert loaded.n_slots == compiled.n_slots
        assert loaded.packets == compiled.packets
        _assert_bit_identical(compiled, loaded, _ARRAY_FIELDS)

    @settings(max_examples=10, deadline=None)
    @given(
        st.tuples(
            st.sampled_from([(2, 2), (3, 3), (4, 4), (6, 3)]),
            st.integers(min_value=1, max_value=5),
            st.randoms(use_true_random=False),
        )
    )
    def test_batch_round_trip_bit_identical(self, tmp_path_factory, case):
        """A stored CompiledScheduleBatch loads back bit-identical, with its
        broadcast planes restored as broadcasts (one row on disk)."""
        (d, g), n_batch, rng = case
        store = PlanStore(tmp_path_factory.mktemp("store"))
        network = POPSNetwork(d, g)
        pis = np.stack(
            [
                np.asarray(random_permutation(network.n, rng), dtype=np.int64)
                for _ in range(n_batch)
            ]
        )
        batch = PermutationRouter(network, backend="euler-array").route_compiled_batch(pis)
        key = routing_cache_key_batch("euler-array", network, pis)
        assert store.put(key, batch)
        loaded = store.get(key)
        assert isinstance(loaded, CompiledScheduleBatch)
        assert loaded.network == network
        assert loaded.n_batch == batch.n_batch
        assert loaded.n_slots == batch.n_slots
        _assert_bit_identical(batch, loaded, _BATCH_ARRAY_FIELDS)
        # The shared initial placement survives as a broadcast, not B copies.
        if batch.initial_loc.strides[0] == 0:
            assert loaded.initial_loc.strides[0] == 0

    def test_round_trip_executes_identically(self, tmp_path):
        """The loaded plan drives the engine to the same final locations."""
        from repro.pops.engine import BatchedSimulator

        network = POPSNetwork(8, 4)
        compiled, key = _compiled_plan(network, seed=7)
        store = PlanStore(tmp_path)
        store.put(key, compiled)
        loaded = store.get(key)
        engine = BatchedSimulator(network)
        assert np.array_equal(engine.execute(loaded), engine.execute(compiled))
        engine.verify_locations(loaded, engine.execute(loaded))


# ---------------------------------------------------------------------------
# Key digests
# ---------------------------------------------------------------------------


class TestKeyDigest:
    def test_digest_is_stable_and_distinct(self):
        network = POPSNetwork(4, 4)
        pi = np.arange(16, dtype=np.int64)
        key = routing_cache_key("konig", network, pi)
        assert plan_key_digest(key) == plan_key_digest(key)
        other = routing_cache_key("konig", network, np.roll(pi, 1))
        assert plan_key_digest(key) != plan_key_digest(other)
        # Batch and single keys never collide (disjoint key shapes).
        batch_key = routing_cache_key_batch("konig", network, pi[None, :])
        assert plan_key_digest(key) != plan_key_digest(batch_key)

    def test_encoding_is_prefix_free(self):
        assert plan_key_digest(("ab",)) != plan_key_digest(("a", "b"))
        assert plan_key_digest((1, 23)) != plan_key_digest((12, 3))
        assert plan_key_digest(("1",)) != plan_key_digest((1,))
        assert plan_key_digest((b"x",)) != plan_key_digest(("x",))
        assert plan_key_digest((True,)) != plan_key_digest((1,))
        assert plan_key_digest((None,)) != plan_key_digest((0,))
        assert plan_key_digest(((1, 2), 3)) != plan_key_digest((1, (2, 3)))

    def test_unsupported_keys_are_not_persistable(self, tmp_path):
        assert plan_key_digest(("x", object())) is None
        assert plan_key_digest(frozenset({1})) is None
        store = PlanStore(tmp_path)
        network = POPSNetwork(4, 4)
        compiled, _ = _compiled_plan(network, seed=1)
        assert not store.put(("bad", object()), compiled)
        assert store.get(("bad", object())) is None
        assert store.stats()["entries"] == 0


# ---------------------------------------------------------------------------
# Two-tier ScheduleCache
# ---------------------------------------------------------------------------


class TestTwoTierCache:
    def test_stats_shape_without_store_is_unchanged(self):
        cache = ScheduleCache()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_disk_promote_and_counters(self, tmp_path):
        network = POPSNetwork(4, 4)
        compiled, key = _compiled_plan(network, seed=3)
        PlanStore(tmp_path).put(key, compiled)

        cache = ScheduleCache(store=PlanStore(tmp_path))
        loaded = cache.get(key)  # memory cold, disk warm
        assert loaded is not None
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "entries": 1,
            "disk_hits": 1,
            "disk_misses": 0,
        }
        assert cache.get(key) is loaded  # promoted: second access is memory
        assert cache.stats()["hits"] == 1

    def test_write_through_and_full_miss(self, tmp_path):
        network = POPSNetwork(4, 4)
        compiled, key = _compiled_plan(network, seed=4)
        cache = ScheduleCache(store=PlanStore(tmp_path))
        assert cache.get(key) is None
        assert cache.stats() == {
            "hits": 0,
            "misses": 1,
            "entries": 0,
            "disk_hits": 0,
            "disk_misses": 1,
        }
        cache.put(key, compiled)
        # A fresh cache over the same directory sees the write-through.
        fresh = ScheduleCache(store=PlanStore(tmp_path))
        assert fresh.get(key) is not None
        assert fresh.stats()["disk_hits"] == 1

    def test_oversized_plan_still_written_through(self, tmp_path):
        """A plan too big for the memory bound still reaches the disk tier."""
        network = POPSNetwork(8, 4)
        compiled, key = _compiled_plan(network, seed=5)
        cache = ScheduleCache(max_bytes=16, store=PlanStore(tmp_path))
        cache.put(key, compiled)
        assert len(cache) == 0  # memory tier rejected it
        assert PlanStore(tmp_path).get(key) is not None

    def test_session_attaches_store_from_config(self, tmp_path):
        config = RunConfig(
            sim_backend="batched", plan_store_path=str(tmp_path / "store")
        )
        session = Session(config)
        assert session.cache.store is not None
        network = POPSNetwork(8, 4)
        pi = random_permutation(network.n, random.Random(11))
        first = session.route(pi, network=network)
        warm = Session(config)  # fresh process stand-in: cold memory, warm disk
        assert warm.route(pi, network=network) == first
        stats = warm.cache_stats()
        assert stats["disk_hits"] == 1
        assert stats["hits"] == 0 and stats["misses"] == 0


# ---------------------------------------------------------------------------
# Corruption, quarantine, schema
# ---------------------------------------------------------------------------


class TestCorruption:
    def _blob_paths(self, store: PlanStore):
        return sorted(store.path.glob("objects/*/*.npz"))

    def test_corrupted_blob_quarantined_and_recompiled(self, tmp_path):
        network = POPSNetwork(4, 4)
        config = RunConfig(
            sim_backend="batched", plan_store_path=str(tmp_path)
        )
        pi = random_permutation(network.n, random.Random(13))
        expected = Session(config).route(pi, network=network)

        store = PlanStore(tmp_path)
        [blob] = self._blob_paths(store)
        blob.write_bytes(b"not a zip archive at all")

        # The poisoned blob must fall back to recompile, not crash.
        session = Session(config)
        assert session.route(pi, network=network) == expected
        stats = session.cache_stats()
        assert stats["disk_hits"] == 0 and stats["disk_misses"] == 1
        # The poisoned blob moved to quarantine/, and the recompile's
        # write-through replaced it with a fresh valid one.
        assert list(store.path.glob("quarantine/*.npz"))
        [fresh] = self._blob_paths(store)
        assert fresh.name == blob.name
        assert PlanStore(tmp_path).get(
            routing_cache_key(config.router_backend, network, np.asarray(pi, dtype=np.int64))
        ) is not None

    def test_truncated_blob_quarantined(self, tmp_path):
        network = POPSNetwork(4, 4)
        compiled, key = _compiled_plan(network, seed=17)
        store = PlanStore(tmp_path)
        store.put(key, compiled)
        [blob] = self._blob_paths(store)
        blob.write_bytes(blob.read_bytes()[:100])
        assert store.get(key) is None
        assert store.stats()["quarantine_entries"] == 1
        # A rewrite restores service under the same key.
        store.put(key, compiled)
        assert store.get(key) is not None

    def test_checksum_detects_bit_flip(self, tmp_path):
        """A valid zip with altered array bytes fails the content checksum.

        Re-saving the members recomputes the zip layer's own per-member
        CRCs, so the flipped bit in the ``data`` buffer can only be caught
        by the store's embedded content checksum.
        """
        network = POPSNetwork(4, 4)
        compiled, key = _compiled_plan(network, seed=19)
        store = PlanStore(tmp_path)
        store.put(key, compiled)
        [blob] = self._blob_paths(store)
        with np.load(blob, allow_pickle=False) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        arrays["data"] = arrays["data"].copy()
        arrays["data"][-1] ^= 1
        with open(blob, "wb") as fh:
            np.savez(fh, **arrays)
        assert store.get(key) is None
        assert store.stats()["quarantine_entries"] == 1

    def test_verify_sweeps_corruption(self, tmp_path):
        network = POPSNetwork(4, 4)
        store = PlanStore(tmp_path)
        for seed in (1, 2, 3):
            compiled, key = _compiled_plan(network, seed=seed)
            store.put(key, compiled)
        blobs = self._blob_paths(store)
        blobs[0].write_bytes(b"garbage")
        report = store.verify()
        assert report == {"checked": 3, "ok": 2, "quarantined": 1}
        assert store.verify() == {"checked": 2, "ok": 2, "quarantined": 0}

    def test_schema_mismatch_refuses_to_open(self, tmp_path):
        PlanStore(tmp_path)
        (tmp_path / "store.json").write_text('{"schema": 999}\n')
        with pytest.raises(ConfigurationError, match="schema"):
            PlanStore(tmp_path)

    def test_gc_oldest_first(self, tmp_path):
        network = POPSNetwork(4, 4)
        store = PlanStore(tmp_path)
        keys = []
        for seed in (1, 2, 3):
            compiled, key = _compiled_plan(network, seed=seed)
            store.put(key, compiled)
            keys.append(key)
        blobs = {k: store._blob_path(plan_key_digest(k)) for k in keys}
        # Age the first blob so mtime ordering is deterministic.
        old = blobs[keys[0]]
        os.utime(old, ns=(0, 0))
        sizes = {k: b.stat().st_size for k, b in blobs.items()}
        budget = sizes[keys[1]] + sizes[keys[2]]
        report = store.gc(budget)
        assert report["removed"] == 1 and report["kept"] == 2
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is not None
        assert store.get(keys[2]) is not None

    def test_standing_budget_collects_after_writes(self, tmp_path):
        network = POPSNetwork(4, 4)
        compiled, key = _compiled_plan(network, seed=1)
        nbytes = None
        store = PlanStore(tmp_path)
        store.put(key, compiled)
        nbytes = store.stats()["total_bytes"]
        budgeted = PlanStore(tmp_path, max_bytes=nbytes)
        for seed in (2, 3, 4):
            c, k = _compiled_plan(network, seed=seed)
            budgeted.put(k, c)
        assert budgeted.stats()["total_bytes"] <= nbytes


# ---------------------------------------------------------------------------
# Multi-process torture: racing writers, readers during GC
# ---------------------------------------------------------------------------

#: One shared cache key all racing writers publish under.  The writers
#: deliberately violate the key contract (each writes a *different* valid
#: plan) precisely to prove rename isolation: a reader may observe any
#: candidate, but never a torn mixture of two.
_RACE_KEY = ("plan-store-race-test", 8, 4)

_TORTURE_D, _TORTURE_G = 8, 4


def _candidate_plan(seed: int) -> CompiledSchedule:
    network = POPSNetwork(_TORTURE_D, _TORTURE_G)
    pi = np.asarray(random_permutation(network.n, random.Random(seed)), dtype=np.int64)
    return PermutationRouter(network, backend="euler-array").route_compiled(pi)


def _race_writer(args: tuple[str, int, int]) -> int:
    """Worker: repeatedly (re)write this worker's candidate under the key."""
    store_path, worker_seed, rounds = args
    store = PlanStore(store_path)
    plan = _candidate_plan(worker_seed)
    written = 0
    for _ in range(rounds):
        written += bool(store.put(_RACE_KEY, plan))
    return written


def _race_reader(args: tuple[str, int, tuple[int, ...]]) -> tuple[int, int]:
    """Worker: hammer get() on the contended key; every observed plan must be
    exactly one of the candidates (checked via its destination array)."""
    store_path, rounds, candidate_seeds = args
    store = PlanStore(store_path)
    candidates = [_candidate_plan(s).pk_destination for s in candidate_seeds]
    loads = torn = 0
    for _ in range(rounds):
        plan = store.get(_RACE_KEY)
        if plan is None:
            continue
        loads += 1
        if not any(np.array_equal(plan.pk_destination, c) for c in candidates):
            torn += 1
    return loads, torn


def _gc_reader(args: tuple[str, int, int]) -> int:
    """Worker: read random keys while the parent loops GC; crashes bubble up
    through the pool, clean misses do not."""
    store_path, rounds, n_keys = args
    store = PlanStore(store_path)
    network = POPSNetwork(_TORTURE_D, _TORTURE_G)
    rng = random.Random(os.getpid())
    hits = 0
    for _ in range(rounds):
        seed = rng.randrange(n_keys)
        pi = np.asarray(
            random_permutation(network.n, random.Random(seed)), dtype=np.int64
        )
        key = routing_cache_key("euler-array", network, pi)
        hits += store.get(key) is not None
    return hits


def _pool(max_workers: int):
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=max_workers)


class TestConcurrency:
    def _run_tasks(self, fn, tasks, max_workers):
        from concurrent.futures.process import BrokenProcessPool

        try:
            with _pool(max_workers) as executor:
                return list(executor.map(fn, tasks))
        except (OSError, BrokenProcessPool):  # pragma: no cover - sandboxed hosts
            pytest.skip("platform cannot spawn worker processes")

    def test_racing_writers_never_produce_a_torn_blob(self, tmp_path):
        """N processes rewriting one key: the final blob (and every blob a
        concurrent reader observed) is a complete candidate, never a mix."""
        writer_seeds = (101, 202, 303, 404)
        rounds = 6
        writer_tasks = [(str(tmp_path), seed, rounds) for seed in writer_seeds]
        reader_tasks = [(str(tmp_path), 40, writer_seeds) for _ in range(2)]

        from concurrent.futures.process import BrokenProcessPool

        try:
            with _pool(len(writer_tasks) + len(reader_tasks)) as executor:
                writer_futures = [
                    executor.submit(_race_writer, task) for task in writer_tasks
                ]
                reader_futures = [
                    executor.submit(_race_reader, task) for task in reader_tasks
                ]
                writes = [f.result() for f in writer_futures]
                reads = [f.result() for f in reader_futures]
        except (OSError, BrokenProcessPool):  # pragma: no cover - sandboxed hosts
            pytest.skip("platform cannot spawn worker processes")

        assert sum(writes) == len(writer_seeds) * rounds  # every write landed
        for _, torn in reads:
            assert torn == 0
        # The survivor is one intact candidate, bit-identical to its source.
        store = PlanStore(tmp_path)
        final = store.get(_RACE_KEY)
        assert final is not None
        matches = [
            seed
            for seed in writer_seeds
            if np.array_equal(final.pk_destination, _candidate_plan(seed).pk_destination)
        ]
        assert len(matches) == 1
        _assert_bit_identical(final, _candidate_plan(matches[0]), _ARRAY_FIELDS)
        assert store.stats()["quarantine_entries"] == 0

    def test_readers_survive_concurrent_gc(self, tmp_path):
        """Readers racing a GC-and-refill loop observe misses, never errors."""
        n_keys = 6
        network = POPSNetwork(_TORTURE_D, _TORTURE_G)
        store = PlanStore(tmp_path)

        def refill():
            for seed in range(n_keys):
                pi = np.asarray(
                    random_permutation(network.n, random.Random(seed)),
                    dtype=np.int64,
                )
                store.put(routing_cache_key("euler-array", network, pi), _candidate_plan(seed))

        refill()
        reader_tasks = [(str(tmp_path), 30, n_keys) for _ in range(3)]

        from concurrent.futures.process import BrokenProcessPool

        try:
            with _pool(len(reader_tasks)) as executor:
                futures = [executor.submit(_gc_reader, task) for task in reader_tasks]
                # Churn: wipe everything, rebuild, repeatedly, while they read.
                for _ in range(5):
                    store.gc(0)
                    refill()
                hits = [f.result() for f in futures]
        except (OSError, BrokenProcessPool):  # pragma: no cover - sandboxed hosts
            pytest.skip("platform cannot spawn worker processes")

        # No reader crashed (result() would re-raise); the store is intact.
        assert len(hits) == len(reader_tasks)
        assert store.verify()["quarantined"] == 0


# ---------------------------------------------------------------------------
# Sweep notes and config plumbing
# ---------------------------------------------------------------------------


class TestPlumbing:
    def test_config_validates_plan_store_path(self):
        assert RunConfig(plan_store_path=None).plan_store_path is None
        with pytest.raises(ValueError, match="plan_store_path"):
            RunConfig(plan_store_path="")
        with pytest.raises(ValueError, match="plan_store_path"):
            RunConfig(plan_store_path=123)

    def test_config_round_trips_plan_store_path(self, tmp_path):
        config = RunConfig(plan_store_path=str(tmp_path))
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_sweep_note_distinguishes_memory_from_disk(self, tmp_path):
        config = RunConfig(
            sim_backend="batched",
            workers=0,
            trials=2,
            cache_stats=True,
            plan_store_path=str(tmp_path),
        )
        cold = Session(config).sweep([(4, 4), (8, 4)])
        assert cold.notes["schedule cache"] == (
            "0 memory hits / 0 disk hits / 2 misses"
        )
        warm = Session(config).sweep([(4, 4), (8, 4)])
        assert warm.notes["schedule cache"] == (
            "0 memory hits / 2 disk hits / 0 misses"
        )

    def test_sweep_note_without_store_keeps_historical_format(self):
        config = RunConfig(sim_backend="batched", workers=0, trials=2, cache_stats=True)
        result = Session(config).sweep([(4, 4)])
        assert result.notes["schedule cache"] == "0 hits / 1 misses"


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCacheCli:
    def test_sweep_then_stats_reports_disk_hits(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        argv = [
            "sweep", "--configs", "4:4", "--trials", "2", "--workers", "0",
            "--plan-store", store_dir, "--format", "json",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0  # the warm run
        capsys.readouterr()
        assert main(["cache", "stats", "--plan-store", store_dir, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["entries"] == 1
        assert payload["disk_hits"] > 0
        assert payload["writes"] == 1

    def test_warm_then_verify_and_gc(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(
            [
                "cache", "warm", "--plan-store", store_dir,
                "--configs", "4:4,8:4", "--trials", "2", "--format", "json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["written"] == 2 and payload["all_pass"]

        assert main(["cache", "verify", "--plan-store", store_dir, "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["checked"] == 2 and report["quarantined"] == 0

        assert main(
            ["cache", "gc", "--plan-store", store_dir, "--max-bytes", "0", "--format", "json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed"] == 2 and report["kept"] == 0

    def test_verify_exits_nonzero_on_corruption(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        network = POPSNetwork(4, 4)
        store = PlanStore(store_dir)
        compiled, key = _compiled_plan(network, seed=23)
        store.put(key, compiled)
        [blob] = sorted(store_dir.glob("objects/*/*.npz"))
        blob.write_bytes(b"junk")
        assert main(["cache", "verify", "--plan-store", str(store_dir)]) == 1

    def test_route_accepts_plan_store_flag(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        argv = [
            "route", "--d", "4", "--g", "4", "--sim-backend", "batched",
            "--plan-store", store_dir, "--format", "json",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        capsys.readouterr()
        assert PlanStore(store_dir).stats()["disk_hits"] == 1
