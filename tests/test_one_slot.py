"""Unit tests for repro.routing.one_slot (Fact 1 / Gravenstreter–Melhem)."""

from __future__ import annotations

import pytest

from repro.exceptions import NotRoutableInOneSlotError
from repro.patterns.families import figure3_permutation, group_cyclic_shift
from repro.pops.packet import Packet
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.routing.one_slot import OneSlotRouter, is_one_slot_routable, one_slot_schedule
from repro.utils.permutations import random_permutation


class TestCharacterisation:
    def test_identity_is_one_slot_routable(self, small_network):
        assert is_one_slot_routable(small_network, list(range(small_network.n)))

    def test_d1_everything_is_routable(self, rng):
        network = POPSNetwork(1, 6)
        for _ in range(10):
            assert is_one_slot_routable(network, random_permutation(6, rng))

    def test_group_shift_is_routable(self):
        network = POPSNetwork(3, 4)
        # Shift every packet one group forward keeping the local index: each
        # (source group, destination group) pair carries d packets, so it is
        # NOT single-slot routable for d > 1 ...
        assert not is_one_slot_routable(network, group_cyclic_shift(12, 3))

    def test_local_rotation_is_routable(self):
        # Send processor (h, i) to (h + i mod g, i): every group pair used once.
        network = POPSNetwork(3, 3)
        pi = [((h + i) % 3) * 3 + i for h in range(3) for i in range(3)]
        assert is_one_slot_routable(network, pi)

    def test_figure3_is_not_routable(self, square_network):
        assert not is_one_slot_routable(square_network, figure3_permutation())

    def test_paper_conflict_example(self):
        # The paper: two packets of one group with the same destination group
        # make one slot insufficient.
        network = POPSNetwork(2, 2)
        pi = [2, 3, 0, 1]
        assert not is_one_slot_routable(network, pi)


class TestOneSlotSchedule:
    def test_schedule_for_partial_packet_set(self):
        network = POPSNetwork(2, 3)
        packets = [Packet(0, 5), Packet(2, 1), Packet(4, 3)]
        schedule = one_slot_schedule(network, packets)
        assert schedule.n_slots == 1
        POPSSimulator(network).route_and_verify(schedule, packets)

    def test_rejects_two_packets_from_same_processor(self):
        network = POPSNetwork(2, 3)
        with pytest.raises(NotRoutableInOneSlotError, match="send two"):
            one_slot_schedule(network, [Packet(0, 5), Packet(0, 3)])

    def test_rejects_two_packets_to_same_processor(self):
        network = POPSNetwork(2, 3)
        with pytest.raises(NotRoutableInOneSlotError, match="receive two"):
            one_slot_schedule(network, [Packet(0, 5), Packet(2, 5)])

    def test_rejects_coupler_collision(self):
        network = POPSNetwork(2, 3)
        # Both packets go from group 0 to group 2.
        with pytest.raises(NotRoutableInOneSlotError, match="coupler"):
            one_slot_schedule(network, [Packet(0, 4), Packet(1, 5)])


class TestOneSlotRouter:
    def test_routes_routable_permutation(self):
        network = POPSNetwork(3, 3)
        pi = [((h + i) % 3) * 3 + i for h in range(3) for i in range(3)]
        router = OneSlotRouter(network)
        assert router.can_route(pi)
        schedule = router.route(pi)
        assert schedule.n_slots == 1
        packets = [Packet(source=i, destination=pi[i]) for i in range(9)]
        POPSSimulator(network).route_and_verify(schedule, packets)

    def test_rejects_unroutable_permutation(self, square_network):
        router = OneSlotRouter(square_network)
        with pytest.raises(NotRoutableInOneSlotError):
            router.route(figure3_permutation())

    def test_d1_router_handles_any_permutation(self, rng):
        network = POPSNetwork(1, 5)
        router = OneSlotRouter(network)
        pi = random_permutation(5, rng)
        schedule = router.route(pi)
        packets = [Packet(source=i, destination=pi[i]) for i in range(5)]
        POPSSimulator(network).route_and_verify(schedule, packets)
