"""Unit tests for repro.pops.schedule (static validation of slot programs)."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConfigurationError,
    CouplerConflictError,
    ReceiverConflictError,
    TransmitterError,
)
from repro.pops.packet import Packet
from repro.pops.schedule import Reception, RoutingSchedule, SlotProgram, Transmission
from repro.pops.topology import POPSNetwork


@pytest.fixture
def net() -> POPSNetwork:
    return POPSNetwork(2, 3)


class TestSlotProgram:
    def test_add_helpers(self, net):
        slot = SlotProgram()
        packet = Packet(0, 3)
        slot.add_transmission(0, net.coupler(1, 0), packet)
        slot.add_reception(3, net.coupler(1, 0))
        assert slot.transmissions == [Transmission(0, net.coupler(1, 0), packet, True)]
        assert slot.receptions == [Reception(3, net.coupler(1, 0))]

    def test_packets_moved_counts_couplers(self, net):
        slot = SlotProgram()
        packet = Packet(0, 3)
        slot.add_transmission(0, net.coupler(0, 0), packet, consume=False)
        slot.add_transmission(0, net.coupler(1, 0), packet, consume=False)
        assert slot.n_packets_moved == 2
        assert slot.couplers_used() == {net.coupler(0, 0), net.coupler(1, 0)}

    def test_validate_accepts_legal_slot(self, net):
        slot = SlotProgram()
        slot.add_transmission(0, net.coupler(1, 0), Packet(0, 2))
        slot.add_reception(2, net.coupler(1, 0))
        slot.validate(net)

    def test_validate_rejects_wrong_transmitter(self, net):
        slot = SlotProgram()
        # Processor 0 is in group 0 but the coupler is fed by group 1.
        slot.add_transmission(0, net.coupler(0, 1), Packet(0, 2))
        with pytest.raises(TransmitterError):
            slot.validate(net)

    def test_validate_rejects_coupler_conflict(self, net):
        slot = SlotProgram()
        slot.add_transmission(0, net.coupler(1, 0), Packet(0, 2))
        slot.add_transmission(1, net.coupler(1, 0), Packet(1, 3))
        with pytest.raises(CouplerConflictError):
            slot.validate(net)

    def test_validate_allows_broadcast_of_same_packet(self, net):
        slot = SlotProgram()
        packet = Packet(0, 0)
        for dest_group in net.groups():
            slot.add_transmission(0, net.coupler(dest_group, 0), packet, consume=False)
        slot.validate(net)

    def test_validate_rejects_two_packets_from_one_sender(self, net):
        slot = SlotProgram()
        slot.add_transmission(0, net.coupler(0, 0), Packet(0, 2))
        slot.add_transmission(0, net.coupler(1, 0), Packet(1, 3))
        with pytest.raises(CouplerConflictError):
            slot.validate(net)

    def test_validate_rejects_wrong_receiver(self, net):
        slot = SlotProgram()
        slot.add_transmission(0, net.coupler(1, 0), Packet(0, 2))
        # Processor 0 is in group 0; coupler c(1, 0) feeds group 1 only.
        slot.add_reception(0, net.coupler(1, 0))
        with pytest.raises(TransmitterError):
            slot.validate(net)

    def test_validate_rejects_double_read(self, net):
        slot = SlotProgram()
        slot.add_transmission(0, net.coupler(1, 0), Packet(0, 2))
        slot.add_transmission(4, net.coupler(1, 2), Packet(4, 3))
        slot.add_reception(2, net.coupler(1, 0))
        slot.add_reception(2, net.coupler(1, 2))
        with pytest.raises(ReceiverConflictError):
            slot.validate(net)

    def test_validate_rejects_unknown_processor(self, net):
        slot = SlotProgram()
        slot.add_transmission(99, net.coupler(1, 0), Packet(0, 2))
        with pytest.raises(ConfigurationError):
            slot.validate(net)

    def test_validate_rejects_unknown_coupler(self, net):
        from repro.pops.topology import Coupler

        slot = SlotProgram()
        slot.transmissions.append(Transmission(0, Coupler(7, 0), Packet(0, 2), True))
        with pytest.raises(ConfigurationError):
            slot.validate(net)


class TestRoutingSchedule:
    def test_new_slot_appends(self, net):
        schedule = RoutingSchedule(network=net)
        first = schedule.new_slot()
        second = schedule.new_slot()
        assert schedule.n_slots == 2
        assert schedule.slots == [first, second]

    def test_len_and_iter(self, net):
        schedule = RoutingSchedule(network=net)
        schedule.new_slot()
        assert len(schedule) == 1
        assert list(schedule) == schedule.slots

    def test_extend_same_network(self, net):
        a = RoutingSchedule(network=net)
        a.new_slot()
        b = RoutingSchedule(network=net)
        b.new_slot()
        b.new_slot()
        a.extend(b)
        assert a.n_slots == 3

    def test_extend_different_network_rejected(self, net):
        a = RoutingSchedule(network=net)
        b = RoutingSchedule(network=POPSNetwork(3, 3))
        with pytest.raises(ConfigurationError):
            a.extend(b)

    def test_concatenate(self, net):
        parts = []
        for _ in range(3):
            schedule = RoutingSchedule(network=net)
            schedule.new_slot()
            parts.append(schedule)
        combined = RoutingSchedule.concatenate(net, parts, description="joined")
        assert combined.n_slots == 3
        assert combined.description == "joined"

    def test_packets_collects_all(self, net):
        schedule = RoutingSchedule(network=net)
        slot = schedule.new_slot()
        slot.add_transmission(0, net.coupler(1, 0), Packet(0, 2))
        slot.add_transmission(2, net.coupler(0, 1), Packet(2, 1))
        assert schedule.packets() == {Packet(0, 2), Packet(2, 1)}

    def test_couplers_used_per_slot(self, net):
        schedule = RoutingSchedule(network=net)
        slot = schedule.new_slot()
        slot.add_transmission(0, net.coupler(1, 0), Packet(0, 2))
        schedule.new_slot()
        assert schedule.couplers_used_per_slot() == [1, 0]

    def test_validate_runs_every_slot(self, net):
        schedule = RoutingSchedule(network=net)
        schedule.new_slot()
        bad = schedule.new_slot()
        bad.add_transmission(0, net.coupler(0, 1), Packet(0, 2))
        with pytest.raises(TransmitterError):
            schedule.validate()
