"""Unit and property-based tests for repro.graph.euler."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.euler import euler_partition, euler_split
from repro.graph.multigraph import BipartiteMultigraph


def random_even_regular_multigraph(n: int, half_degree: int, seed: int) -> BipartiteMultigraph:
    """A ``2 * half_degree``-regular bipartite multigraph built from random matchings."""
    rng = random.Random(seed)
    graph = BipartiteMultigraph(n, n)
    for _ in range(2 * half_degree):
        permutation = list(range(n))
        rng.shuffle(permutation)
        for left, right in enumerate(permutation):
            graph.add_edge(left, right)
    return graph


class TestEulerPartition:
    def test_covers_every_edge_instance(self):
        graph = BipartiteMultigraph.from_edges(
            2, 2, [(0, 0), (0, 1), (1, 0), (1, 1), (0, 0), (0, 0)]
        )
        trails = euler_partition(graph)
        edges = [edge for trail in trails for edge in trail]
        assert len(edges) == graph.n_edges
        counted: dict[tuple[int, int], int] = {}
        for edge in edges:
            counted[edge] = counted.get(edge, 0) + 1
        for left, right, mult in graph.edges_with_multiplicity():
            assert counted[(left, right)] == mult

    def test_empty_graph_gives_no_trails(self):
        graph = BipartiteMultigraph(2, 2)
        assert euler_partition(graph) == []

    def test_trails_are_walks(self):
        graph = random_even_regular_multigraph(5, 2, seed=3)
        for trail in euler_partition(graph):
            # Consecutive edges share the vertex reached by the previous edge.
            for (l1, r1), (l2, r2) in zip(trail, trail[1:]):
                assert r1 == r2 or l1 == l2 or r1 == r2 or l2 == l1
                # Walk alternates sides: the shared endpoint alternates between
                # right and left vertices.
        # The partition consumed every edge (checked by euler_partition itself).

    def test_does_not_mutate_input(self):
        graph = random_even_regular_multigraph(4, 1, seed=1)
        before = graph.n_edges
        euler_partition(graph)
        assert graph.n_edges == before


class TestEulerSplit:
    def test_rejects_odd_degrees(self):
        graph = BipartiteMultigraph.from_edges(2, 2, [(0, 0), (1, 1), (0, 1)])
        with pytest.raises(GraphError):
            euler_split(graph)

    def test_halves_degrees(self):
        graph = random_even_regular_multigraph(6, 2, seed=5)
        first, second = euler_split(graph)
        for left in range(6):
            assert first.left_degree(left) == 2
            assert second.left_degree(left) == 2
        for right in range(6):
            assert first.right_degree(right) == 2
            assert second.right_degree(right) == 2

    def test_edges_partitioned_exactly(self):
        graph = random_even_regular_multigraph(5, 3, seed=9)
        first, second = euler_split(graph)
        for left in range(5):
            for right in range(5):
                assert (
                    first.multiplicity(left, right) + second.multiplicity(left, right)
                    == graph.multiplicity(left, right)
                )

    def test_parallel_edge_cycle(self):
        graph = BipartiteMultigraph.from_edges(1, 1, [(0, 0), (0, 0)])
        first, second = euler_split(graph)
        assert first.n_edges == 1
        assert second.n_edges == 1

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_split_is_balanced(self, n, half_degree, seed):
        graph = random_even_regular_multigraph(n, half_degree, seed)
        first, second = euler_split(graph)
        assert first.n_edges == second.n_edges == graph.n_edges // 2
        assert first.is_regular() and first.regular_degree() == half_degree
        assert second.is_regular() and second.regular_degree() == half_degree
