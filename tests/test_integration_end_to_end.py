"""End-to-end integration tests across the whole stack.

These tests mirror how a downstream user would drive the library: build a
network, route a workload, execute it on the simulator, and inspect the
metrics — without reaching into any internal module.
"""

from __future__ import annotations

import pytest

from repro import (
    BlockedPermutationRouter,
    DirectRouter,
    POPSNetwork,
    POPSSimulator,
    PermutationRouter,
    theorem2_slot_bound,
)
from repro.api import Session
from repro.patterns.families import (
    all_hypercube_exchanges,
    bit_reversal_permutation,
    matrix_transpose_permutation,
    mesh_column_shift,
    mesh_row_shift,
    perfect_shuffle,
    vector_reversal,
)
from repro.patterns.generators import PermutationGenerator
from repro.routing.lower_bounds import best_known_lower_bound
from repro.utils.permutations import compose, random_permutation


class TestPublicApiWorkflow:
    def test_quickstart_sequence(self):
        """The README quickstart, as a test."""
        network = POPSNetwork(d=8, g=4)
        router = PermutationRouter(network)
        plan = router.route(vector_reversal(network.n))
        assert plan.n_slots == 4
        result = POPSSimulator(network).route_and_verify(plan.schedule, plan.packets)
        assert result.n_slots == 4

    def test_all_named_families_on_power_of_two_network(self):
        network = POPSNetwork(4, 8)
        n = network.n
        families = {
            "vector reversal": vector_reversal(n),
            "perfect shuffle": perfect_shuffle(n),
            "bit reversal": bit_reversal_permutation(n),
        }
        for name, pi in families.items():
            metrics = Session().route(pi, network=network)
            assert metrics.meets_theorem2_bound, name

    def test_hypercube_steps_all_dimensions(self):
        network = POPSNetwork(8, 4)
        for pi in all_hypercube_exchanges(network.n):
            assert Session().route(pi, network=network).slots == 4

    def test_mesh_steps_both_axes(self):
        network = POPSNetwork(6, 6)
        for pi in (mesh_row_shift(6), mesh_row_shift(6, -1), mesh_column_shift(6), mesh_column_shift(6, -1)):
            assert Session().route(pi, network=network).slots == 2

    def test_transpose_router_vs_direct(self):
        network = POPSNetwork(16, 4)
        pi = matrix_transpose_permutation(8)
        universal = Session().route(pi, network=network).slots
        direct = DirectRouter(network).slots_required(pi)
        assert universal == 8      # 2 * ceil(16/4)
        assert direct == 4         # ceil(16/4): Sahni's optimal transpose

    def test_composed_permutations_still_route(self, rng):
        network = POPSNetwork(4, 8)
        pi = compose(perfect_shuffle(32), vector_reversal(32))
        assert Session().route(pi, network=network).meets_theorem2_bound

    def test_blocked_router_and_universal_router_agree_on_slots(self, rng):
        network = POPSNetwork(6, 3)
        generator = PermutationGenerator(network, rng)
        pi = generator.group_blocked()
        universal = PermutationRouter(network).route(pi).n_slots
        blocked = BlockedPermutationRouter(network).route(pi).n_slots
        assert universal == blocked == theorem2_slot_bound(6, 3)


class TestWorkloadSweep:
    @pytest.mark.parametrize("kind", ["uniform", "derangement", "group_blocked", "within_group"])
    def test_every_workload_kind_routes_at_bound(self, network, kind, rng):
        if kind == "derangement" and network.n == 1:
            pytest.skip("no derangement on a single processor")
        generator = PermutationGenerator(network, rng)
        for pi in generator.batch(kind, 2):
            metrics = Session().route(pi, network=network)
            assert metrics.meets_theorem2_bound
            assert metrics.slots >= best_known_lower_bound(network, pi)

    def test_group_moving_needs_multiple_groups(self, rng):
        network = POPSNetwork(4, 4)
        generator = PermutationGenerator(network, rng)
        for pi in generator.batch("group_moving_blocked", 2):
            metrics = Session().route(pi, network=network)
            # Theorem 2 is exactly optimal on this class (Proposition 2).
            assert metrics.slots == metrics.lower_bound


class TestScaleSmoke:
    @pytest.mark.slow
    def test_moderately_large_network(self, rng):
        network = POPSNetwork(32, 16)
        pi = random_permutation(network.n, rng)
        metrics = Session().route(pi, network=network)
        assert metrics.slots == 4

    @pytest.mark.slow
    def test_large_single_round_network(self, rng):
        network = POPSNetwork(16, 32)
        pi = random_permutation(network.n, rng)
        assert Session().route(pi, network=network).slots == 2
