"""Tests for h-relation routing (the extension built on Theorem 2)."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.pops.packet import Packet
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.routing.relation import HRelation, HRelationRouter, h_relation_slot_bound
from repro.routing.permutation_router import theorem2_slot_bound
from repro.utils.permutations import random_permutation


def route_and_verify(network: POPSNetwork, packets: list[Packet]):
    router = HRelationRouter(network)
    plan = router.route_packets(packets)
    result = POPSSimulator(network).run(plan.schedule, packets)
    result.verify_permutation_delivery(packets)
    return plan


class TestHRelation:
    def test_degree_computation(self):
        network = POPSNetwork(2, 3)
        packets = [Packet(0, 3), Packet(0, 4), Packet(1, 3)]
        relation = HRelation.from_packets(network, packets)
        assert relation.h == 2  # processor 0 sends 2, processor 3 receives 2
        assert len(relation) == 3

    def test_rejects_out_of_range(self):
        network = POPSNetwork(2, 2)
        with pytest.raises(ValidationError):
            HRelation.from_packets(network, [Packet(0, 9)])

    def test_traffic_graph_multiplicities(self):
        network = POPSNetwork(2, 2)
        packets = [Packet(0, 1), Packet(0, 1), Packet(2, 3)]
        graph = HRelation.from_packets(network, packets).traffic_graph()
        assert graph.multiplicity(0, 1) == 2
        assert graph.multiplicity(2, 3) == 1

    def test_slot_bound_helper(self):
        assert h_relation_slot_bound(8, 4, 3) == 3 * theorem2_slot_bound(8, 4)
        assert h_relation_slot_bound(1, 8, 5) == 5


class TestHRelationRouter:
    def test_permutation_is_one_round(self, rng):
        network = POPSNetwork(4, 3)
        pi = random_permutation(network.n, rng)
        packets = [Packet(i, pi[i]) for i in range(network.n)]
        plan = route_and_verify(network, packets)
        assert plan.n_rounds == 1
        assert plan.n_slots == theorem2_slot_bound(4, 3)

    def test_empty_relation(self):
        network = POPSNetwork(2, 2)
        plan = HRelationRouter(network).route_packets([])
        assert plan.n_slots == 0
        assert plan.n_rounds == 0

    def test_two_relation(self, rng):
        network = POPSNetwork(3, 3)
        # Every processor sends to its two cyclic successors: h = 2.
        packets = []
        for i in range(network.n):
            packets.append(Packet(i, (i + 1) % network.n))
            packets.append(Packet(i, (i + 2) % network.n))
        plan = route_and_verify(network, packets)
        assert plan.relation.h == 2
        assert plan.n_slots <= h_relation_slot_bound(3, 3, 2)

    def test_skewed_relation_gather_like(self):
        network = POPSNetwork(2, 4)
        root = 0
        packets = [Packet(i, root) for i in range(1, network.n)]
        plan = route_and_verify(network, packets)
        assert plan.relation.h == network.n - 1
        assert plan.n_slots <= h_relation_slot_bound(2, 4, network.n - 1)

    def test_stationary_packets_need_no_slots(self):
        network = POPSNetwork(2, 2)
        packets = [Packet(i, i) for i in range(network.n)]
        plan = route_and_verify(network, packets)
        assert plan.n_slots == 0

    def test_duplicate_packets_same_pair(self):
        network = POPSNetwork(2, 3)
        packets = [Packet(0, 5), Packet(0, 5), Packet(0, 5)]
        plan = route_and_verify(network, packets)
        assert plan.relation.h == 3
        # Three parallel copies must go in three different rounds.
        assert plan.n_rounds == 3

    def test_random_h_relations(self, rng):
        network = POPSNetwork(3, 3)
        h = 3
        # Build a random h-relation as a union of h random permutations.
        packets: list[Packet] = []
        for _ in range(h):
            pi = random_permutation(network.n, rng)
            packets.extend(Packet(i, pi[i]) for i in range(network.n) if i != pi[i])
        plan = route_and_verify(network, packets)
        assert plan.relation.h <= h
        assert plan.n_slots <= h_relation_slot_bound(3, 3, h)

    def test_d1_relation(self, rng):
        network = POPSNetwork(1, 5)
        packets = [Packet(0, 1), Packet(0, 2), Packet(3, 1)]
        plan = route_and_verify(network, packets)
        assert plan.n_slots <= h_relation_slot_bound(1, 5, 2)

    def test_euler_backend(self, rng):
        network = POPSNetwork(4, 2)
        pi = random_permutation(network.n, rng)
        sigma = random_permutation(network.n, rng)
        packets = [Packet(i, pi[i]) for i in range(network.n) if i != pi[i]]
        packets += [Packet(i, sigma[i]) for i in range(network.n) if i != sigma[i]]
        router = HRelationRouter(network, backend="euler")
        plan = router.route_packets(packets)
        result = POPSSimulator(network).run(plan.schedule, packets)
        result.verify_permutation_delivery(packets)
