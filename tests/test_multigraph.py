"""Unit tests for repro.graph.multigraph."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, NotRegularError
from repro.graph.multigraph import BipartiteMultigraph


@pytest.fixture
def simple_graph() -> BipartiteMultigraph:
    graph = BipartiteMultigraph(3, 3)
    graph.add_edge(0, 0)
    graph.add_edge(0, 1, multiplicity=2)
    graph.add_edge(1, 2)
    graph.add_edge(2, 2)
    return graph


class TestConstruction:
    def test_empty(self):
        graph = BipartiteMultigraph(2, 3)
        assert graph.n_left == 2
        assert graph.n_right == 3
        assert graph.n_edges == 0

    def test_rejects_zero_sides(self):
        with pytest.raises(Exception):
            BipartiteMultigraph(0, 3)

    def test_from_edges_accumulates_multiplicity(self):
        graph = BipartiteMultigraph.from_edges(2, 2, [(0, 1), (0, 1), (1, 0)])
        assert graph.multiplicity(0, 1) == 2
        assert graph.multiplicity(1, 0) == 1
        assert graph.n_edges == 3

    def test_copy_is_independent(self, simple_graph):
        clone = simple_graph.copy()
        clone.add_edge(2, 0)
        assert simple_graph.multiplicity(2, 0) == 0
        assert clone.multiplicity(2, 0) == 1


class TestDegrees:
    def test_left_degrees(self, simple_graph):
        assert simple_graph.left_degrees() == [3, 1, 1]

    def test_right_degrees(self, simple_graph):
        assert simple_graph.right_degrees() == [1, 2, 2]

    def test_single_degree_queries(self, simple_graph):
        assert simple_graph.left_degree(0) == 3
        assert simple_graph.right_degree(2) == 2

    def test_max_degree(self, simple_graph):
        assert simple_graph.max_degree() == 3

    def test_neighbors_distinct(self, simple_graph):
        assert sorted(simple_graph.neighbors(0)) == [0, 1]


class TestMutation:
    def test_add_zero_multiplicity_is_noop(self):
        graph = BipartiteMultigraph(2, 2)
        graph.add_edge(0, 0, multiplicity=0)
        assert graph.n_edges == 0

    def test_add_out_of_range_left(self):
        graph = BipartiteMultigraph(2, 2)
        with pytest.raises(GraphError):
            graph.add_edge(2, 0)

    def test_add_out_of_range_right(self):
        graph = BipartiteMultigraph(2, 2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 5)

    def test_remove_edge(self, simple_graph):
        simple_graph.remove_edge(0, 1)
        assert simple_graph.multiplicity(0, 1) == 1
        simple_graph.remove_edge(0, 1)
        assert simple_graph.multiplicity(0, 1) == 0

    def test_remove_more_than_present_raises(self, simple_graph):
        with pytest.raises(GraphError):
            simple_graph.remove_edge(0, 0, multiplicity=2)

    def test_remove_updates_degrees_and_count(self, simple_graph):
        before = simple_graph.n_edges
        simple_graph.remove_edge(0, 1, multiplicity=2)
        assert simple_graph.n_edges == before - 2
        assert simple_graph.left_degree(0) == 1
        assert simple_graph.right_degree(1) == 0

    def test_remove_matching(self):
        graph = BipartiteMultigraph.from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        graph.remove_matching({0: 0, 1: 1})
        assert graph.multiplicity(0, 0) == 0
        assert graph.multiplicity(1, 1) == 0
        assert graph.n_edges == 2


class TestRegularity:
    def test_regular_graph(self):
        graph = BipartiteMultigraph.from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        assert graph.is_regular()
        assert graph.regular_degree() == 2

    def test_irregular_graph(self, simple_graph):
        assert not simple_graph.is_regular()
        with pytest.raises(NotRegularError):
            simple_graph.regular_degree()

    def test_biregular(self):
        graph = BipartiteMultigraph.from_edges(2, 4, [(0, 0), (0, 1), (1, 2), (1, 3)])
        ok, left, right = graph.is_biregular()
        assert ok and left == 2 and right == 1

    def test_not_biregular(self, simple_graph):
        ok, left, right = simple_graph.is_biregular()
        assert not ok and left == -1 and right == -1


class TestIteration:
    def test_edges_with_multiplicity(self, simple_graph):
        edges = dict(
            ((left, right), mult)
            for left, right, mult in simple_graph.edges_with_multiplicity()
        )
        assert edges[(0, 1)] == 2

    def test_edge_instances_expand_multiplicity(self, simple_graph):
        instances = list(simple_graph.edge_instances())
        assert instances.count((0, 1)) == 2
        assert len(instances) == simple_graph.n_edges

    def test_adjacency(self, simple_graph):
        adjacency = simple_graph.adjacency()
        assert sorted(adjacency[0]) == [0, 1]
        assert adjacency[1] == [2]

    def test_adjacency_with_multiplicity(self, simple_graph):
        adjacency = simple_graph.adjacency_with_multiplicity()
        assert adjacency[0] == {0: 1, 1: 2}


class TestEquality:
    def test_equal_graphs(self):
        a = BipartiteMultigraph.from_edges(2, 2, [(0, 1), (1, 0)])
        b = BipartiteMultigraph.from_edges(2, 2, [(1, 0), (0, 1)])
        assert a == b

    def test_different_multiplicity_not_equal(self):
        a = BipartiteMultigraph.from_edges(2, 2, [(0, 1)])
        b = BipartiteMultigraph.from_edges(2, 2, [(0, 1), (0, 1)])
        assert a != b

    def test_repr_mentions_sizes(self, simple_graph):
        assert "n_left=3" in repr(simple_graph)
