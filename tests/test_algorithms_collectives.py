"""Tests for broadcast, value exchange, reduction and prefix sum algorithms."""

from __future__ import annotations

import operator

import pytest

from repro.algorithms.broadcast import execute_broadcast, one_to_all_broadcast
from repro.algorithms.exchange import PermutationEngine, permute_values
from repro.algorithms.prefix_sum import hypercube_prefix_sum
from repro.algorithms.reduction import data_sum, hypercube_allreduce
from repro.exceptions import DeliveryError, ValidationError
from repro.patterns.families import cyclic_shift, vector_reversal
from repro.pops.topology import POPSNetwork
from repro.routing.permutation_router import theorem2_slot_bound
from repro.utils.permutations import random_permutation


class TestBroadcast:
    def test_single_slot(self, small_network):
        values, slots = execute_broadcast(small_network, speaker=0, payload="hello")
        assert slots == 1
        assert values == ["hello"] * small_network.n

    def test_speaker_in_last_group(self):
        network = POPSNetwork(3, 3)
        values, slots = execute_broadcast(network, speaker=8, payload=123)
        assert slots == 1
        assert values == [123] * 9

    def test_schedule_uses_g_couplers(self):
        network = POPSNetwork(4, 5)
        schedule, _ = one_to_all_broadcast(network, speaker=2)
        assert schedule.n_slots == 1
        assert schedule.slots[0].n_packets_moved == network.g

    def test_invalid_speaker(self):
        with pytest.raises(ValidationError):
            one_to_all_broadcast(POPSNetwork(2, 2), speaker=7)


class TestPermutationEngine:
    def test_values_follow_permutation(self, rng):
        network = POPSNetwork(3, 4)
        engine = PermutationEngine(network)
        values = [f"v{i}" for i in range(network.n)]
        pi = random_permutation(network.n, rng)
        moved = engine.permute(values, pi)
        for i in range(network.n):
            assert moved[pi[i]] == values[i]

    def test_slot_accounting(self, rng):
        network = POPSNetwork(6, 3)
        engine = PermutationEngine(network)
        engine.permute(list(range(18)), random_permutation(18, rng))
        engine.permute(list(range(18)), random_permutation(18, rng))
        assert engine.rounds_executed == 2
        assert engine.slots_used == 2 * theorem2_slot_bound(6, 3)
        engine.reset_counters()
        assert engine.slots_used == 0

    def test_rejects_wrong_value_count(self):
        network = POPSNetwork(2, 2)
        with pytest.raises(DeliveryError):
            PermutationEngine(network).permute([1, 2], [1, 0, 3, 2])

    def test_one_shot_helper(self):
        network = POPSNetwork(2, 3)
        values, slots = permute_values(network, list(range(6)), vector_reversal(6))
        assert values == list(reversed(range(6)))
        assert slots == theorem2_slot_bound(2, 3)

    def test_payloads_of_arbitrary_type(self):
        network = POPSNetwork(2, 2)
        values = [{"id": i} for i in range(4)]
        moved, _ = permute_values(network, values, cyclic_shift(4, 1))
        assert moved[1] == {"id": 0}


class TestAllReduce:
    @pytest.mark.parametrize("d,g", [(4, 8), (8, 4), (2, 8), (4, 4)])
    def test_sum_reduction(self, d, g, rng):
        network = POPSNetwork(d, g)
        data = [rng.randint(0, 50) for _ in range(network.n)]
        reduced, slots = hypercube_allreduce(network, data, operator.add)
        assert all(value == sum(data) for value in reduced)
        log_n = network.n.bit_length() - 1
        assert slots == theorem2_slot_bound(d, g) * log_n

    def test_max_reduction(self, rng):
        network = POPSNetwork(4, 4)
        data = [rng.randint(0, 1000) for _ in range(16)]
        reduced, _ = hypercube_allreduce(network, data, max)
        assert all(value == max(data) for value in reduced)

    def test_requires_power_of_two(self):
        network = POPSNetwork(3, 3)
        with pytest.raises(ValidationError):
            hypercube_allreduce(network, [0] * 9, operator.add)

    def test_requires_matching_length(self):
        network = POPSNetwork(4, 4)
        with pytest.raises(ValidationError):
            hypercube_allreduce(network, [0] * 5, operator.add)

    def test_data_sum_helper(self, rng):
        network = POPSNetwork(2, 8)
        data = [float(rng.randint(0, 9)) for _ in range(16)]
        total, slots = data_sum(network, data)
        assert total == pytest.approx(sum(data))
        assert slots == theorem2_slot_bound(2, 8) * 4


class TestPrefixSum:
    @pytest.mark.parametrize("d,g", [(4, 8), (8, 4), (4, 4)])
    def test_inclusive_prefix_matches_reference(self, d, g, rng):
        network = POPSNetwork(d, g)
        data = [rng.randint(-5, 5) for _ in range(network.n)]
        prefixes, slots = hypercube_prefix_sum(network, data)
        expected = []
        running = 0
        for value in data:
            running += value
            expected.append(running)
        assert prefixes == expected
        log_n = network.n.bit_length() - 1
        assert slots == theorem2_slot_bound(d, g) * log_n

    def test_non_commutative_operator(self):
        # String concatenation is associative but not commutative: order must hold.
        network = POPSNetwork(2, 4)
        data = [chr(ord("a") + i) for i in range(8)]
        prefixes, _ = hypercube_prefix_sum(network, data, combine=operator.add)
        assert prefixes == ["a", "ab", "abc", "abcd", "abcde", "abcdef", "abcdefg", "abcdefgh"]

    def test_requires_power_of_two(self):
        with pytest.raises(ValidationError):
            hypercube_prefix_sum(POPSNetwork(3, 2), [1] * 6)

    def test_requires_matching_length(self):
        with pytest.raises(ValidationError):
            hypercube_prefix_sum(POPSNetwork(4, 4), [1] * 3)


class TestSessionInjection:
    """Collectives accept an explicit Session (engine, cache, backend)."""

    def test_broadcast_runs_on_the_collective_engine_by_default(self, monkeypatch):
        from repro.pops.simulator import POPSSimulator

        monkeypatch.setattr(
            POPSSimulator, "run_reference",
            lambda *a, **k: pytest.fail("broadcast fell back to the reference"),
        )
        network = POPSNetwork(4, 4)
        values, slots = execute_broadcast(network, speaker=2, payload="p")
        assert slots == 1 and values == ["p"] * network.n

    def test_broadcast_with_explicit_session_and_cache(self):
        from repro.api import RunConfig, Session

        network = POPSNetwork(3, 3)
        session = Session(RunConfig(sim_backend="batched-collective"))
        key = ("bcast", 3, 3, 0, "v")
        first, _ = execute_broadcast(network, 0, "v", session=session, cache_key=key)
        second, _ = execute_broadcast(network, 0, "v", session=session, cache_key=key)
        assert first == second == ["v"] * network.n
        assert session.cache.stats()["hits"] == 1

    def test_permutation_engine_honours_session_router_backend(self, rng):
        from repro.api import RunConfig, Session

        network = POPSNetwork(2, 4)
        session = Session(RunConfig(router_backend="euler", sim_backend="auto"))
        engine = PermutationEngine(network, session=session)
        values = list(range(network.n))
        pi = random_permutation(network.n, rng)
        moved = engine.permute(values, pi)
        for i in range(network.n):
            assert moved[pi[i]] == values[i]

    def test_allreduce_with_session_matches_default(self, rng):
        from repro.api import RunConfig, Session

        network = POPSNetwork(4, 4)
        data = [rng.randint(0, 50) for _ in range(network.n)]
        session = Session(RunConfig(sim_backend="auto"))
        with_session = hypercube_allreduce(network, data, operator.add, session=session)
        default = hypercube_allreduce(network, data, operator.add)
        assert with_session == default
