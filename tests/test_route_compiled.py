"""The array-native routing front end: ``route_compiled`` parity and caching.

Pins the ISSUE 5 acceptance criteria:

* ``route_compiled()`` is bit-identical to compile-after-route for every
  router backend (array backends take the array pipeline, others fall back);
* array-backend plans are equivalent to reference-backend plans — same slot
  counts, Theorem 2 bound exact, packets verifiably delivered — on every
  routing regime including hypothesis-generated permutations;
* the compiled-schedule cache now covers the plan stage;
* the ``Session`` / ``_measure_routing`` fast path returns metrics identical
  to the object pipeline.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RunConfig, Session
from repro.exceptions import ValidationError
from repro.graph.array_coloring import ARRAY_COLORING_KERNELS
from repro.pops.engine import BatchedSimulator, CompiledSchedule, ScheduleCache, compile_schedule
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.routing.permutation_router import PermutationRouter, theorem2_slot_bound
from repro.utils.permutations import random_permutation

ALL_SHAPES = [(1, 1), (1, 6), (2, 8), (4, 4), (3, 7), (8, 4), (9, 3), (7, 5), (5, 1), (6, 4)]
ARRAY_BACKENDS = sorted(ARRAY_COLORING_KERNELS)

ARRAY_FIELDS = [
    field.name
    for field in dataclasses.fields(CompiledSchedule)
    if field.name not in ("network", "packets", "n_slots")
]


def assert_bit_identical(a: CompiledSchedule, b: CompiledSchedule) -> None:
    assert a.network == b.network
    assert a.n_slots == b.n_slots
    assert a.packets == b.packets
    for name in ARRAY_FIELDS:
        x, y = getattr(a, name), getattr(b, name)
        assert x.dtype == y.dtype, name
        assert np.array_equal(x, y), name


class TestBitIdenticalToCompileAfterRoute:
    @pytest.mark.parametrize(
        "backend", ["konig", "euler", "konig-array", "euler-array"]
    )
    @pytest.mark.parametrize("d,g", ALL_SHAPES, ids=lambda s: str(s))
    def test_route_compiled_equals_lowered_plan(self, d, g, backend, rng):
        network = POPSNetwork(d, g)
        router = PermutationRouter(network, backend=backend)
        for _ in range(2):
            pi = random_permutation(network.n, rng)
            plan = router.route(pi)
            reference = compile_schedule(network, plan.schedule, plan.packets)
            assert_bit_identical(reference, router.route_compiled(pi))

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_permutations(self, data):
        d = data.draw(st.integers(min_value=1, max_value=6), label="d")
        g = data.draw(st.integers(min_value=1, max_value=6), label="g")
        network = POPSNetwork(d, g)
        pi = list(data.draw(st.permutations(range(network.n)), label="pi"))
        backend = data.draw(st.sampled_from(ARRAY_BACKENDS), label="backend")
        router = PermutationRouter(network, backend=backend)
        plan = router.route(pi)
        reference = compile_schedule(network, plan.schedule, plan.packets)
        compiled = router.route_compiled(pi)
        assert_bit_identical(reference, compiled)
        # Plan parity with the reference backend: same slot count (both the
        # exact Theorem 2 bound) and a verified delivery verdict.
        reference_plan = PermutationRouter(network, backend="konig").route(pi)
        assert compiled.n_slots == reference_plan.n_slots
        assert compiled.n_slots == theorem2_slot_bound(d, g)
        engine = BatchedSimulator(network)
        engine.verify_locations(compiled, engine.execute(compiled))


class TestPlanEquivalenceAcrossBackends:
    @pytest.mark.parametrize("backend", ARRAY_BACKENDS)
    def test_same_slot_count_and_bound_as_reference_backend(
        self, network, backend, rng
    ):
        pi = random_permutation(network.n, rng)
        reference_plan = PermutationRouter(network, backend="konig").route(pi)
        compiled = PermutationRouter(network, backend=backend).route_compiled(pi)
        assert compiled.n_slots == reference_plan.n_slots
        assert compiled.n_slots == theorem2_slot_bound(network.d, network.g)

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS)
    def test_array_plan_delivers_on_both_engines(self, network, backend, rng):
        pi = random_permutation(network.n, rng)
        router = PermutationRouter(network, backend=backend)
        # Compiled arrays on the batched engine.
        compiled = router.route_compiled(pi)
        engine = BatchedSimulator(network)
        engine.verify_locations(compiled, engine.execute(compiled))
        # The equivalent object plan on the reference simulator.
        plan = router.route(pi)
        POPSSimulator(network).route_and_verify(plan.schedule, plan.packets)

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS)
    def test_metrics_identical_to_reference_pipeline(self, network, backend, rng):
        pi = random_permutation(network.n, rng)
        reference = Session(
            RunConfig(router_backend="konig", sim_backend="reference")
        ).route(pi, network=network)
        fast = Session(
            RunConfig(router_backend=backend, sim_backend="batched")
        ).route(pi, network=network)
        assert fast == reference


class TestPlanStageCache:
    def test_cache_hit_skips_route_construction(self, rng):
        network = POPSNetwork(4, 4)
        pi = random_permutation(network.n, rng)
        cache = ScheduleCache()
        router = PermutationRouter(network, backend="euler-array")
        first = router.route_compiled(pi, cache_key="plan", cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 1, "entries": 1}

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache hit must not re-route")

        router._route_compiled_uncached = boom
        second = router.route_compiled(pi, cache_key="plan", cache=cache)
        assert second is first
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_plan_entry_is_shared_with_engine_compile_stage(self, rng):
        # The plan-stage entry and the compile-stage entry live under the
        # same key namespace (they are bit-identical), so either populates
        # the cache for the other.
        network = POPSNetwork(2, 8)
        pi = random_permutation(network.n, rng)
        cache = ScheduleCache()
        session = Session(
            RunConfig(router_backend="konig-array", sim_backend="batched"),
            cache=cache,
        )
        session.route(pi, network=network)
        assert cache.stats()["misses"] == 1
        compiled = session.route_compiled(pi, network=network)
        assert cache.stats()["hits"] == 1
        engine = BatchedSimulator(network)
        engine.verify_locations(compiled, engine.execute(compiled))

    def test_session_route_compiled_validates_network_args(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            Session().route_compiled([0, 1, 2, 3], d=2)

    def test_cache_policy_off_skips_cache(self, rng):
        network = POPSNetwork(2, 4)
        pi = random_permutation(network.n, rng)
        session = Session(
            RunConfig(router_backend="euler-array", cache_policy="off")
        )
        session.route_compiled(pi, network=network)
        assert session.cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestValidationAndFallback:
    def test_invalid_permutation_rejected(self):
        router = PermutationRouter(POPSNetwork(2, 2), backend="euler-array")
        with pytest.raises(ValidationError):
            router.route_compiled([0, 1, 2])  # wrong length
        with pytest.raises(ValidationError):
            router.route_compiled([0, 0, 1, 1])  # repeated image
        with pytest.raises(ValidationError):
            router.route_compiled([0, 1, 2, 7])  # out of range

    def test_non_array_backend_falls_back_to_object_route(self, rng):
        network = POPSNetwork(3, 3)
        pi = random_permutation(network.n, rng)
        router = PermutationRouter(network, backend="konig")
        plan = router.route(pi)
        reference = compile_schedule(network, plan.schedule, plan.packets)
        assert_bit_identical(reference, router.route_compiled(pi))

    def test_verify_false_still_produces_identical_plan(self, rng):
        network = POPSNetwork(4, 4)
        pi = random_permutation(network.n, rng)
        verified = PermutationRouter(network, backend="euler-array")
        unverified = PermutationRouter(network, backend="euler-array", verify=False)
        assert_bit_identical(
            verified.route_compiled(pi), unverified.route_compiled(pi)
        )
