"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.utils.validation import (
    check_divides,
    check_in_range,
    check_non_negative_int,
    check_permutation,
    check_positive_int,
    check_probability,
    check_type,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive_int(-2, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValidationError, match="banana"):
            check_positive_int(-1, "banana")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_non_negative_int(False, "x")


class TestCheckInRange:
    def test_accepts_inside(self):
        assert check_in_range(3, 0, 5, "x") == 3

    def test_low_bound_inclusive(self):
        assert check_in_range(0, 0, 5, "x") == 0

    def test_high_bound_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range(5, 0, 5, "x")

    def test_rejects_below(self):
        with pytest.raises(ValidationError):
            check_in_range(-1, 0, 5, "x")

    def test_rejects_non_int(self):
        with pytest.raises(ValidationError):
            check_in_range(1.5, 0, 5, "x")


class TestCheckDivides:
    def test_exact_division_passes(self):
        check_divides(4, 12, "ctx")

    def test_non_division_fails(self):
        with pytest.raises(ConfigurationError, match="does not divide"):
            check_divides(5, 12, "ctx")

    def test_zero_divisor_fails(self):
        with pytest.raises(ConfigurationError):
            check_divides(0, 12, "ctx")


class TestCheckPermutation:
    def test_valid_permutation(self):
        assert check_permutation([2, 0, 1]) == [2, 0, 1]

    def test_returns_copy(self):
        original = [1, 0]
        result = check_permutation(original)
        assert result == [1, 0]
        assert result is not original

    def test_length_mismatch(self):
        with pytest.raises(ValidationError, match="length"):
            check_permutation([0, 1], n=3)

    def test_repeated_image(self):
        with pytest.raises(ValidationError, match="repeats"):
            check_permutation([0, 0, 2])

    def test_out_of_range_image(self):
        with pytest.raises(ValidationError, match="out of range"):
            check_permutation([0, 3, 1])

    def test_negative_image(self):
        with pytest.raises(ValidationError):
            check_permutation([0, -1, 2])

    def test_accepts_tuple_input(self):
        assert check_permutation((1, 0)) == [1, 0]

    def test_empty_is_valid(self):
        assert check_permutation([]) == []


class TestCheckProbability:
    def test_bounds_accepted(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_interior_accepted(self):
        assert check_probability(0.25, "p") == 0.25

    def test_above_one_rejected(self):
        with pytest.raises(ValidationError):
            check_probability(1.01, "p")

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            check_probability(-0.1, "p")


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("abc", str, "x") == "abc"

    def test_rejects_mismatch(self):
        with pytest.raises(ValidationError, match="type"):
            check_type("abc", int, "x")

    def test_accepts_union(self):
        assert check_type(3, (int, float), "x") == 3
