"""Unit tests for the baseline routers (direct single-hop and blocked specialised)."""

from __future__ import annotations

from math import ceil

import pytest

from repro.exceptions import RoutingError
from repro.patterns.families import (
    group_cyclic_shift,
    hypercube_exchange,
    matrix_transpose_permutation,
    vector_reversal,
)
from repro.patterns.generators import random_group_blocked_permutation
from repro.pops.packet import Packet
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.routing.baselines.blocked import BlockedPermutationRouter, blocked_fair_values
from repro.routing.baselines.direct import (
    DirectRouter,
    direct_slots_required,
    group_traffic_matrix,
)
from repro.routing.permutation_router import theorem2_slot_bound
from repro.utils.permutations import random_permutation


def verify(network: POPSNetwork, schedule, pi: list[int]) -> None:
    packets = [Packet(source=i, destination=pi[i]) for i in range(network.n)]
    POPSSimulator(network).route_and_verify(schedule, packets)


class TestGroupTrafficMatrix:
    def test_identity_traffic_is_diagonal(self):
        network = POPSNetwork(3, 2)
        traffic = group_traffic_matrix(network, list(range(6)))
        assert traffic == [[3, 0], [0, 3]]

    def test_group_shift_traffic(self):
        network = POPSNetwork(3, 3)
        traffic = group_traffic_matrix(network, group_cyclic_shift(9, 3))
        assert traffic[0][1] == 3 and traffic[1][2] == 3 and traffic[2][0] == 3

    def test_row_sums_equal_d(self, small_network, rng):
        pi = random_permutation(small_network.n, rng)
        traffic = group_traffic_matrix(small_network, pi)
        for row in traffic:
            assert sum(row) == small_network.d


class TestDirectRouter:
    def test_slots_equal_max_pair_traffic(self, small_network, rng):
        pi = random_permutation(small_network.n, rng)
        router = DirectRouter(small_network)
        assert router.slots_required(pi) == direct_slots_required(small_network, pi)

    def test_identity_needs_zero_slots(self, small_network):
        # Identity keeps every packet in place: the direct router moves nothing.
        pi = list(range(small_network.n))
        assert direct_slots_required(small_network, pi) == 0
        schedule = DirectRouter(small_network).route(pi)
        assert schedule.n_slots == 0
        verify(small_network, schedule, pi)

    def test_group_blocked_needs_d_slots(self):
        network = POPSNetwork(8, 4)
        pi = group_cyclic_shift(32, 8)
        assert direct_slots_required(network, pi) == 8
        schedule = DirectRouter(network).route(pi)
        assert schedule.n_slots == 8
        verify(network, schedule, pi)

    def test_transpose_meets_sahni_bound(self):
        # Matrix transpose traffic is perfectly balanced: ceil(d/g) slots.
        for m, d, g in ((6, 6, 6), (8, 16, 4)):
            network = POPSNetwork(d, g)
            pi = matrix_transpose_permutation(m)
            assert direct_slots_required(network, pi) == ceil(d / g)
            schedule = DirectRouter(network).route(pi)
            verify(network, schedule, pi)

    def test_random_permutations_delivered(self, small_network, rng):
        pi = random_permutation(small_network.n, rng)
        schedule = DirectRouter(small_network).route(pi)
        verify(small_network, schedule, pi)

    def test_route_packets_subset(self):
        network = POPSNetwork(2, 3)
        packets = [Packet(0, 5), Packet(1, 4), Packet(2, 2)]
        schedule = DirectRouter(network).route_packets(packets)
        POPSSimulator(network).route_and_verify(schedule, packets)

    def test_route_packets_empty(self):
        network = POPSNetwork(2, 3)
        schedule = DirectRouter(network).route_packets([])
        assert schedule.n_slots == 0

    def test_direct_never_beats_single_hop_optimum(self, small_network, rng):
        # The schedule length equals the max pair traffic, which is a lower
        # bound for any single-hop strategy; check consistency.
        pi = random_permutation(small_network.n, rng)
        schedule = DirectRouter(small_network).route(pi)
        assert schedule.n_slots == direct_slots_required(small_network, pi)


class TestBlockedRouter:
    def test_fair_values_formula_range(self):
        network = POPSNetwork(3, 4)
        for h in range(4):
            values = {blocked_fair_values(network, h, i) for i in range(3)}
            assert len(values) == 3
            assert all(0 <= v < 4 for v in values)

    def test_can_route_predicate(self, rng):
        network = POPSNetwork(4, 3)
        router = BlockedPermutationRouter(network)
        assert router.can_route(random_group_blocked_permutation(network, rng))
        pi = list(range(12))
        pi[0], pi[4] = pi[4], pi[0]
        assert not router.can_route(pi)

    def test_rejects_unblocked_permutation(self):
        network = POPSNetwork(4, 3)
        pi = list(range(12))
        pi[0], pi[4] = pi[4], pi[0]
        with pytest.raises(RoutingError):
            BlockedPermutationRouter(network).route(pi)

    def test_slots_required(self):
        assert BlockedPermutationRouter(POPSNetwork(1, 4)).slots_required() == 1
        assert BlockedPermutationRouter(POPSNetwork(4, 4)).slots_required() == 2
        assert BlockedPermutationRouter(POPSNetwork(9, 4)).slots_required() == 6

    @pytest.mark.parametrize("d,g", [(2, 4), (4, 4), (8, 4), (9, 3), (5, 5), (6, 2)])
    def test_routes_random_blocked_permutations(self, d, g, rng):
        network = POPSNetwork(d, g)
        router = BlockedPermutationRouter(network)
        pi = random_group_blocked_permutation(network, rng)
        schedule = router.route(pi)
        assert schedule.n_slots == theorem2_slot_bound(d, g)
        verify(network, schedule, pi)

    def test_vector_reversal_even_n(self):
        network = POPSNetwork(8, 4)
        schedule = BlockedPermutationRouter(network).route(vector_reversal(32))
        assert schedule.n_slots == 4
        verify(network, schedule, vector_reversal(32))

    def test_hypercube_exchange_high_bit(self):
        # Flipping a bit above log2(d) is a group-blocked permutation.
        network = POPSNetwork(4, 8)
        pi = hypercube_exchange(32, 4)
        router = BlockedPermutationRouter(network)
        assert router.can_route(pi)
        schedule = router.route(pi)
        assert schedule.n_slots == 2
        verify(network, schedule, pi)

    def test_d1_direct_case(self):
        network = POPSNetwork(1, 4)
        pi = [3, 0, 1, 2]
        schedule = BlockedPermutationRouter(network).route(pi)
        assert schedule.n_slots == 1
        verify(network, schedule, pi)

    def test_within_group_permutation(self, rng):
        from repro.patterns.generators import random_within_group_permutation

        network = POPSNetwork(6, 3)
        pi = random_within_group_permutation(network, rng)
        schedule = BlockedPermutationRouter(network).route(pi)
        assert schedule.n_slots == 4
        verify(network, schedule, pi)
