"""Tests for the compiled-trace pipeline: CompiledTrace, the schedule cache,
and trial-sharded sweeps.

Three contracts are pinned here:

* ``CompiledTrace``'s numpy-reduction statistics equal the materialized
  ``SimulationTrace`` statistics (and the reference simulator's trace) on
  random routed schedules — property-tested with hypothesis.
* The compiled-schedule cache changes nothing observable: identical metrics
  with the cache on, off, hit or missed, and counters that actually count.
* A trial-sharded ``Session.sweep`` reproduces the unsharded sweep
  bit-for-bit given the same seed.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import RunConfig, Session
from repro.pops.engine import BatchedSimulator, ScheduleCache
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.pops.trace import CompiledTrace, SimulationTrace
from repro.routing.permutation_router import PermutationRouter
from repro.utils.permutations import random_permutation


def sweep(configs, **config_fields):
    """A Theorem 2 sweep through a fresh session."""
    return Session(RunConfig(**config_fields)).sweep(configs)

network_shapes = st.tuples(
    st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5)
)


def routed_compiled_trace(d: int, g: int, seed: int):
    """Route a random permutation and return (network, result-with-CompiledTrace)."""
    network = POPSNetwork(d, g)
    pi = random_permutation(network.n, random.Random(seed))
    plan = PermutationRouter(network).route(pi)
    result = BatchedSimulator(network).run(plan.schedule, plan.packets)
    return network, plan, result


class TestCompiledTraceStatistics:
    @settings(max_examples=40, deadline=None)
    @given(shape=network_shapes, seed=st.integers(0, 2**32 - 1))
    def test_reductions_match_materialized_trace(self, shape, seed):
        """Every numpy-reduction statistic equals its dict-based counterpart."""
        d, g = shape
        network, _, result = routed_compiled_trace(d, g, seed)
        compiled = result.trace
        assert isinstance(compiled, CompiledTrace)
        materialized = compiled.materialize()
        assert isinstance(materialized, SimulationTrace)

        assert compiled.n_slots == materialized.n_slots
        assert compiled.total_packets_moved == materialized.total_packets_moved
        assert compiled.coupler_usage() == materialized.coupler_usage()
        assert compiled.max_coupler_usage() == materialized.max_coupler_usage()
        assert (
            compiled.packets_moved_per_slot()
            == materialized.packets_moved_per_slot()
        )
        nc = network.n_couplers
        assert compiled.mean_coupler_utilisation(nc) == materialized.mean_coupler_utilisation(nc)
        for s, slot in enumerate(materialized.slots):
            assert compiled.packets_moved(s) == slot.packets_moved
            assert compiled.packets_received(s) == slot.packets_received
        assert compiled.packets_received_per_slot() == [
            slot.packets_received for slot in materialized.slots
        ]
        assert compiled.total_packets_received == sum(
            slot.packets_received for slot in materialized.slots
        )

    @settings(max_examples=20, deadline=None)
    @given(shape=network_shapes, seed=st.integers(0, 2**32 - 1))
    def test_reductions_match_reference_simulator_trace(self, shape, seed):
        """The compiled trace agrees with the trace the reference simulator records."""
        d, g = shape
        network, plan, result = routed_compiled_trace(d, g, seed)
        reference = POPSSimulator(network).run(plan.schedule, plan.packets)
        compiled = result.trace
        assert compiled.n_slots == reference.trace.n_slots
        assert compiled.total_packets_moved == reference.trace.total_packets_moved
        assert compiled.coupler_usage() == reference.trace.coupler_usage()
        assert compiled.max_coupler_usage() == reference.trace.max_coupler_usage()
        assert (
            compiled.packets_moved_per_slot()
            == reference.trace.packets_moved_per_slot()
        )

    def test_slots_escape_hatch_is_lazy_and_cached(self):
        _, _, result = routed_compiled_trace(3, 3, seed=5)
        compiled = result.trace
        assert getattr(compiled, "_materialized", None) is None
        slots = compiled.slots
        assert len(slots) == compiled.n_slots
        assert compiled.slots is slots  # cached, not rebuilt

    def test_batched_results_are_comparable(self):
        """Equality on results (and traces) must not trip numpy's ambiguity."""
        _, _, first = routed_compiled_trace(3, 3, seed=7)
        _, _, second = routed_compiled_trace(3, 3, seed=7)
        _, _, other = routed_compiled_trace(3, 3, seed=8)
        assert first.trace == second.trace
        assert first == second
        assert first.trace != other.trace
        assert first.trace != SimulationTrace()

    def test_empty_trace_statistics(self):
        network = POPSNetwork(2, 2)
        from repro.pops.schedule import RoutingSchedule

        schedule = RoutingSchedule(network=network)
        result = BatchedSimulator(network).run(schedule, [])
        compiled = result.trace
        assert compiled.n_slots == 0
        assert compiled.total_packets_moved == 0
        assert compiled.coupler_usage() == {}
        assert compiled.max_coupler_usage() == 0
        assert compiled.mean_coupler_utilisation(network.n_couplers) == 0.0


class TestScheduleCache:
    def fresh_workload(self, seed: int = 17):
        network = POPSNetwork(4, 4)
        pi = random_permutation(network.n, random.Random(seed))
        plan = PermutationRouter(network).route(pi)
        return network, pi, plan

    def test_hit_returns_identical_compiled_schedule(self):
        network, pi, plan = self.fresh_workload()
        cache = ScheduleCache()
        engine = BatchedSimulator(network)
        key = ("konig", 4, 4, tuple(pi))
        first = engine.compile(plan.schedule, plan.packets, cache_key=key, cache=cache)
        second = engine.compile(plan.schedule, plan.packets, cache_key=key, cache=cache)
        assert second is first
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_no_key_no_cache(self):
        network, _, plan = self.fresh_workload()
        cache = ScheduleCache()
        engine = BatchedSimulator(network)
        a = engine.compile(plan.schedule, plan.packets, cache=cache)
        b = engine.compile(plan.schedule, plan.packets, cache=cache)
        assert a is not b
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_initial_buffers_bypass_cache(self):
        network, _, plan = self.fresh_workload()
        cache = ScheduleCache()
        engine = BatchedSimulator(network)
        buffers = {p: [] for p in network.processors()}
        for packet in plan.packets:
            buffers[packet.source].append(packet)
        compiled = engine.compile(
            plan.schedule, plan.packets, buffers, cache_key=("k",), cache=cache
        )
        assert compiled is not None
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_eviction_is_bounded(self):
        network, pi, plan = self.fresh_workload()
        cache = ScheduleCache(max_entries=2)
        engine = BatchedSimulator(network)
        for k in range(3):
            engine.compile(plan.schedule, plan.packets, cache_key=k, cache=cache)
        assert len(cache) == 2
        assert cache.get(0) is None  # oldest entry evicted
        assert cache.get(2) is not None

    def test_eviction_is_byte_bounded(self):
        network, _, plan = self.fresh_workload()
        engine = BatchedSimulator(network)
        one = engine.compile(plan.schedule, plan.packets)
        cache = ScheduleCache(max_entries=100, max_bytes=one.nbytes * 2)
        for k in range(3):
            engine.compile(plan.schedule, plan.packets, cache_key=k, cache=cache)
        assert len(cache) == 2
        assert cache.total_bytes <= one.nbytes * 2

    def test_oversized_schedule_not_cached(self):
        network, _, plan = self.fresh_workload()
        engine = BatchedSimulator(network)
        cache = ScheduleCache(max_entries=100, max_bytes=1)
        a = engine.compile(plan.schedule, plan.packets, cache_key="k", cache=cache)
        b = engine.compile(plan.schedule, plan.packets, cache_key="k", cache=cache)
        assert a is not b  # never stored, recompiled each time
        assert len(cache) == 0 and cache.total_bytes == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ScheduleCache(max_entries=0)
        with pytest.raises(ValueError):
            ScheduleCache(max_bytes=0)

    def test_route_same_results_cache_on_off(self):
        network, pi, _ = self.fresh_workload(seed=23)
        caching_session = Session(RunConfig(sim_backend="batched"))
        cached_miss = caching_session.route(pi, network=network)
        cached_hit = caching_session.route(pi, network=network)
        uncached = Session(
            RunConfig(sim_backend="batched", cache_policy="off")
        ).route(pi, network=network)
        reference = Session().route(pi, network=network)
        assert cached_miss == cached_hit == uncached == reference

    def test_route_counters_increment(self):
        network, pi, _ = self.fresh_workload(seed=29)
        session = Session(RunConfig(sim_backend="batched"))
        cache = session.cache
        session.route(pi, network=network)
        assert cache.stats()["misses"] == 1 and cache.stats()["hits"] == 0
        session.route(pi, network=network)
        assert cache.stats()["misses"] == 1 and cache.stats()["hits"] == 1
        Session(
            RunConfig(sim_backend="batched", cache_policy="off"), cache=cache
        ).route(pi, network=network)
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_reference_backend_never_touches_cache(self):
        network, pi, _ = self.fresh_workload(seed=31)
        session = Session()
        session.route(pi, network=network)
        assert session.cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestShardedSweeps:
    CONFIGS = ((4, 4), (8, 4))

    def test_sharded_matches_unsharded_bit_for_bit(self):
        unsharded = sweep(self.CONFIGS, trials=5, seed=11, workers=0)
        for shard in (1, 2, 5, 7):
            sharded = sweep(
                self.CONFIGS, trials=5, seed=11, workers=0, shard_trials=shard
            )
            assert sharded.rows == unsharded.rows
            assert sharded.all_pass

    def test_sharded_matches_with_worker_processes(self):
        """Fanning shards across processes (when available) changes nothing."""
        serial = sweep(((4, 4),), trials=4, seed=13, workers=0, shard_trials=2)
        fanned = sweep(((4, 4),), trials=4, seed=13, workers=2, shard_trials=2)
        assert fanned.rows == serial.rows

    def test_sweep_matches_e1_rows(self):
        """E1p (sharded or not) reproduces E1's rows for the same seed."""
        e1 = Session(
            RunConfig(trials=3, seed=19, sim_backend="batched")
        ).experiment("E1", configs=self.CONFIGS)
        e1p = sweep(self.CONFIGS, trials=3, seed=19, workers=0, shard_trials=2)
        assert e1p.rows == e1.rows

    def test_repeated_sweep_skips_lowering(self):
        """Re-running the same sweep in one session serves compiles from cache."""
        session = Session(
            RunConfig(trials=4, seed=11, workers=0, cache_stats=True)
        )
        first = session.sweep(((4, 4),))
        second = session.sweep(((4, 4),))
        # The megabatch pipeline compiles each shard as one batch-level
        # cache entry, so the counters tick once per sweep, not per trial.
        assert first.notes["schedule cache"] == "0 hits / 1 misses"
        assert second.notes["schedule cache"] == "1 hits / 0 misses"
        assert second.rows == first.rows

    def test_cache_stats_note(self):
        result = sweep(((2, 2),), trials=2, seed=3, workers=0, cache_stats=True)
        note = result.notes["schedule cache"]
        assert "hits" in note and "misses" in note

    def test_shard_note_records_shard_size(self):
        result = sweep(((2, 2),), trials=4, seed=3, workers=0, shard_trials=3)
        assert result.notes["trials per shard"] == 3

    def test_invalid_shard_size_rejected(self):
        with pytest.raises(ValueError):
            sweep(((2, 2),), trials=2, seed=3, workers=0, shard_trials=0)

    def test_zero_trials_rejected_cleanly(self):
        with pytest.raises(ValueError, match="trials"):
            sweep(((2, 2),), trials=0, seed=3, workers=0)
        with pytest.raises(ValueError, match="trials"):
            Session(RunConfig(trials=1)).experiment("E1", trials=0)
