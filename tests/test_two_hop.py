"""Unit tests for the shared two-hop schedule builder (repro.routing.two_hop)."""

from __future__ import annotations

import pytest

from repro.exceptions import RoutingError
from repro.pops.packet import Packet
from repro.pops.simulator import POPSSimulator
from repro.pops.topology import POPSNetwork
from repro.routing.fair_distribution import FairDistributionSolver
from repro.routing.list_system import ListSystem
from repro.routing.two_hop import (
    build_round_schedule,
    build_theorem2_schedule,
    build_two_slot_schedule,
)
from repro.utils.permutations import random_permutation


def packets_for(network: POPSNetwork, pi: list[int]) -> list[Packet]:
    return [Packet(source=i, destination=pi[i]) for i in range(network.n)]


def fair_distribution_for(network: POPSNetwork, pi: list[int]):
    system = ListSystem.from_permutation(pi, network.d, network.g)
    return FairDistributionSolver().solve(system)


class TestDispatch:
    def test_dispatch_two_slot(self, rng):
        network = POPSNetwork(3, 4)
        pi = random_permutation(network.n, rng)
        schedule, _ = build_theorem2_schedule(
            network, packets_for(network, pi), fair_distribution_for(network, pi)
        )
        assert schedule.n_slots == 2

    def test_dispatch_rounds(self, rng):
        network = POPSNetwork(5, 2)
        pi = random_permutation(network.n, rng)
        schedule, _ = build_theorem2_schedule(
            network, packets_for(network, pi), fair_distribution_for(network, pi)
        )
        assert schedule.n_slots == 6


class TestTwoSlotBuilder:
    def test_wrong_regime_rejected(self, rng):
        network = POPSNetwork(5, 2)
        pi = random_permutation(network.n, rng)
        with pytest.raises(RoutingError):
            build_two_slot_schedule(
                network, packets_for(network, pi), fair_distribution_for(network, pi)
            )

    def test_bad_fair_value_range_rejected(self, rng):
        network = POPSNetwork(2, 3)
        pi = random_permutation(network.n, rng)
        with pytest.raises(RoutingError, match="not a group"):
            build_two_slot_schedule(network, packets_for(network, pi), lambda h, i: 99)

    def test_unbalanced_fair_values_rejected(self, rng):
        network = POPSNetwork(2, 3)
        pi = random_permutation(network.n, rng)
        # Sending every packet to intermediate group 0 violates condition (2).
        with pytest.raises(RoutingError):
            build_two_slot_schedule(network, packets_for(network, pi), lambda h, i: 0)

    def test_condition1_violation_rejected(self):
        network = POPSNetwork(2, 2)
        pi = [2, 3, 0, 1]
        packets = packets_for(network, pi)
        # Both packets of group 0 to intermediate 0, both of group 1 to 1:
        # balanced arrivals (condition 2 holds) but same-source duplicates.
        with pytest.raises(RoutingError, match="condition 1"):
            build_two_slot_schedule(network, packets, lambda h, i: h)

    def test_intermediates_returned(self, rng):
        network = POPSNetwork(3, 3)
        pi = random_permutation(network.n, rng)
        distribution = fair_distribution_for(network, pi)
        _, intermediates = build_two_slot_schedule(
            network, packets_for(network, pi), distribution
        )
        for h in range(3):
            for i in range(3):
                assert intermediates[network.processor(h, i)] == distribution(h, i)


class TestRoundBuilder:
    def test_wrong_regime_rejected(self, rng):
        network = POPSNetwork(2, 3)
        pi = random_permutation(network.n, rng)
        with pytest.raises(RoutingError):
            build_round_schedule(
                network, packets_for(network, pi), fair_distribution_for(network, pi)
            )

    def test_bad_value_range_rejected(self, rng):
        network = POPSNetwork(4, 2)
        pi = random_permutation(network.n, rng)
        with pytest.raises(RoutingError, match="outside"):
            build_round_schedule(network, packets_for(network, pi), lambda h, i: 100)

    def test_duplicate_value_per_group_rejected(self, rng):
        network = POPSNetwork(4, 2)
        pi = random_permutation(network.n, rng)
        with pytest.raises(RoutingError, match="condition 1"):
            build_round_schedule(network, packets_for(network, pi), lambda h, i: 0)

    def test_schedule_delivers(self, rng):
        network = POPSNetwork(6, 2)
        pi = random_permutation(network.n, rng)
        packets = packets_for(network, pi)
        schedule, _ = build_round_schedule(
            network, packets, fair_distribution_for(network, pi)
        )
        assert schedule.n_slots == 6
        POPSSimulator(network).route_and_verify(schedule, packets)


class TestDeliverySlotGuard:
    def test_unfair_scatter_detected_at_delivery(self):
        # Construct a "fair-looking" assignment that satisfies conditions 1-2
        # but violates condition 3, so the conflict must surface at delivery.
        network = POPSNetwork(2, 2)
        # Destination groups per packet: p0 -> 1, p1 -> 0, p2 -> 0, p3 -> 1.
        pi = [2, 1, 0, 3]
        packets = packets_for(network, pi)
        # Distinct intermediates per source group (condition 1) and balanced
        # arrivals (condition 2), but p0 and p3 — both headed for group 1 —
        # share intermediate group 0 (condition 3 violated).
        fair = {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}
        with pytest.raises(RoutingError, match="delivery slot"):
            build_two_slot_schedule(network, packets, lambda h, i: fair[(h, i)])
