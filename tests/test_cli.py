"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_experiment(self):
        args = build_parser().parse_args(["run", "E2"])
        assert args.command == "run" and args.experiment == "E2"

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E99"])

    def test_route_defaults(self):
        args = build_parser().parse_args(["route", "--d", "2", "--g", "3"])
        assert args.family == "vector_reversal"
        assert args.backend == "konig"
        assert args.sim_backend == "reference"

    def test_route_rejects_unknown_sim_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["route", "--d", "2", "--g", "3", "--sim-backend", "quantum"]
            )

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.sim_backend == "batched"
        assert args.workers is None
        assert args.configs is None


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "vector_reversal" in output

    def test_route_command_success(self, capsys):
        assert main(["route", "--d", "4", "--g", "4", "--family", "vector_reversal"]) == 0
        output = capsys.readouterr().out
        assert "slots used       : 2" in output

    def test_route_command_euler_backend(self, capsys):
        assert main(["route", "--d", "2", "--g", "4", "--backend", "euler"]) == 0
        assert "theorem 2 bound" in capsys.readouterr().out

    def test_route_command_batched_backend(self, capsys):
        assert main(
            ["route", "--d", "4", "--g", "4", "--sim-backend", "batched"]
        ) == 0
        output = capsys.readouterr().out
        assert "simulator        : batched" in output
        assert "slots used       : 2" in output

    def test_sweep_command_serial(self, capsys):
        assert main(
            ["sweep", "--configs", "2:2,3:2", "--trials", "1", "--workers", "0"]
        ) == 0
        output = capsys.readouterr().out
        assert "worker processes" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output

    def test_console_script_registered(self):
        from importlib.metadata import entry_points

        scripts = entry_points(group="console_scripts")
        names = {entry.name for entry in scripts}
        assert "pops-repro" in names
