"""Tests for the command-line interface."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_experiment(self):
        args = build_parser().parse_args(["run", "E2"])
        assert args.command == "run" and args.experiment == "E2"

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E99"])

    def test_route_defaults(self):
        args = build_parser().parse_args(["route", "--d", "2", "--g", "3"])
        assert args.family == "vector_reversal"
        assert args.backend == "konig"
        assert args.sim_backend == "reference"

    def test_route_rejects_unknown_sim_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["route", "--d", "2", "--g", "3", "--sim-backend", "quantum"]
            )

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.sim_backend == "batched"
        assert args.workers is None
        assert args.configs is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.backend == "euler-array"
        assert args.sim_backend == "batched"
        assert args.batch_window_ms == 2.0
        assert args.max_batch == 64
        assert args.max_queue == 1024
        assert args.port_file is None

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "quantum"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "vector_reversal" in output

    def test_route_command_success(self, capsys):
        assert main(["route", "--d", "4", "--g", "4", "--family", "vector_reversal"]) == 0
        output = capsys.readouterr().out
        assert "slots used       : 2" in output

    def test_route_command_euler_backend(self, capsys):
        assert main(["route", "--d", "2", "--g", "4", "--backend", "euler"]) == 0
        assert "theorem 2 bound" in capsys.readouterr().out

    def test_route_command_batched_backend(self, capsys):
        assert main(
            ["route", "--d", "4", "--g", "4", "--sim-backend", "batched"]
        ) == 0
        output = capsys.readouterr().out
        assert "simulator        : batched" in output
        assert "slots used       : 2" in output

    def test_sweep_command_serial(self, capsys):
        assert main(
            ["sweep", "--configs", "2:2,3:2", "--trials", "1", "--workers", "0"]
        ) == 0
        output = capsys.readouterr().out
        assert "worker processes" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output

    def test_console_script_registered(self):
        from importlib.metadata import entry_points

        scripts = entry_points(group="console_scripts")
        names = {entry.name for entry in scripts}
        assert "pops-repro" in names


class TestJsonFormat:
    def test_route_json(self, capsys):
        assert main(
            ["route", "--d", "4", "--g", "4", "--sim-backend", "batched",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["network"] == {"d": 4, "g": 4, "n": 16}
        assert payload["family"] == "vector_reversal"
        assert payload["config"]["sim_backend"] == "batched"
        assert payload["metrics"]["slots"] == 2
        assert payload["metrics"]["meets_theorem2_bound"] is True

    def test_route_json_encodes_infinite_ratio_as_null(self, capsys):
        # The identity permutation has no applicable lower bound (deterministic
        # 0), so the ratio is infinite and must encode as JSON null.
        assert main(
            ["route", "--d", "2", "--g", "2", "--family", "identity",
             "--format", "json"]
        ) in (0, 1)
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["lower_bound"] == 0
        assert payload["metrics"]["optimality_ratio"] is None

    def test_sweep_json(self, capsys):
        assert main(
            ["sweep", "--configs", "2:2,3:2", "--trials", "1", "--workers", "0",
             "--cache-stats", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "E1p"
        assert payload["headers"][0] == "d"
        assert payload["rows"][0][:2] == [2, 2]
        assert payload["all_pass"] is True
        assert "schedule cache" in payload["notes"]

    def test_sweep_json_matches_text_rows(self, capsys):
        args = ["sweep", "--configs", "2:2", "--trials", "1", "--workers", "0"]
        assert main(args + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        text = capsys.readouterr().out
        assert f"| {payload['rows'][0][0]} " in text  # same d column rendered

    def test_run_json(self, capsys):
        assert main(["run", "E2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "E2"
        assert payload["all_pass"] is True

    def test_cache_stats_json(self, tmp_path, capsys):
        # Machine-readable store statistics (ISSUE 8 satellite): warm a tiny
        # store, then `cache stats --format json` must emit one JSON document
        # with the full counter set.
        store = str(tmp_path / "plans")
        assert main(
            ["cache", "warm", "--plan-store", store, "--configs", "2:2",
             "--trials", "1", "--workers", "0", "--format", "json"]
        ) == 0
        warm_payload = json.loads(capsys.readouterr().out)
        assert warm_payload["written"] >= 1
        assert main(["cache", "stats", "--plan-store", store, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for key in ("path", "entries", "total_bytes", "disk_hits",
                    "disk_misses", "writes", "quarantined"):
            assert key in payload, key
        assert payload["entries"] == warm_payload["entries"] >= 1
        assert payload["writes"] >= 1


class TestCliUsesOnlyTheSessionLayer:
    def test_cli_commands_emit_no_deprecation_warnings(self, capsys):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["run", "E2"]) == 0
            assert main(["route", "--d", "2", "--g", "2"]) == 0
            assert main(
                ["sweep", "--configs", "2:2", "--trials", "1", "--workers", "0"]
            ) == 0
            assert main(["list"]) == 0
        capsys.readouterr()
